//! Labelled dataset container mirroring the Bonn EEG corpus layout.

use crate::eeg::{EegClass, EegGenerator, EegParams};
use efficsense_dsp::resample::resample_linear;

/// Bonn dataset record duration in seconds.
pub const BONN_DURATION_S: f64 = 23.6;
/// Bonn dataset sample rate in Hz.
pub const BONN_SAMPLE_RATE_HZ: f64 = 173.61;

/// One labelled EEG record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Stable record identifier within its dataset.
    pub id: usize,
    /// Diagnostic class.
    pub class: EegClass,
    /// Samples in volts.
    pub samples: Vec<f64>,
    /// Sample rate in Hz.
    pub fs: f64,
}

impl Record {
    /// Record duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 / self.fs
    }

    /// Binary seizure label (1 = seizure).
    pub fn label(&self) -> usize {
        self.class.label()
    }

    /// Returns a copy of the record resampled to `fs_out` Hz (the paper's
    /// "upsample to mimic a continuous-time signal" step).
    pub fn resampled(&self, fs_out: f64) -> Record {
        Record {
            id: self.id,
            class: self.class,
            samples: resample_linear(&self.samples, self.fs, fs_out),
            fs: fs_out,
        }
    }
}

/// Configuration of a synthetic dataset generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Records generated for each of the three classes.
    ///
    /// The Bonn corpus has 100 records in each of five sets; collapsing the
    /// five sets into three classes, the paper's "500 signals" correspond to
    /// `records_per_class` ≈ 167. Benchmarks default to smaller counts.
    pub records_per_class: usize,
    /// Record duration in seconds (Bonn: 23.6 s).
    pub duration_s: f64,
    /// Sample rate in Hz (Bonn: 173.61 Hz).
    pub fs: f64,
    /// Master seed; every record derives from it deterministically.
    pub seed: u64,
    /// Waveform morphology parameters.
    pub params: EegParams,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            records_per_class: 20,
            duration_s: BONN_DURATION_S,
            fs: BONN_SAMPLE_RATE_HZ,
            seed: 0xEEC5,
            params: EegParams::default(),
        }
    }
}

impl DatasetConfig {
    /// Paper-scale configuration: ~500 records of 23.6 s at 173.61 Hz.
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            records_per_class: 167,
            seed,
            ..Default::default()
        }
    }
}

/// A labelled synthetic EEG corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct EegDataset {
    /// All records, grouped by class in generation order.
    pub records: Vec<Record>,
    /// The configuration that produced the dataset.
    pub config: DatasetConfig,
}

impl EegDataset {
    /// Generates the dataset described by `config`. Deterministic in the seed.
    pub fn generate(config: &DatasetConfig) -> Self {
        let mut records = Vec::with_capacity(config.records_per_class * 3);
        let mut id = 0;
        for class in EegClass::ALL {
            // Per-class generator stream so class counts don't perturb each other.
            let class_seed = config.seed ^ ((class as u64 + 1) << 32);
            let mut gen = EegGenerator::new(config.params.clone(), class_seed);
            for _ in 0..config.records_per_class {
                records.push(Record {
                    id,
                    class,
                    samples: gen.record(class, config.fs, config.duration_s),
                    fs: config.fs,
                });
                id += 1;
            }
        }
        Self {
            records,
            config: config.clone(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterator over records of one class.
    pub fn by_class(&self, class: EegClass) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.class == class)
    }

    /// Splits into (train, test) by taking every `1/test_fraction`-th record
    /// of each class for test (deterministic, stratified).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < test_fraction < 1`.
    pub fn split(&self, test_fraction: f64) -> (Vec<&Record>, Vec<&Record>) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must be in (0, 1)"
        );
        let stride = (1.0 / test_fraction).round().max(1.0) as usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for class in EegClass::ALL {
            for (i, r) in self.by_class(class).enumerate() {
                if i % stride == stride - 1 {
                    test.push(r);
                } else {
                    train.push(r);
                }
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let cfg = DatasetConfig {
            records_per_class: 7,
            duration_s: 2.0,
            ..Default::default()
        };
        let ds = EegDataset::generate(&cfg);
        assert_eq!(ds.len(), 21);
        for class in EegClass::ALL {
            assert_eq!(ds.by_class(class).count(), 7);
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = DatasetConfig {
            records_per_class: 3,
            duration_s: 1.0,
            ..Default::default()
        };
        assert_eq!(EegDataset::generate(&cfg), EegDataset::generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetConfig {
            records_per_class: 2,
            duration_s: 1.0,
            seed: 1,
            ..Default::default()
        };
        let b = DatasetConfig {
            records_per_class: 2,
            duration_s: 1.0,
            seed: 2,
            ..Default::default()
        };
        assert_ne!(
            EegDataset::generate(&a).records[0].samples,
            EegDataset::generate(&b).records[0].samples
        );
    }

    #[test]
    fn record_duration_and_label() {
        let cfg = DatasetConfig {
            records_per_class: 1,
            ..Default::default()
        };
        let ds = EegDataset::generate(&cfg);
        let r = &ds.records[0];
        assert!((r.duration_s() - BONN_DURATION_S).abs() < 0.01);
        let seizure = ds
            .by_class(EegClass::Seizure)
            .next()
            .expect("has seizure record");
        assert_eq!(seizure.label(), 1);
    }

    #[test]
    fn resample_changes_rate_keeps_duration() {
        let cfg = DatasetConfig {
            records_per_class: 1,
            duration_s: 2.0,
            ..Default::default()
        };
        let ds = EegDataset::generate(&cfg);
        let r = ds.records[0].resampled(512.0);
        assert_eq!(r.fs, 512.0);
        assert!((r.duration_s() - 2.0).abs() < 0.02);
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let cfg = DatasetConfig {
            records_per_class: 10,
            duration_s: 1.0,
            ..Default::default()
        };
        let ds = EegDataset::generate(&cfg);
        let (train, test) = ds.split(0.2);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.len(), 6); // 2 of 10 per class
        let test_ids: Vec<usize> = test.iter().map(|r| r.id).collect();
        assert!(train.iter().all(|r| !test_ids.contains(&r.id)));
        // Each class appears in both halves.
        for class in EegClass::ALL {
            assert!(test.iter().any(|r| r.class == class));
            assert!(train.iter().any(|r| r.class == class));
        }
    }

    #[test]
    fn paper_scale_shape() {
        let cfg = DatasetConfig::paper_scale(1);
        assert_eq!(cfg.records_per_class * 3, 501);
        assert_eq!(cfg.fs, BONN_SAMPLE_RATE_HZ);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn split_rejects_bad_fraction() {
        let cfg = DatasetConfig {
            records_per_class: 2,
            duration_s: 1.0,
            ..Default::default()
        };
        let ds = EegDataset::generate(&cfg);
        let _ = ds.split(1.5);
    }
}
