//! Synthetic ECG generator.
//!
//! EffiCSense claims to be application-agnostic (paper Table I:
//! "Application Specific: No"); the intro's motivating systems include
//! ultra-low-power ECG monitors (reference 4). This module provides a second
//! signal domain so the framework's sweeps can be exercised beyond EEG:
//! a morphology-based synthetic ECG built from Gaussian P/Q/R/S/T waves —
//! the standard simplified form of the McSharry dynamical model.

use crate::noise::{Gaussian, PinkNoise};

/// One Gaussian wave of the PQRST complex: (centre offset s, width s,
/// amplitude V).
type Wave = (f64, f64, f64);

/// Morphology parameters of the synthetic ECG (voltages in volts at the
/// electrode, i.e. ~1 mV R peaks).
#[derive(Debug, Clone, PartialEq)]
pub struct EcgParams {
    /// Mean heart rate in beats per minute. Default 70.
    pub heart_rate_bpm: f64,
    /// Beat-to-beat interval jitter (fractional σ). Default 0.05.
    pub hrv_sigma: f64,
    /// R-wave amplitude (V). Default 1 mV.
    pub r_amplitude: f64,
    /// Baseline wander amplitude (V). Default 50 µV.
    pub wander_amplitude: f64,
    /// Additive sensor noise RMS (V). Default 10 µV.
    pub noise_rms: f64,
}

impl Default for EcgParams {
    fn default() -> Self {
        Self {
            heart_rate_bpm: 70.0,
            hrv_sigma: 0.05,
            r_amplitude: 1e-3,
            wander_amplitude: 50e-6,
            noise_rms: 10e-6,
        }
    }
}

/// Seeded synthetic ECG generator.
///
/// ```
/// use efficsense_signals::ecg::{EcgGenerator, EcgParams};
/// let mut gen = EcgGenerator::new(EcgParams::default(), 3);
/// let x = gen.record(360.0, 10.0); // 10 s at 360 Hz
/// assert_eq!(x.len(), 3600);
/// ```
#[derive(Debug, Clone)]
pub struct EcgGenerator {
    params: EcgParams,
    rng: Gaussian,
    pink_seed: u64,
}

impl EcgGenerator {
    /// Creates a generator from morphology parameters and a seed.
    pub fn new(params: EcgParams, seed: u64) -> Self {
        Self {
            params,
            rng: Gaussian::new(seed ^ 0xEC6),
            pink_seed: seed,
        }
    }

    /// The PQRST waves relative to the R peak, scaled to `r_amplitude`.
    fn waves(&self) -> [Wave; 5] {
        let a = self.params.r_amplitude;
        [
            (-0.20, 0.025, 0.12 * a),   // P
            (-0.035, 0.010, -0.15 * a), // Q
            (0.0, 0.011, 1.0 * a),      // R
            (0.035, 0.010, -0.25 * a),  // S
            (0.22, 0.045, 0.30 * a),    // T
        ]
    }

    /// Generates `duration_s` seconds at `fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics unless `fs` and `duration_s` are positive.
    pub fn record(&mut self, fs: f64, duration_s: f64) -> Vec<f64> {
        assert!(
            fs > 0.0 && duration_s > 0.0,
            "fs and duration must be positive"
        );
        let n = (fs * duration_s) as usize;
        let mut x = vec![0.0; n];
        // Beat times with heart-rate variability.
        let mean_rr = 60.0 / self.params.heart_rate_bpm;
        let mut t_beat = 0.3; // first beat
        let waves = self.waves();
        while t_beat < duration_s + 0.5 {
            for &(dt, width, amp) in &waves {
                let centre = t_beat + dt;
                let lo = ((centre - 5.0 * width) * fs).max(0.0) as usize;
                let hi = (((centre + 5.0 * width) * fs) as usize).min(n);
                for (i, v) in x.iter_mut().enumerate().take(hi).skip(lo) {
                    let t = i as f64 / fs - centre;
                    *v += amp * (-(t * t) / (2.0 * width * width)).exp();
                }
            }
            let jitter = 1.0 + self.rng.sample_scaled(self.params.hrv_sigma);
            t_beat += mean_rr * jitter.clamp(0.5, 1.5);
        }
        // Baseline wander (respiration, ~0.3 Hz) + pink sensor noise.
        let wander_f = self.rng.uniform(0.15, 0.4);
        let wander_phase = self.rng.uniform(0.0, std::f64::consts::TAU);
        let mut pink = PinkNoise::new(self.pink_seed ^ 0xECC);
        for (i, v) in x.iter_mut().enumerate() {
            let t = i as f64 / fs;
            *v += self.params.wander_amplitude
                * (std::f64::consts::TAU * wander_f * t + wander_phase).sin();
            *v += pink.sample() * self.params.noise_rms;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::welch;
    use efficsense_dsp::stats::{peak, rms, zero_crossings};
    use efficsense_dsp::window::Window;

    #[test]
    fn record_has_expected_shape() {
        let mut g = EcgGenerator::new(EcgParams::default(), 1);
        let fs = 360.0;
        let x = g.record(fs, 10.0);
        assert_eq!(x.len(), 3600);
        assert!(x.iter().all(|v| v.is_finite()));
        // R peaks near 1 mV.
        let pk = peak(&x);
        assert!((0.7e-3..1.5e-3).contains(&pk), "peak {pk}");
    }

    #[test]
    fn beat_count_matches_heart_rate() {
        let mut g = EcgGenerator::new(
            EcgParams {
                hrv_sigma: 0.0,
                noise_rms: 1e-9,
                wander_amplitude: 0.0,
                ..Default::default()
            },
            2,
        );
        let fs = 360.0;
        let x = g.record(fs, 30.0);
        // Count R peaks by thresholding at 60 % of max.
        let thr = peak(&x) * 0.6;
        let mut beats = 0;
        let mut above = false;
        for &v in &x {
            if v > thr && !above {
                beats += 1;
                above = true;
            } else if v < thr / 2.0 {
                above = false;
            }
        }
        // 70 bpm over 30 s ≈ 35 beats.
        assert!((33..=37).contains(&beats), "{beats} beats");
    }

    #[test]
    fn spectrum_has_qrs_band_energy() {
        let mut g = EcgGenerator::new(EcgParams::default(), 3);
        let fs = 360.0;
        let x = g.record(fs, 30.0);
        let psd = welch(&x, fs, 2048, Window::Hann);
        // QRS energy lives in ~5–25 Hz; far more than in 60–120 Hz.
        let qrs = psd.band_power(5.0, 25.0);
        let high = psd.band_power(60.0, 120.0);
        assert!(qrs > 20.0 * high, "QRS {qrs} vs high {high}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = EcgGenerator::new(EcgParams::default(), 9);
        let mut b = EcgGenerator::new(EcgParams::default(), 9);
        assert_eq!(a.record(360.0, 5.0), b.record(360.0, 5.0));
    }

    #[test]
    fn hrv_perturbs_intervals() {
        let mut steady = EcgGenerator::new(
            EcgParams {
                hrv_sigma: 0.0,
                ..Default::default()
            },
            5,
        );
        let mut wobbly = EcgGenerator::new(
            EcgParams {
                hrv_sigma: 0.1,
                ..Default::default()
            },
            5,
        );
        assert_ne!(steady.record(360.0, 10.0), wobbly.record(360.0, 10.0));
    }

    #[test]
    fn ecg_is_sparser_than_noise() {
        // The PQRST morphology is compressible: most samples are baseline.
        let mut g = EcgGenerator::new(
            EcgParams {
                noise_rms: 1e-9,
                wander_amplitude: 0.0,
                ..Default::default()
            },
            7,
        );
        let x = g.record(360.0, 10.0);
        let r = rms(&x);
        let p = peak(&x);
        // Crest factor (peak/rms) far above a sine's √2.
        assert!(p / r > 4.0, "crest {}", p / r);
        let _ = zero_crossings(&x);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_duration() {
        let mut g = EcgGenerator::new(EcgParams::default(), 1);
        let _ = g.record(360.0, -1.0);
    }
}
