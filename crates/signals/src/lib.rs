//! # efficsense-signals
//!
//! Synthetic biomedical signal substrate for EffiCSense.
//!
//! The paper evaluates its framework on the Bonn university EEG dataset
//! (500 single-channel records of 23.6 s sampled at 173.61 Hz, labelled
//! seizure vs non-seizure). That dataset cannot be redistributed here, so this
//! crate generates a *Bonn-like* synthetic corpus with the same shape:
//!
//! * **Non-seizure** records: 1/f ("pink") background activity with
//!   amplitude-modulated alpha rhythm (8–12 Hz) and optional artifacts,
//!   ~50 µV peak-to-peak — the spectral profile of scalp EEG.
//! * **Interictal** records: the same background plus sporadic isolated
//!   epileptiform spikes.
//! * **Seizure** records: high-amplitude (several hundred µV) rhythmic
//!   3–4 Hz spike-and-wave complexes riding on the background.
//!
//! The class contrast (amplitude and spectral concentration at low
//! frequencies) is what drives the accuracy-vs-front-end-noise trade-off in
//! the paper's Fig. 7; the synthetic corpus preserves exactly that contrast.
//!
//! All generation is seeded and fully deterministic.
//!
//! ```
//! use efficsense_signals::{DatasetConfig, EegDataset};
//! let cfg = DatasetConfig { records_per_class: 5, ..Default::default() };
//! let ds = EegDataset::generate(&cfg);
//! assert_eq!(ds.records.len(), 15); // 3 classes x 5
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod artifact;
pub mod dataset;
pub mod ecg;
pub mod eeg;
pub mod noise;

pub use dataset::{DatasetConfig, EegDataset, Record, BONN_DURATION_S, BONN_SAMPLE_RATE_HZ};
pub use eeg::{EegClass, EegGenerator, EegParams};
