//! Seeded noise generators: white Gaussian, pink (1/f), and a helper RNG.

use efficsense_rng::Rng64;

/// A seeded Gaussian sample source ([`Rng64::normal`] ziggurat draws).
#[derive(Debug, Clone)]
pub struct Gaussian {
    rng: Rng64,
}

impl Gaussian {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Rng64::new(seed),
        }
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f64 {
        self.rng.normal()
    }

    /// Draws one `N(0, sigma²)` sample.
    pub fn sample_scaled(&mut self, sigma: f64) -> f64 {
        self.sample() * sigma
    }

    /// Fills a vector with `n` samples of `N(0, sigma²)`.
    pub fn vector(&mut self, n: usize, sigma: f64) -> Vec<f64> {
        (0..n).map(|_| self.sample_scaled(sigma)).collect()
    }

    /// Draws a uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.index(n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }
}

/// Pink (1/f) noise generator using the Paul Kellet economy filter, which
/// shapes white Gaussian noise with three cascaded leaky integrators.
///
/// The output is approximately unit-variance; scale as needed.
#[derive(Debug, Clone)]
pub struct PinkNoise {
    white: Gaussian,
    b: [f64; 3],
}

impl PinkNoise {
    /// Creates a pink-noise source from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            white: Gaussian::new(seed),
            b: [0.0; 3],
        }
    }

    /// Draws the next pink-noise sample (≈ unit variance).
    pub fn sample(&mut self) -> f64 {
        let w = self.white.sample();
        self.b[0] = 0.99765 * self.b[0] + w * 0.0990460;
        self.b[1] = 0.96300 * self.b[1] + w * 0.2965164;
        self.b[2] = 0.57000 * self.b[2] + w * 1.0526913;
        let out = self.b[0] + self.b[1] + self.b[2] + w * 0.1848;
        out * 0.25 // normalise to roughly unit variance
    }

    /// Fills a vector with `n` samples scaled by `sigma`.
    pub fn vector(&mut self, n: usize, sigma: f64) -> Vec<f64> {
        (0..n).map(|_| self.sample() * sigma).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::{welch, Psd};
    use efficsense_dsp::stats::{mean, std_dev};
    use efficsense_dsp::window::Window;

    #[test]
    fn gaussian_moments() {
        let mut g = Gaussian::new(1);
        let x = g.vector(200_000, 1.0);
        assert!(mean(&x).abs() < 0.01);
        assert!((std_dev(&x) - 1.0).abs() < 0.01);
    }

    #[test]
    fn gaussian_deterministic_for_seed() {
        let a = Gaussian::new(42).vector(100, 1.0);
        let b = Gaussian::new(42).vector(100, 1.0);
        assert_eq!(a, b);
        let c = Gaussian::new(43).vector(100, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_scaling() {
        let mut g = Gaussian::new(7);
        let x = g.vector(100_000, 3.0);
        assert!((std_dev(&x) - 3.0).abs() < 0.05);
    }

    #[test]
    fn uniform_in_range() {
        let mut g = Gaussian::new(5);
        for _ in 0..1000 {
            let v = g.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn chance_frequency() {
        let mut g = Gaussian::new(9);
        let hits = (0..100_000).filter(|_| g.chance(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    fn slope_db_per_decade(psd: &Psd, f_lo: f64, f_hi: f64) -> f64 {
        // Power *density* in equal-relative-width bands (divide by bandwidth).
        let d_lo = psd.band_power(f_lo, f_lo * 1.2) / (0.2 * f_lo);
        let d_hi = psd.band_power(f_hi, f_hi * 1.2) / (0.2 * f_hi);
        // dB per decade between the two band centres.
        10.0 * (d_hi / d_lo).log10() / (f_hi / f_lo).log10()
    }

    #[test]
    fn pink_noise_spectrum_falls_off() {
        let mut p = PinkNoise::new(3);
        let x = p.vector(1 << 16, 1.0);
        let psd = welch(&x, 1000.0, 4096, Window::Hann);
        let slope = slope_db_per_decade(&psd, 2.0, 200.0);
        // 1/f noise: -10 dB/decade of *power density*; allow generous slack.
        assert!((-14.0..=-6.0).contains(&slope), "slope {slope} dB/dec");
    }

    #[test]
    fn pink_noise_roughly_unit_variance() {
        let mut p = PinkNoise::new(11);
        let x = p.vector(100_000, 1.0);
        let s = std_dev(&x);
        assert!((0.5..2.0).contains(&s), "pink sigma {s}");
    }

    #[test]
    fn pink_noise_deterministic() {
        let a = PinkNoise::new(1).vector(64, 1.0);
        let b = PinkNoise::new(1).vector(64, 1.0);
        assert_eq!(a, b);
    }
}
