//! Recording artifacts: powerline hum, EMG bursts, eye blinks.
//!
//! The paper notes that public biosignal databases come "with and without
//! artefacts"; these injectors let experiments stress the front-end with the
//! dominant scalp-EEG contaminants.

use crate::noise::Gaussian;

/// Adds mains hum at `f_line` Hz (plus a weaker 3rd harmonic) to `x` in place.
///
/// `amplitude` is the peak amplitude in the same units as the signal (volts).
pub fn add_powerline(x: &mut [f64], fs: f64, f_line: f64, amplitude: f64, phase: f64) {
    for (i, v) in x.iter_mut().enumerate() {
        let t = i as f64 / fs;
        let w = 2.0 * std::f64::consts::PI * f_line * t + phase;
        *v += amplitude * (w.sin() + 0.2 * (3.0 * w).sin());
    }
}

/// Adds a muscle (EMG) burst: band-limited high-frequency noise inside
/// `[start_s, start_s + duration_s]`, Hann-shaped in time.
pub fn add_emg_burst(
    x: &mut [f64],
    fs: f64,
    start_s: f64,
    duration_s: f64,
    amplitude: f64,
    rng: &mut Gaussian,
) {
    let i0 = (start_s * fs).max(0.0) as usize;
    let n = (duration_s * fs) as usize;
    if n == 0 {
        return;
    }
    for k in 0..n {
        let i = i0 + k;
        if i >= x.len() {
            break;
        }
        // Hann envelope localises the burst.
        let env = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos();
        // High-pass-ish noise: difference of consecutive white samples.
        let hf = rng.sample() - rng.sample();
        x[i] += amplitude * env * hf * std::f64::consts::FRAC_1_SQRT_2;
    }
}

/// Adds an eye-blink artifact: a large, slow biphasic deflection of
/// `duration_s` (typically 0.3–0.5 s) starting at `start_s`.
pub fn add_eye_blink(x: &mut [f64], fs: f64, start_s: f64, duration_s: f64, amplitude: f64) {
    let i0 = (start_s * fs).max(0.0) as usize;
    let n = (duration_s * fs) as usize;
    for k in 0..n {
        let i = i0 + k;
        if i >= x.len() {
            break;
        }
        let u = k as f64 / n as f64; // 0..1
                                     // Gamma-like rise and decay, the canonical blink shape;
                                     // t²·e^(−t) peaks at 4e⁻² ≈ 0.5413, so normalise to unit peak.
        let shape = (u * 4.0).powf(2.0) * (-(u * 4.0)).exp() / 0.5413;
        x[i] += amplitude * shape;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::{periodogram, welch};
    use efficsense_dsp::stats::{peak, rms};
    use efficsense_dsp::window::Window;

    #[test]
    fn powerline_puts_tone_at_line_frequency() {
        let fs = 1024.0;
        let mut x = vec![0.0; 8192];
        add_powerline(&mut x, fs, 50.0, 1e-5, 0.0);
        let psd = periodogram(&x, fs, Window::Hann);
        assert!((psd.peak_frequency() - 50.0).abs() < 1.0);
    }

    #[test]
    fn powerline_has_third_harmonic() {
        let fs = 1024.0;
        let mut x = vec![0.0; 8192];
        add_powerline(&mut x, fs, 50.0, 1.0, 0.0);
        let psd = welch(&x, fs, 4096, Window::Hann);
        let p150 = psd.band_power(145.0, 155.0);
        let p50 = psd.band_power(45.0, 55.0);
        assert!(
            (p150 / p50 - 0.04).abs() < 0.01,
            "harmonic ratio {}",
            p150 / p50
        );
    }

    #[test]
    fn emg_burst_is_localised() {
        let fs = 1000.0;
        let mut x = vec![0.0; 10_000];
        let mut rng = Gaussian::new(1);
        add_emg_burst(&mut x, fs, 4.0, 1.0, 1.0, &mut rng);
        assert_eq!(rms(&x[..3900]), 0.0);
        assert_eq!(rms(&x[5100..]), 0.0);
        assert!(rms(&x[4200..4800]) > 0.1);
    }

    #[test]
    fn emg_burst_clipped_at_record_end() {
        let fs = 1000.0;
        let mut x = vec![0.0; 1000];
        let mut rng = Gaussian::new(2);
        add_emg_burst(&mut x, fs, 0.9, 1.0, 1.0, &mut rng); // extends past end
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn eye_blink_amplitude_and_sign() {
        let fs = 500.0;
        let mut x = vec![0.0; 1000];
        add_eye_blink(&mut x, fs, 0.5, 0.4, 100e-6);
        let pk = peak(&x);
        assert!(pk > 30e-6 && pk < 120e-6, "blink peak {pk}");
        // Blink deflection is monophasic positive in this model.
        assert!(x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zero_duration_burst_is_noop() {
        let mut x = vec![0.0; 100];
        let mut rng = Gaussian::new(3);
        add_emg_burst(&mut x, 100.0, 0.1, 0.0, 1.0, &mut rng);
        assert!(x.iter().all(|&v| efficsense_dsp::approx::is_zero(v)));
    }
}
