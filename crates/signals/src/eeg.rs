//! Synthetic EEG waveform generator.
//!
//! Models three record classes mirroring the Bonn dataset's clinically
//! relevant split: healthy background, interictal (spikes between seizures)
//! and ictal (seizure) activity.

use crate::artifact;
use crate::noise::{Gaussian, PinkNoise};

/// Diagnostic class of a synthetic EEG record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EegClass {
    /// Healthy background activity (Bonn sets A/B).
    Normal,
    /// Epileptiform spikes without seizure (Bonn sets C/D).
    Interictal,
    /// Ictal (seizure) activity (Bonn set E).
    Seizure,
}

impl EegClass {
    /// All classes in canonical order.
    pub const ALL: [EegClass; 3] = [EegClass::Normal, EegClass::Interictal, EegClass::Seizure];

    /// `true` for the seizure class — the binary detection target.
    pub fn is_seizure(self) -> bool {
        matches!(self, EegClass::Seizure)
    }

    /// Binary label used by the detector: 1 for seizure, 0 otherwise.
    pub fn label(self) -> usize {
        usize::from(self.is_seizure())
    }
}

impl std::fmt::Display for EegClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EegClass::Normal => "normal",
            EegClass::Interictal => "interictal",
            EegClass::Seizure => "seizure",
        };
        f.write_str(s)
    }
}

/// Amplitude/morphology parameters of the generator (all voltages in volts).
#[derive(Debug, Clone, PartialEq)]
pub struct EegParams {
    /// RMS of the pink background activity. Default 10 µV.
    pub background_rms: f64,
    /// Peak amplitude of the alpha rhythm bursts. Default 12 µV.
    pub alpha_amplitude: f64,
    /// Alpha rhythm centre frequency in Hz. Default 10 Hz.
    pub alpha_frequency: f64,
    /// Peak amplitude of interictal spikes. Default 25 µV.
    pub spike_amplitude: f64,
    /// Mean interictal spike rate in events/s. Default 0.5.
    pub spike_rate: f64,
    /// Peak amplitude of ictal spike-wave complexes. Default 35 µV.
    ///
    /// Deliberately only moderately above the background: the detection
    /// margin must be noise-sensitive in the 1–20 µV front-end sweep range
    /// for the Fig. 7b trade-off to be observable.
    pub seizure_amplitude: f64,
    /// Spike-wave repetition frequency in Hz. Default 3.5 Hz.
    pub seizure_frequency: f64,
    /// Probability that a record carries a powerline artifact. Default 0.3.
    pub powerline_probability: f64,
    /// Powerline amplitude when present. Default 2 µV.
    pub powerline_amplitude: f64,
    /// Mains frequency in Hz. Default 50 Hz.
    pub powerline_frequency: f64,
    /// Probability of an EMG burst per record. Default 0.2.
    pub emg_probability: f64,
    /// Probability of an eye blink per record. Default 0.3.
    pub blink_probability: f64,
}

impl Default for EegParams {
    fn default() -> Self {
        Self {
            background_rms: 10e-6,
            alpha_amplitude: 12e-6,
            alpha_frequency: 10.0,
            spike_amplitude: 25e-6,
            spike_rate: 0.5,
            seizure_amplitude: 35e-6,
            seizure_frequency: 3.5,
            powerline_probability: 0.3,
            powerline_amplitude: 2e-6,
            powerline_frequency: 50.0,
            emg_probability: 0.2,
            blink_probability: 0.3,
        }
    }
}

/// Seeded synthetic EEG generator.
///
/// ```
/// use efficsense_signals::{EegClass, EegGenerator, EegParams};
/// let mut gen = EegGenerator::new(EegParams::default(), 7);
/// let x = gen.record(EegClass::Seizure, 173.61, 4.0);
/// assert_eq!(x.len(), (173.61f64 * 4.0) as usize);
/// ```
#[derive(Debug, Clone)]
pub struct EegGenerator {
    params: EegParams,
    rng: Gaussian,
    pink_seed: u64,
    next_pink: u64,
}

impl EegGenerator {
    /// Creates a generator with the given morphology parameters and seed.
    pub fn new(params: EegParams, seed: u64) -> Self {
        Self {
            params,
            rng: Gaussian::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            pink_seed: seed,
            next_pink: 0,
        }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &EegParams {
        &self.params
    }

    /// Generates one record of `duration_s` seconds at `fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `fs <= 0` or `duration_s <= 0`.
    pub fn record(&mut self, class: EegClass, fs: f64, duration_s: f64) -> Vec<f64> {
        assert!(
            fs > 0.0 && duration_s > 0.0,
            "fs and duration must be positive"
        );
        let n = (fs * duration_s) as usize;
        let mut x = self.background(n, fs);
        match class {
            EegClass::Normal => self.add_alpha(&mut x, fs),
            EegClass::Interictal => {
                self.add_alpha(&mut x, fs);
                self.add_isolated_spikes(&mut x, fs, duration_s);
            }
            EegClass::Seizure => self.add_seizure(&mut x, fs, duration_s),
        }
        self.add_artifacts(&mut x, fs, duration_s);
        x
    }

    fn background(&mut self, n: usize, _fs: f64) -> Vec<f64> {
        self.next_pink += 1;
        let seed = self.pink_seed ^ self.next_pink.wrapping_mul(0xD134_2543_DE82_EF95);
        let mut pink = PinkNoise::new(seed);
        pink.vector(n, self.params.background_rms)
    }

    fn add_alpha(&mut self, x: &mut [f64], fs: f64) {
        // Alpha rhythm: amplitude-modulated sinusoid with slow random envelope.
        let f = self.params.alpha_frequency * self.rng.uniform(0.9, 1.1);
        let phase = self.rng.uniform(0.0, std::f64::consts::TAU);
        let env_f = self.rng.uniform(0.1, 0.4); // waxing/waning at ~0.25 Hz
        let env_phase = self.rng.uniform(0.0, std::f64::consts::TAU);
        for (i, v) in x.iter_mut().enumerate() {
            let t = i as f64 / fs;
            let env = 0.5 + 0.5 * (std::f64::consts::TAU * env_f * t + env_phase).sin();
            *v += self.params.alpha_amplitude * env * (std::f64::consts::TAU * f * t + phase).sin();
        }
    }

    /// A single epileptiform spike: sharp Gaussian transient (~70 ms base).
    fn add_spike(&mut self, x: &mut [f64], fs: f64, centre_s: f64, amplitude: f64) {
        let width_s = self.rng.uniform(0.02, 0.04); // Gaussian sigma
        let c = centre_s * fs;
        let half = (4.0 * width_s * fs) as isize;
        let ci = c as isize;
        for di in -half..=half {
            let i = ci + di;
            if i < 0 || i as usize >= x.len() {
                continue;
            }
            let t = (i as f64 - c) / fs;
            x[i as usize] += amplitude * (-(t * t) / (2.0 * width_s * width_s)).exp();
        }
    }

    /// A slow wave following a spike: half-sine of ~250 ms, opposite polarity.
    fn add_slow_wave(&mut self, x: &mut [f64], fs: f64, start_s: f64, amplitude: f64) {
        let dur = self.rng.uniform(0.2, 0.3);
        let i0 = (start_s * fs) as usize;
        let n = (dur * fs) as usize;
        for k in 0..n {
            let i = i0 + k;
            if i >= x.len() {
                break;
            }
            let u = k as f64 / n as f64;
            x[i] -= amplitude * 0.6 * (std::f64::consts::PI * u).sin();
        }
    }

    fn add_isolated_spikes(&mut self, x: &mut [f64], fs: f64, duration_s: f64) {
        let expected = self.params.spike_rate * duration_s;
        let count = expected.round().max(1.0) as usize;
        for _ in 0..count {
            let t = self.rng.uniform(0.5, duration_s - 0.5);
            let a = self.params.spike_amplitude * self.rng.uniform(0.7, 1.3);
            let sign = if self.rng.chance(0.8) { 1.0 } else { -1.0 };
            self.add_spike(x, fs, t, sign * a);
            if self.rng.chance(0.5) {
                self.add_slow_wave(x, fs, t + 0.05, sign * a);
            }
        }
    }

    fn add_seizure(&mut self, x: &mut [f64], fs: f64, duration_s: f64) {
        // Rhythmic spike-and-wave covering most of the record, with a ramp-in.
        let f = self.params.seizure_frequency * self.rng.uniform(0.85, 1.15);
        let period = 1.0 / f;
        let onset = self.rng.uniform(0.0, 0.05 * duration_s);
        let mut t = onset;
        while t < duration_s - 0.1 {
            // Amplitude evolves: builds up, stays, and wanes slightly.
            let progress = (t - onset) / (duration_s - onset);
            let ramp = (progress * 8.0).min(1.0) * (1.0 - 0.3 * progress);
            let a = self.params.seizure_amplitude * ramp * self.rng.uniform(0.85, 1.15);
            self.add_spike(x, fs, t, a);
            self.add_slow_wave(x, fs, t + 0.04, a);
            t += period * self.rng.uniform(0.95, 1.05);
        }
    }

    fn add_artifacts(&mut self, x: &mut [f64], fs: f64, duration_s: f64) {
        if self.rng.chance(self.params.powerline_probability) {
            let phase = self.rng.uniform(0.0, std::f64::consts::TAU);
            artifact::add_powerline(
                x,
                fs,
                self.params.powerline_frequency,
                self.params.powerline_amplitude,
                phase,
            );
        }
        if self.rng.chance(self.params.emg_probability) && duration_s > 2.0 {
            let start = self.rng.uniform(0.0, duration_s - 1.5);
            let dur = self.rng.uniform(0.3, 1.2);
            let amp = self.rng.uniform(5e-6, 15e-6);
            let mut rng = Gaussian::new(self.pink_seed ^ 0xE7);
            artifact::add_emg_burst(x, fs, start, dur, amp, &mut rng);
        }
        if self.rng.chance(self.params.blink_probability) && duration_s > 1.0 {
            let start = self.rng.uniform(0.0, duration_s - 0.6);
            let amp = self.rng.uniform(40e-6, 100e-6);
            artifact::add_eye_blink(x, fs, start, 0.4, amp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::welch;
    use efficsense_dsp::stats::{peak, rms};
    use efficsense_dsp::window::Window;

    fn gen() -> EegGenerator {
        EegGenerator::new(EegParams::default(), 123)
    }

    #[test]
    fn record_lengths() {
        let mut g = gen();
        let x = g.record(EegClass::Normal, 173.61, 23.6);
        assert_eq!(x.len(), (173.61f64 * 23.6) as usize);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = EegGenerator::new(EegParams::default(), 5);
        let mut b = EegGenerator::new(EegParams::default(), 5);
        assert_eq!(
            a.record(EegClass::Seizure, 173.61, 4.0),
            b.record(EegClass::Seizure, 173.61, 4.0)
        );
    }

    #[test]
    fn seizure_has_much_larger_amplitude() {
        let mut g = gen();
        let fs = 173.61;
        let normal_rms: f64 = (0..8)
            .map(|_| rms(&g.record(EegClass::Normal, fs, 8.0)))
            .sum::<f64>()
            / 8.0;
        let seiz_rms: f64 = (0..8)
            .map(|_| rms(&g.record(EegClass::Seizure, fs, 8.0)))
            .sum::<f64>()
            / 8.0;
        assert!(
            seiz_rms > 1.5 * normal_rms,
            "seizure rms {seiz_rms} vs normal {normal_rms}"
        );
    }

    #[test]
    fn amplitudes_in_physiological_range() {
        let mut g = gen();
        let x = g.record(EegClass::Normal, 173.61, 10.0);
        let pk = peak(&x);
        assert!(pk > 5e-6 && pk < 300e-6, "normal peak {pk}");
        let y = g.record(EegClass::Seizure, 173.61, 10.0);
        let pk = peak(&y);
        assert!(pk > 35e-6 && pk < 1.5e-3, "seizure peak {pk}");
    }

    #[test]
    fn seizure_spectrum_concentrated_low() {
        let mut g = gen();
        let fs = 173.61;
        let x = g.record(EegClass::Seizure, fs, 20.0);
        let psd = welch(&x, fs, 1024, Window::Hann);
        let low = psd.band_power(1.0, 12.0);
        let high = psd.band_power(20.0, 60.0);
        assert!(low > 10.0 * high, "low {low} vs high {high}");
    }

    #[test]
    fn normal_has_alpha_peak() {
        // Average many records to beat the pink background.
        let mut g = EegGenerator::new(
            EegParams {
                powerline_probability: 0.0,
                emg_probability: 0.0,
                blink_probability: 0.0,
                ..Default::default()
            },
            77,
        );
        let fs = 173.61;
        let mut alpha = 0.0;
        let mut beta = 0.0;
        for _ in 0..12 {
            let x = g.record(EegClass::Normal, fs, 20.0);
            let psd = welch(&x, fs, 1024, Window::Hann);
            alpha += psd.band_power(8.0, 12.0);
            beta += psd.band_power(18.0, 30.0);
        }
        assert!(alpha > 3.0 * beta, "alpha {alpha} vs beta {beta}");
    }

    #[test]
    fn interictal_has_spikes_above_background() {
        let mut g = EegGenerator::new(
            EegParams {
                powerline_probability: 0.0,
                emg_probability: 0.0,
                blink_probability: 0.0,
                ..Default::default()
            },
            31,
        );
        let x = g.record(EegClass::Interictal, 173.61, 23.6);
        // Kurtosis flags sparse spikes on Gaussian-ish background. Compare
        // against the spike-free normal class rather than a fixed threshold
        // (spike amplitudes are deliberately subtle — see EegParams docs).
        let k_inter = efficsense_dsp::stats::kurtosis(&x);
        let y = g.record(EegClass::Normal, 173.61, 23.6);
        let k_norm = efficsense_dsp::stats::kurtosis(&y);
        assert!(
            k_inter > k_norm + 0.3,
            "interictal kurtosis {k_inter} vs normal {k_norm}"
        );
    }

    #[test]
    fn all_classes_finite() {
        let mut g = gen();
        for class in EegClass::ALL {
            let x = g.record(class, 173.61, 23.6);
            assert!(
                x.iter().all(|v| v.is_finite()),
                "{class} produced non-finite values"
            );
        }
    }

    #[test]
    fn class_labels() {
        assert_eq!(EegClass::Normal.label(), 0);
        assert_eq!(EegClass::Interictal.label(), 0);
        assert_eq!(EegClass::Seizure.label(), 1);
        assert_eq!(EegClass::Seizure.to_string(), "seizure");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_duration() {
        let mut g = gen();
        let _ = g.record(EegClass::Normal, 173.61, 0.0);
    }
}
