//! Property-style tests for the synthetic EEG substrate, run as seeded
//! Monte-Carlo loops.

use efficsense_dsp::stats::{peak, rms};
use efficsense_rng::Rng64;
use efficsense_signals::noise::{Gaussian, PinkNoise};
use efficsense_signals::{DatasetConfig, EegClass, EegDataset, EegGenerator, EegParams};

const CASES: u64 = 24;

#[test]
fn records_always_finite_and_physiological() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x4EC0 + case);
        let seed = g.next_u64();
        let duration = g.uniform(1.0, 12.0);
        let mut gen = EegGenerator::new(EegParams::default(), seed);
        for class in EegClass::ALL {
            let x = gen.record(class, 173.61, duration);
            assert_eq!(x.len(), (173.61 * duration) as usize, "case {case}");
            assert!(x.iter().all(|v| v.is_finite()), "case {case}");
            // Scalp EEG never exceeds ~1 mV.
            assert!(peak(&x) < 1e-3, "case {case}: peak {} too large", peak(&x));
            assert!(rms(&x) > 1e-7, "case {case}: record should not be silent");
        }
    }
}

#[test]
fn generation_is_deterministic() {
    for case in 0..CASES {
        let seed = Rng64::new(0xDE7E + case).next_u64();
        let cfg = DatasetConfig {
            records_per_class: 2,
            duration_s: 2.0,
            seed,
            ..Default::default()
        };
        assert_eq!(
            EegDataset::generate(&cfg),
            EegDataset::generate(&cfg),
            "case {case}"
        );
    }
}

#[test]
fn split_partitions_dataset() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x5917 + case);
        let n = g.range(2, 12);
        let frac_pct = g.range(10, 50) as u32;
        let cfg = DatasetConfig {
            records_per_class: n,
            duration_s: 1.0,
            ..Default::default()
        };
        let ds = EegDataset::generate(&cfg);
        let (train, test) = ds.split(frac_pct as f64 / 100.0);
        assert_eq!(train.len() + test.len(), ds.len(), "case {case}");
        let mut ids: Vec<usize> = train.iter().chain(test.iter()).map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            ds.len(),
            "case {case}: every record exactly once"
        );
    }
}

#[test]
fn gaussian_bounded_variance() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x6A45 + case);
        let seed = g.next_u64();
        let sigma = g.uniform(0.1, 10.0);
        let mut gauss = Gaussian::new(seed);
        let x = gauss.vector(5000, sigma);
        let s = efficsense_dsp::stats::std_dev(&x);
        assert!(
            (s / sigma - 1.0).abs() < 0.15,
            "case {case}: σ estimate {s} vs {sigma}"
        );
    }
}

#[test]
fn pink_noise_finite_and_nonzero() {
    for case in 0..CASES {
        let seed = Rng64::new(0x9146 + case).next_u64();
        let mut p = PinkNoise::new(seed);
        let x = p.vector(2000, 1.0);
        assert!(x.iter().all(|v| v.is_finite()), "case {case}");
        assert!(rms(&x) > 0.05, "case {case}");
    }
}

#[test]
fn seizure_energy_exceeds_normal_on_average() {
    for case in 0..CASES {
        let seed = Rng64::new(0x5E12 + case).next_u64();
        let params = EegParams {
            powerline_probability: 0.0,
            emg_probability: 0.0,
            blink_probability: 0.0,
            ..Default::default()
        };
        let mut gen = EegGenerator::new(params, seed);
        let mut seiz = 0.0;
        let mut norm = 0.0;
        for _ in 0..4 {
            seiz += rms(&gen.record(EegClass::Seizure, 173.61, 6.0));
            norm += rms(&gen.record(EegClass::Normal, 173.61, 6.0));
        }
        assert!(
            seiz > norm,
            "case {case}: seizure rms {seiz} vs normal {norm}"
        );
    }
}
