//! Property-based tests for the synthetic EEG substrate.

use efficsense_dsp::stats::{peak, rms};
use efficsense_signals::noise::{Gaussian, PinkNoise};
use efficsense_signals::{DatasetConfig, EegClass, EegDataset, EegGenerator, EegParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn records_always_finite_and_physiological(
        seed in any::<u64>(),
        duration in 1.0f64..12.0,
    ) {
        let mut gen = EegGenerator::new(EegParams::default(), seed);
        for class in EegClass::ALL {
            let x = gen.record(class, 173.61, duration);
            prop_assert_eq!(x.len(), (173.61 * duration) as usize);
            prop_assert!(x.iter().all(|v| v.is_finite()));
            // Scalp EEG never exceeds ~1 mV.
            prop_assert!(peak(&x) < 1e-3, "peak {} too large", peak(&x));
            prop_assert!(rms(&x) > 1e-7, "record should not be silent");
        }
    }

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let cfg = DatasetConfig {
            records_per_class: 2,
            duration_s: 2.0,
            seed,
            ..Default::default()
        };
        prop_assert_eq!(EegDataset::generate(&cfg), EegDataset::generate(&cfg));
    }

    #[test]
    fn split_partitions_dataset(
        n in 2usize..12,
        frac_pct in 10u32..50,
    ) {
        let cfg = DatasetConfig { records_per_class: n, duration_s: 1.0, ..Default::default() };
        let ds = EegDataset::generate(&cfg);
        let (train, test) = ds.split(frac_pct as f64 / 100.0);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let mut ids: Vec<usize> = train.iter().chain(test.iter()).map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), ds.len(), "every record exactly once");
    }

    #[test]
    fn gaussian_bounded_variance(seed in any::<u64>(), sigma in 0.1f64..10.0) {
        let mut g = Gaussian::new(seed);
        let x = g.vector(5000, sigma);
        let s = efficsense_dsp::stats::std_dev(&x);
        prop_assert!((s / sigma - 1.0).abs() < 0.15, "σ estimate {s} vs {sigma}");
    }

    #[test]
    fn pink_noise_finite_and_nonzero(seed in any::<u64>()) {
        let mut p = PinkNoise::new(seed);
        let x = p.vector(2000, 1.0);
        prop_assert!(x.iter().all(|v| v.is_finite()));
        prop_assert!(rms(&x) > 0.05);
    }

    #[test]
    fn seizure_energy_exceeds_normal_on_average(seed in any::<u64>()) {
        let params = EegParams {
            powerline_probability: 0.0,
            emg_probability: 0.0,
            blink_probability: 0.0,
            ..Default::default()
        };
        let mut gen = EegGenerator::new(params, seed);
        let mut seiz = 0.0;
        let mut norm = 0.0;
        for _ in 0..4 {
            seiz += rms(&gen.record(EegClass::Seizure, 173.61, 6.0));
            norm += rms(&gen.record(EegClass::Normal, 173.61, 6.0));
        }
        prop_assert!(seiz > norm, "seizure rms {seiz} vs normal {norm}");
    }
}
