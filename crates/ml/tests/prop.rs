//! Property-style tests for the ML substrate, run as seeded Monte-Carlo
//! loops.

use efficsense_ml::knn::KnnClassifier;
use efficsense_ml::logreg::LogisticRegression;
use efficsense_ml::metrics::{accuracy, Confusion};
use efficsense_ml::mlp::MlpClassifier;
use efficsense_ml::{Classifier, Scaler, TrainConfig};
use efficsense_rng::Rng64;

const CASES: u64 = 48;

#[test]
fn scaler_output_always_zero_mean_unit_var() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x5CA1 + case);
        let n_rows = g.range(2, 30);
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| (0..3).map(|_| g.uniform(-100.0, 100.0)).collect())
            .collect();
        let sc = Scaler::fit(&rows);
        let t = sc.transform_batch(&rows);
        for d in 0..3 {
            let m: f64 = t.iter().map(|r| r[d]).sum::<f64>() / t.len() as f64;
            let v: f64 = t.iter().map(|r| (r[d] - m) * (r[d] - m)).sum::<f64>() / t.len() as f64;
            assert!(m.abs() < 1e-8, "case {case}: mean {m}");
            assert!(v < 1.0 + 1e-6, "case {case}: var {v}");
        }
    }
}

#[test]
fn mlp_probabilities_form_distribution() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x3170 + case);
        let x: Vec<f64> = (0..5).map(|_| g.uniform(-10.0, 10.0)).collect();
        let seed = g.next_u64();
        let mlp = MlpClassifier::new(5, &[8], 3, seed);
        let p = mlp.predict_proba(&x);
        assert_eq!(p.len(), 3, "case {case}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)), "case {case}");
        // predict() is the argmax of predict_proba().
        let arg = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        assert_eq!(Some(mlp.predict(&x)), arg, "case {case}");
    }
}

#[test]
fn logreg_decision_threshold_consistent() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x1069 + case);
        let x: Vec<f64> = (0..2).map(|_| g.uniform(-5.0, 5.0)).collect();
        let mut lr = LogisticRegression::new();
        lr.fit(
            &[vec![-1.0, 0.0], vec![1.0, 0.0]],
            &[0, 1],
            &TrainConfig {
                epochs: 50,
                ..Default::default()
            },
        );
        let p = lr.probability(&x);
        assert_eq!(lr.predict(&x), usize::from(p >= 0.5), "case {case}");
    }
}

#[test]
fn knn_prediction_is_a_training_label() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x6AA0 + case);
        let n = g.range(1, 20);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![g.uniform(-10.0, 10.0)]).collect();
        let y: Vec<usize> = (0..n).map(|_| g.index(3)).collect();
        let query = g.uniform(-10.0, 10.0);
        let k = g.range(1, 5);
        let mut knn = KnnClassifier::new(k, 3);
        knn.fit(&x, &y, &TrainConfig::default());
        let pred = knn.predict(&[query]);
        assert!(y.contains(&pred), "case {case}");
    }
}

#[test]
fn accuracy_bounded_and_exact_for_identical() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xACC0 + case);
        let n = g.range(1, 50);
        let labels: Vec<usize> = (0..n).map(|_| g.index(2)).collect();
        assert_eq!(accuracy(&labels, &labels), 1.0, "case {case}");
        let flipped: Vec<usize> = labels.iter().map(|l| 1 - l).collect();
        assert_eq!(accuracy(&labels, &flipped), 0.0, "case {case}");
    }
}

#[test]
fn confusion_counts_partition_total() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xC0F0 + case);
        let truth: Vec<usize> = (0..g.range(1, 60)).map(|_| g.index(2)).collect();
        let pred: Vec<usize> = (0..g.range(1, 60)).map(|_| g.index(2)).collect();
        let n = truth.len().min(pred.len());
        let c = Confusion::from_labels(&truth[..n], &pred[..n]);
        assert_eq!(c.tp + c.tn + c.fp + c.fn_, n, "case {case}");
        assert!(c.accuracy() >= 0.0 && c.accuracy() <= 1.0, "case {case}");
        assert!(c.f1() >= 0.0 && c.f1() <= 1.0, "case {case}");
    }
}

#[test]
fn mlp_training_never_produces_nan() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x9A90 + case);
        let seed = g.next_u64();
        let lr = g.uniform(1e-4, 0.5);
        let x = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
        let y = vec![0, 1, 0];
        let mut mlp = MlpClassifier::new(2, &[4], 2, seed);
        mlp.fit(
            &x,
            &y,
            &TrainConfig {
                epochs: 30,
                learning_rate: lr,
                ..Default::default()
            },
        );
        for xi in &x {
            let p = mlp.predict_proba(xi);
            assert!(p.iter().all(|v| v.is_finite()), "case {case}");
        }
    }
}
