//! Property-based tests for the ML substrate.

use efficsense_ml::knn::KnnClassifier;
use efficsense_ml::logreg::LogisticRegression;
use efficsense_ml::metrics::{accuracy, Confusion};
use efficsense_ml::mlp::MlpClassifier;
use efficsense_ml::{Classifier, Scaler, TrainConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scaler_output_always_zero_mean_unit_var(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3),
            2..30
        )
    ) {
        let sc = Scaler::fit(&rows);
        let t = sc.transform_batch(&rows);
        for d in 0..3 {
            let m: f64 = t.iter().map(|r| r[d]).sum::<f64>() / t.len() as f64;
            let v: f64 = t.iter().map(|r| (r[d] - m) * (r[d] - m)).sum::<f64>() / t.len() as f64;
            prop_assert!(m.abs() < 1e-8, "mean {m}");
            prop_assert!(v < 1.0 + 1e-6, "var {v}");
        }
    }

    #[test]
    fn mlp_probabilities_form_distribution(
        x in proptest::collection::vec(-10.0f64..10.0, 5),
        seed in any::<u64>(),
    ) {
        let mlp = MlpClassifier::new(5, &[8], 3, seed);
        let p = mlp.predict_proba(&x);
        prop_assert_eq!(p.len(), 3);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        // predict() is the argmax of predict_proba().
        let arg = p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        prop_assert_eq!(Some(mlp.predict(&x)), arg);
    }

    #[test]
    fn logreg_decision_threshold_consistent(
        x in proptest::collection::vec(-5.0f64..5.0, 2),
    ) {
        let mut lr = LogisticRegression::new();
        lr.fit(
            &[vec![-1.0, 0.0], vec![1.0, 0.0]],
            &[0, 1],
            &TrainConfig { epochs: 50, ..Default::default() },
        );
        let p = lr.probability(&x);
        prop_assert_eq!(lr.predict(&x), usize::from(p >= 0.5));
    }

    #[test]
    fn knn_prediction_is_a_training_label(
        train in proptest::collection::vec((-10.0f64..10.0, 0usize..3), 1..20),
        query in -10.0f64..10.0,
        k in 1usize..5,
    ) {
        let x: Vec<Vec<f64>> = train.iter().map(|(v, _)| vec![*v]).collect();
        let y: Vec<usize> = train.iter().map(|(_, l)| *l).collect();
        let mut knn = KnnClassifier::new(k, 3);
        knn.fit(&x, &y, &TrainConfig::default());
        let pred = knn.predict(&[query]);
        prop_assert!(y.contains(&pred));
    }

    #[test]
    fn accuracy_bounded_and_exact_for_identical(
        labels in proptest::collection::vec(0usize..2, 1..50),
    ) {
        prop_assert_eq!(accuracy(&labels, &labels), 1.0);
        let flipped: Vec<usize> = labels.iter().map(|l| 1 - l).collect();
        prop_assert_eq!(accuracy(&labels, &flipped), 0.0);
    }

    #[test]
    fn confusion_counts_partition_total(
        truth in proptest::collection::vec(0usize..2, 1..60),
        pred in proptest::collection::vec(0usize..2, 1..60),
    ) {
        let n = truth.len().min(pred.len());
        let c = Confusion::from_labels(&truth[..n], &pred[..n]);
        prop_assert_eq!(c.tp + c.tn + c.fp + c.fn_, n);
        prop_assert!(c.accuracy() >= 0.0 && c.accuracy() <= 1.0);
        prop_assert!(c.f1() >= 0.0 && c.f1() <= 1.0);
    }

    #[test]
    fn mlp_training_never_produces_nan(
        seed in any::<u64>(),
        lr in 1e-4f64..0.5,
    ) {
        let x = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
        let y = vec![0, 1, 0];
        let mut mlp = MlpClassifier::new(2, &[4], 2, seed);
        mlp.fit(&x, &y, &TrainConfig { epochs: 30, learning_rate: lr, ..Default::default() });
        for xi in &x {
            let p = mlp.predict_proba(xi);
            prop_assert!(p.iter().all(|v| v.is_finite()));
        }
    }
}
