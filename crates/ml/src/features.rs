//! EEG feature extraction for the detection goal function.

use efficsense_dsp::spectrum::{welch, Psd};
use efficsense_dsp::stats;
use efficsense_dsp::window::Window;

/// The classical EEG frequency bands in Hz.
pub const BANDS: [(f64, f64); 5] = [
    (0.5, 4.0),   // delta
    (4.0, 8.0),   // theta
    (8.0, 13.0),  // alpha
    (13.0, 30.0), // beta
    (30.0, 70.0), // gamma
];

/// Feature extraction configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Welch segment length in samples.
    pub welch_segment: usize,
    /// Small floor added inside logs to keep features finite.
    pub log_floor: f64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            welch_segment: 256,
            log_floor: 1e-18,
        }
    }
}

/// Extracts a fixed-length feature vector from an EEG record.
///
/// Features (13 total):
/// 1–5. log band powers (delta, theta, alpha, beta, gamma)
/// 6. log total power
/// 7. relative low-frequency power (delta+theta fraction)
/// 8. log RMS amplitude
/// 9. log line length per sample
/// 10. Hjorth mobility
/// 11. Hjorth complexity
/// 12. zero-crossing rate
/// 13. excess kurtosis
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureExtractor {
    config: FeatureConfig,
}

/// Number of features produced by [`FeatureExtractor::extract`].
pub const FEATURE_COUNT: usize = 13;

impl FeatureExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: FeatureConfig) -> Self {
        Self { config }
    }

    /// Human-readable feature names, aligned with the extraction order.
    pub fn feature_names() -> [&'static str; FEATURE_COUNT] {
        [
            "log_delta_power",
            "log_theta_power",
            "log_alpha_power",
            "log_beta_power",
            "log_gamma_power",
            "log_total_power",
            "rel_low_power",
            "log_rms",
            "log_line_length",
            "hjorth_mobility",
            "hjorth_complexity",
            "zero_cross_rate",
            "kurtosis",
        ]
    }

    fn band_powers(&self, psd: &Psd, fs: f64) -> [f64; 5] {
        let nyq = fs / 2.0;
        let mut out = [0.0; 5];
        for (i, &(lo, hi)) in BANDS.iter().enumerate() {
            let hi_c = hi.min(nyq - psd.freq_resolution);
            out[i] = if lo < hi_c {
                psd.band_power(lo, hi_c)
            } else {
                0.0
            };
        }
        out
    }

    /// Extracts the feature vector from `x` sampled at `fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `fs <= 0`.
    pub fn extract(&self, x: &[f64], fs: f64) -> Vec<f64> {
        assert!(
            !x.is_empty(),
            "cannot extract features from an empty record"
        );
        assert!(fs > 0.0, "sample rate must be positive");
        let floor = self.config.log_floor;
        let psd = welch(x, fs, self.config.welch_segment.min(x.len()), Window::Hann);
        let bp = self.band_powers(&psd, fs);
        let total: f64 = bp.iter().sum::<f64>().max(floor);
        let low_frac = (bp[0] + bp[1]) / total;
        let rms = stats::rms(x);
        let ll = stats::line_length(x) / x.len() as f64;
        let mut f = Vec::with_capacity(FEATURE_COUNT);
        for p in bp {
            f.push((p + floor).ln());
        }
        f.push(total.ln());
        f.push(low_frac);
        f.push((rms + floor.sqrt()).ln());
        f.push((ll + floor.sqrt()).ln());
        f.push(stats::hjorth_mobility(x));
        f.push(stats::hjorth_complexity(x));
        f.push(stats::zero_crossings(x) as f64 / x.len() as f64);
        f.push(stats::kurtosis(x).clamp(-10.0, 10.0));
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_signals::{EegClass, EegGenerator, EegParams};

    #[test]
    fn feature_vector_has_fixed_length() {
        let ex = FeatureExtractor::default();
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin()).collect();
        let f = ex.extract(&x, 173.61);
        assert_eq!(f.len(), FEATURE_COUNT);
        assert_eq!(FeatureExtractor::feature_names().len(), FEATURE_COUNT);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn features_finite_for_silence() {
        let ex = FeatureExtractor::default();
        let f = ex.extract(&vec![0.0; 500], 173.61);
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }

    #[test]
    fn seizure_and_normal_separate_in_feature_space() {
        let ex = FeatureExtractor::default();
        let mut gen = EegGenerator::new(EegParams::default(), 42);
        let fs = 173.61;
        let mut dist = 0.0;
        for _ in 0..5 {
            let n = ex.extract(&gen.record(EegClass::Normal, fs, 8.0), fs);
            let s = ex.extract(&gen.record(EegClass::Seizure, fs, 8.0), fs);
            // log total power difference is the dominant discriminator.
            dist += s[5] - n[5];
        }
        assert!(dist / 5.0 > 1.0, "mean log-power gap {}", dist / 5.0);
    }

    #[test]
    fn amplitude_scaling_shifts_log_power_only() {
        let ex = FeatureExtractor::default();
        let x: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.37).sin() * 1e-5).collect();
        let x10: Vec<f64> = x.iter().map(|v| v * 10.0).collect();
        let f1 = ex.extract(&x, 173.61);
        let f2 = ex.extract(&x10, 173.61);
        // Band powers shift by ln(100) = 4.6; shape features stay put.
        assert!((f2[5] - f1[5] - 100f64.ln()).abs() < 0.01);
        assert!((f2[9] - f1[9]).abs() < 1e-6, "mobility invariant to scale");
        assert!((f2[11] - f1[11]).abs() < 1e-9, "ZCR invariant to scale");
    }

    #[test]
    fn white_noise_raises_gamma_band() {
        let ex = FeatureExtractor::default();
        let mut gen = efficsense_signals::noise::Gaussian::new(3);
        let clean: Vec<f64> = (0..4000)
            .map(|i| 1e-5 * (2.0 * std::f64::consts::PI * 5.0 * i as f64 / 173.61).sin())
            .collect();
        let noisy: Vec<f64> = clean.iter().map(|v| v + gen.sample_scaled(1e-5)).collect();
        let fc = ex.extract(&clean, 173.61);
        let fn_ = ex.extract(&noisy, 173.61);
        assert!(
            fn_[4] > fc[4] + 1.0,
            "gamma log-power must jump with white noise"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let _ = FeatureExtractor::default().extract(&[], 100.0);
    }
}
