//! k-nearest-neighbour classifier — the non-parametric baseline.

use crate::{Classifier, TrainConfig};

/// k-nearest-neighbour classifier with Euclidean distance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnClassifier {
    /// Number of neighbours consulted per prediction.
    pub k: usize,
    n_classes: usize,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<usize>,
}

impl KnnClassifier {
    /// Creates a k-NN classifier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `n_classes == 0`.
    pub fn new(k: usize, n_classes: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(n_classes > 0, "need at least one class");
        Self {
            k,
            n_classes,
            train_x: Vec::new(),
            train_y: Vec::new(),
        }
    }

    fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], _cfg: &TrainConfig) {
        assert_eq!(x.len(), y.len(), "feature and label counts must match");
        assert!(!x.is_empty(), "cannot train on an empty set");
        assert!(y.iter().all(|&c| c < self.n_classes), "label out of range");
        self.train_x = x.to_vec();
        self.train_y = y.to_vec();
    }

    fn predict(&self, x: &[f64]) -> usize {
        assert!(!self.train_x.is_empty(), "classifier has not been fitted");
        let mut dists: Vec<(f64, usize)> = self
            .train_x
            .iter()
            .zip(&self.train_y)
            .map(|(t, &l)| (Self::dist_sq(x, t), l))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0usize; self.n_classes];
        for &(_, l) in &dists[..k] {
            votes[l] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.train_x.is_empty(), "classifier has not been fitted");
        let mut dists: Vec<(f64, usize)> = self
            .train_x
            .iter()
            .zip(&self.train_y)
            .map(|(t, &l)| (Self::dist_sq(x, t), l))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut p = vec![0.0; self.n_classes];
        for &(_, l) in &dists[..k] {
            p[l] += 1.0 / k as f64;
        }
        p
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![0.0, 0.2],
            vec![5.0, 5.0],
            vec![5.1, 4.9],
            vec![4.8, 5.2],
        ];
        let y = vec![0, 0, 0, 1, 1, 1];
        (x, y)
    }

    #[test]
    fn nearest_cluster_wins() {
        let (x, y) = toy();
        let mut knn = KnnClassifier::new(3, 2);
        knn.fit(&x, &y, &TrainConfig::default());
        assert_eq!(knn.predict(&[0.05, 0.05]), 0);
        assert_eq!(knn.predict(&[5.0, 5.1]), 1);
    }

    #[test]
    fn k1_memorises_training_set() {
        let (x, y) = toy();
        let mut knn = KnnClassifier::new(1, 2);
        knn.fit(&x, &y, &TrainConfig::default());
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(knn.predict(xi), yi);
        }
    }

    #[test]
    fn proba_reflects_vote_share() {
        let (x, y) = toy();
        let mut knn = KnnClassifier::new(6, 2);
        knn.fit(&x, &y, &TrainConfig::default());
        let p = knn.predict_proba(&[2.5, 2.5]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_set_is_clamped() {
        let (x, y) = toy();
        let mut knn = KnnClassifier::new(100, 2);
        knn.fit(&x, &y, &TrainConfig::default());
        let _ = knn.predict(&[0.0, 0.0]); // must not panic
    }

    #[test]
    #[should_panic(expected = "not been fitted")]
    fn predict_before_fit_panics() {
        let knn = KnnClassifier::new(1, 2);
        let _ = knn.predict(&[0.0]);
    }
}
