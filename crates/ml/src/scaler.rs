//! Z-score feature normalisation.

/// Per-feature standardisation fitted on a training set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fits means and standard deviations over feature rows.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or rows have inconsistent lengths.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a scaler on no data");
        let d = x[0].len();
        assert!(
            x.iter().all(|r| r.len() == d),
            "inconsistent feature dimensions"
        );
        let n = x.len() as f64;
        let mut means = vec![0.0; d];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in x {
            for ((s, v), m) in vars.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| (v / n).sqrt().max(1e-12))
            .collect();
        Self { means, stds }
    }

    /// Standardises one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the fitted dimension.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len(), "feature dimension mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardises a batch of rows.
    pub fn transform_batch(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform(r)).collect()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_std() {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 1000.0 + 3.0 * i as f64])
            .collect();
        let sc = Scaler::fit(&x);
        let t = sc.transform_batch(&x);
        for d in 0..2 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.iter().map(|r| r[d] * r[d]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let x = vec![vec![5.0], vec![5.0], vec![5.0]];
        let sc = Scaler::fit(&x);
        let t = sc.transform(&[5.0]);
        assert!(t[0].is_finite());
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn dim_reported() {
        let sc = Scaler::fit(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(sc.dim(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dim() {
        let sc = Scaler::fit(&[vec![1.0, 2.0]]);
        let _ = sc.transform(&[1.0]);
    }
}
