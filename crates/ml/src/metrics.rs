//! Classification metrics.

/// Fraction of predictions equal to the truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "cannot score an empty set");
    let hits = truth.iter().zip(pred).filter(|(a, b)| a == b).count();
    hits as f64 / truth.len() as f64
}

/// A binary confusion matrix (class 1 = positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds the confusion matrix from parallel label slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or labels outside `{0, 1}`.
    pub fn from_labels(truth: &[usize], pred: &[usize]) -> Self {
        assert_eq!(truth.len(), pred.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&t, &p) in truth.iter().zip(pred) {
            assert!(t < 2 && p < 2, "binary labels required");
            match (t, p) {
                (1, 1) => c.tp += 1,
                (0, 0) => c.tn += 1,
                (0, 1) => c.fp += 1,
                (1, 0) => c.fn_ += 1,
                _ => unreachable!(),
            }
        }
        c
    }

    /// Sensitivity (recall of the positive class); 0 when undefined.
    pub fn sensitivity(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Specificity (recall of the negative class); 0 when undefined.
    pub fn specificity(&self) -> f64 {
        let d = self.tn + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tn as f64 / d as f64
        }
    }

    /// Precision of the positive class; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.tn + self.fp + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// F1 score; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.sensitivity();
        if efficsense_dsp::approx::is_zero(p + r) {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let truth = [1, 1, 0, 0, 1, 0];
        let pred = [1, 0, 0, 1, 1, 0];
        let c = Confusion::from_labels(&truth, &pred);
        assert_eq!((c.tp, c.tn, c.fp, c.fn_), (2, 2, 1, 1));
        assert!((c.sensitivity() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.specificity() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let c = Confusion::default();
        assert_eq!(c.sensitivity(), 0.0);
        assert_eq!(c.specificity(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn perfect_prediction() {
        let c = Confusion::from_labels(&[0, 1, 0, 1], &[0, 1, 0, 1]);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch() {
        let _ = accuracy(&[0], &[0, 1]);
    }
}
