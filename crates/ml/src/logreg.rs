//! Binary logistic regression (gradient descent), a linear baseline for the
//! detection goal function.

use crate::{Classifier, TrainConfig};

/// Binary logistic-regression classifier.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogisticRegression {
    w: Vec<f64>,
    b: f64,
}

impl LogisticRegression {
    /// Creates an untrained model (weights are sized on the first `fit`).
    pub fn new() -> Self {
        Self::default()
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }

    /// Decision function `w·x + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.w.len(), "feature dimension mismatch");
        self.b + self.w.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// Probability of class 1.
    pub fn probability(&self, x: &[f64]) -> f64 {
        Self::sigmoid(self.decision(x))
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], cfg: &TrainConfig) {
        assert_eq!(x.len(), y.len(), "feature and label counts must match");
        assert!(!x.is_empty(), "cannot train on an empty set");
        assert!(y.iter().all(|&c| c < 2), "logistic regression is binary");
        let d = x[0].len();
        if self.w.len() != d {
            self.w = vec![0.0; d];
            self.b = 0.0;
        }
        let n = x.len() as f64;
        for _ in 0..cfg.epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (xi, &yi) in x.iter().zip(y) {
                let p = self.probability(xi);
                let err = p - yi as f64;
                for (g, v) in gw.iter_mut().zip(xi) {
                    *g += err * v;
                }
                gb += err;
            }
            for (w, g) in self.w.iter_mut().zip(&gw) {
                *w -= cfg.learning_rate * (g / n + cfg.weight_decay * *w);
            }
            self.b -= cfg.learning_rate * gb / n;
        }
    }

    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.probability(x) >= 0.5)
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let p = self.probability(x);
        vec![1.0 - p, p]
    }

    fn n_classes(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn separates_linear_classes() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 50.0 - 1.0]).collect();
        let y: Vec<usize> = x.iter().map(|v| usize::from(v[0] > 0.1)).collect();
        let mut lr = LogisticRegression::new();
        lr.fit(
            &x,
            &y,
            &TrainConfig {
                epochs: 2000,
                learning_rate: 0.5,
                ..Default::default()
            },
        );
        let preds: Vec<usize> = x.iter().map(|v| lr.predict(v)).collect();
        assert!(accuracy(&y, &preds) > 0.95);
    }

    #[test]
    fn probabilities_bounded() {
        let mut lr = LogisticRegression::new();
        lr.fit(
            &[vec![0.0], vec![1.0]],
            &[0, 1],
            &TrainConfig {
                epochs: 100,
                ..Default::default()
            },
        );
        for v in [-100.0, 0.0, 100.0] {
            let p = lr.probability(&[v]);
            assert!((0.0..=1.0).contains(&p));
        }
        let pp = lr.predict_proba(&[0.5]);
        assert!((pp[0] + pp[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let x = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let y = vec![0, 1];
        let cfg = TrainConfig {
            epochs: 50,
            ..Default::default()
        };
        let mut a = LogisticRegression::new();
        let mut b = LogisticRegression::new();
        a.fit(&x, &y, &cfg);
        b.fit(&x, &y, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn rejects_multiclass() {
        let mut lr = LogisticRegression::new();
        lr.fit(&[vec![0.0]], &[2], &TrainConfig::default());
    }
}
