//! # efficsense-ml
//!
//! From-scratch machine-learning substrate for the EffiCSense detection goal
//! function.
//!
//! The paper scores front-end designs by *seizure detection accuracy*, using
//! the deep network of Ullah et al. as the detector. That model (and its
//! training corpus) is not available, so this crate provides an equivalent
//! goal-function detector: spectral/temporal EEG feature extraction feeding a
//! small multi-layer perceptron trained with Adam, plus logistic-regression
//! and k-nearest-neighbour baselines. What matters for the framework is that
//! detection accuracy is ≥ 98 % on clean signals and degrades as front-end
//! noise, quantisation and CS reconstruction error corrupt the features —
//! exactly the property these detectors have.
//!
//! Everything is implemented on plain `Vec<f64>` with seeded determinism.
//!
//! ```
//! use efficsense_ml::{mlp::MlpClassifier, Classifier, TrainConfig};
//! // Tiny XOR-ish toy problem.
//! let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
//! let y = vec![0, 1, 1, 0];
//! let mut mlp = MlpClassifier::new(2, &[8], 2, 7);
//! mlp.fit(&x, &y, &TrainConfig { epochs: 2000, ..Default::default() });
//! let acc = efficsense_ml::metrics::accuracy(&y, &x.iter().map(|v| mlp.predict(v)).collect::<Vec<_>>());
//! assert!(acc > 0.99);
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod features;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod scaler;

pub use features::{FeatureConfig, FeatureExtractor};
pub use scaler::Scaler;

/// Training hyperparameters shared by the gradient-based classifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 1e-2,
            batch_size: 32,
            weight_decay: 1e-4,
        }
    }
}

/// A trainable classifier mapping feature vectors to class indices.
pub trait Classifier {
    /// Fits the model to feature rows `x` with labels `y`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` and `y` lengths differ or `x` is empty.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], cfg: &TrainConfig);

    /// Predicts the class of one feature vector.
    fn predict(&self, x: &[f64]) -> usize;

    /// Predicts class probabilities (defaults to a one-hot of `predict`).
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.n_classes()];
        p[self.predict(x)] = 1.0;
        p
    }

    /// Number of classes.
    fn n_classes(&self) -> usize;
}
