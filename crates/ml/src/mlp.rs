//! Multi-layer perceptron with Adam, from scratch.

use crate::{Classifier, TrainConfig};
use efficsense_rng::Rng64;

/// One dense layer with its Adam state.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(n_in: usize, n_out: usize, rng: &mut Rng64) -> Self {
        // He initialisation for ReLU networks.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out).map(|_| rng.normal() * scale).collect();
        Self {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n_out)
            .map(|o| {
                let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
                self.b[o] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
            })
            .collect()
    }
}

/// Multi-layer perceptron classifier (ReLU hidden layers, softmax output,
/// cross-entropy loss, Adam optimiser).
#[derive(Debug, Clone, PartialEq)]
pub struct MlpClassifier {
    layers: Vec<Dense>,
    n_classes: usize,
    seed: u64,
    adam_t: u64,
}

impl MlpClassifier {
    /// Creates an untrained MLP with the given hidden layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs` or `n_classes` is zero, or a hidden size is zero.
    pub fn new(n_inputs: usize, hidden: &[usize], n_classes: usize, seed: u64) -> Self {
        assert!(n_inputs > 0 && n_classes > 0, "dimensions must be positive");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden sizes must be positive"
        );
        let mut rng = Rng64::new(seed);
        let mut layers = Vec::new();
        let mut prev = n_inputs;
        for &h in hidden {
            layers.push(Dense::new(prev, h, &mut rng));
            prev = h;
        }
        layers.push(Dense::new(prev, n_classes, &mut rng));
        Self {
            layers,
            n_classes,
            seed,
            adam_t: 0,
        }
    }

    /// Forward pass returning all layer activations (post-ReLU for hidden,
    /// raw logits for the output layer).
    fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = vec![x.to_vec()];
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(acts.last().expect("non-empty"));
            if li != last {
                for v in &mut z {
                    *v = v.max(0.0); // ReLU
                }
            }
            acts.push(z);
        }
        acts
    }

    fn softmax(z: &[f64]) -> Vec<f64> {
        let m = z.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let e: Vec<f64> = z.iter().map(|v| (v - m).exp()).collect();
        let s: f64 = e.iter().sum();
        e.into_iter().map(|v| v / s).collect()
    }

    /// Mean cross-entropy loss over a labelled set (diagnostic).
    pub fn loss(&self, x: &[Vec<f64>], y: &[usize]) -> f64 {
        assert_eq!(x.len(), y.len());
        let mut total = 0.0;
        for (xi, &yi) in x.iter().zip(y) {
            let acts = self.forward_all(xi);
            let p = Self::softmax(acts.last().expect("non-empty"));
            total -= (p[yi].max(1e-300)).ln();
        }
        total / x.len() as f64
    }

    /// One Adam update over a mini-batch. Returns the batch loss.
    #[allow(clippy::needless_range_loop)] // `o` indexes gb, gw and delta in lockstep
    fn train_batch(&mut self, batch: &[(&Vec<f64>, usize)], lr: f64, wd: f64) -> f64 {
        let bsz = batch.len() as f64;
        // Accumulate gradients.
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut loss = 0.0;
        for &(x, y) in batch {
            let acts = self.forward_all(x);
            let logits = acts.last().expect("non-empty");
            let p = Self::softmax(logits);
            loss -= p[y].max(1e-300).ln();
            // dL/dz_out = p - onehot(y)
            let mut delta: Vec<f64> = p;
            delta[y] -= 1.0;
            for li in (0..self.layers.len()).rev() {
                let input = &acts[li];
                let layer = &self.layers[li];
                for o in 0..layer.n_out {
                    gb[li][o] += delta[o];
                    let grow = &mut gw[li][o * layer.n_in..(o + 1) * layer.n_in];
                    for (g, v) in grow.iter_mut().zip(input) {
                        *g += delta[o] * v;
                    }
                }
                if li > 0 {
                    // Backprop through the layer and the preceding ReLU.
                    let mut prev = vec![0.0; layer.n_in];
                    for o in 0..layer.n_out {
                        let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                        for (p, w) in prev.iter_mut().zip(row) {
                            *p += delta[o] * w;
                        }
                    }
                    for (p, a) in prev.iter_mut().zip(&acts[li]) {
                        if *a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                    delta = prev;
                }
            }
        }
        // Adam step.
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (i, w) in layer.w.iter_mut().enumerate() {
                let g = gw[li][i] / bsz + wd * *w;
                layer.mw[i] = b1 * layer.mw[i] + (1.0 - b1) * g;
                layer.vw[i] = b2 * layer.vw[i] + (1.0 - b2) * g * g;
                *w -= lr * (layer.mw[i] / bc1) / ((layer.vw[i] / bc2).sqrt() + eps);
            }
            for (i, b) in layer.b.iter_mut().enumerate() {
                let g = gb[li][i] / bsz;
                layer.mb[i] = b1 * layer.mb[i] + (1.0 - b1) * g;
                layer.vb[i] = b2 * layer.vb[i] + (1.0 - b2) * g * g;
                *b -= lr * (layer.mb[i] / bc1) / ((layer.vb[i] / bc2).sqrt() + eps);
            }
        }
        loss / bsz
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], cfg: &TrainConfig) {
        assert_eq!(x.len(), y.len(), "feature and label counts must match");
        assert!(!x.is_empty(), "cannot train on an empty set");
        assert!(y.iter().all(|&c| c < self.n_classes), "label out of range");
        let mut rng = Rng64::new(self.seed ^ 0x7A11);
        let mut idx: Vec<usize> = (0..x.len()).collect();
        let bsz = cfg.batch_size.clamp(1, x.len());
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut idx);
            for chunk in idx.chunks(bsz) {
                let batch: Vec<(&Vec<f64>, usize)> = chunk.iter().map(|&i| (&x[i], y[i])).collect();
                self.train_batch(&batch, cfg.learning_rate, cfg.weight_decay);
            }
        }
    }

    fn predict(&self, x: &[f64]) -> usize {
        let acts = self.forward_all(x);
        let logits = acts.last().expect("non-empty");
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let acts = self.forward_all(x);
        Self::softmax(acts.last().expect("non-empty"))
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two Gaussian blobs at (±2, ±2).
        let mut rng = Rng64::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..2usize {
            let centre = if c == 0 { -2.0 } else { 2.0 };
            for _ in 0..n_per {
                let dx: f64 = rng.uniform(-1.0, 1.0);
                let dy: f64 = rng.uniform(-1.0, 1.0);
                x.push(vec![centre + dx, centre + dy]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs(50, 1);
        let mut mlp = MlpClassifier::new(2, &[8], 2, 3);
        mlp.fit(
            &x,
            &y,
            &TrainConfig {
                epochs: 100,
                ..Default::default()
            },
        );
        let preds: Vec<usize> = x.iter().map(|v| mlp.predict(v)).collect();
        assert!(accuracy(&y, &preds) > 0.99);
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let mut mlp = MlpClassifier::new(2, &[16], 2, 7);
        mlp.fit(
            &x,
            &y,
            &TrainConfig {
                epochs: 3000,
                learning_rate: 5e-3,
                ..Default::default()
            },
        );
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(mlp.predict(xi), yi, "at {xi:?}");
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let (x, y) = blobs(30, 5);
        let mut mlp = MlpClassifier::new(2, &[8], 2, 9);
        let before = mlp.loss(&x, &y);
        mlp.fit(
            &x,
            &y,
            &TrainConfig {
                epochs: 50,
                ..Default::default()
            },
        );
        let after = mlp.loss(&x, &y);
        assert!(after < before * 0.5, "loss {before} -> {after}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mlp = MlpClassifier::new(3, &[4], 4, 2);
        let p = mlp.predict_proba(&[0.1, -0.2, 0.3]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = blobs(20, 2);
        let mut a = MlpClassifier::new(2, &[6], 2, 11);
        let mut b = MlpClassifier::new(2, &[6], 2, 11);
        let cfg = TrainConfig {
            epochs: 10,
            ..Default::default()
        };
        a.fit(&x, &y, &cfg);
        b.fit(&x, &y, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn multiclass_works() {
        // Three clusters on a line.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for k in 0..30 {
                x.push(vec![c as f64 * 3.0 + (k % 5) as f64 * 0.1]);
                y.push(c);
            }
        }
        let mut mlp = MlpClassifier::new(1, &[8], 3, 5);
        mlp.fit(
            &x,
            &y,
            &TrainConfig {
                epochs: 300,
                ..Default::default()
            },
        );
        let preds: Vec<usize> = x.iter().map(|v| mlp.predict(v)).collect();
        assert!(accuracy(&y, &preds) > 0.95);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let mut mlp = MlpClassifier::new(1, &[], 2, 0);
        mlp.fit(&[vec![0.0]], &[5], &TrainConfig::default());
    }
}
