//! Property-style tests for the DSP substrate, run as seeded Monte-Carlo
//! loops.

use efficsense_dsp::fft::{dft_naive, Fft};
use efficsense_dsp::filter::{IirFilter, OnePole};
use efficsense_dsp::metrics::{prd_percent, snr_fit_db};
use efficsense_dsp::resample::{resample_linear, sample_at};
use efficsense_dsp::spectrum::periodogram;
use efficsense_dsp::stats::{mean, rms, variance};
use efficsense_dsp::window::Window;
use efficsense_dsp::Complex;
use efficsense_rng::Rng64;

const CASES: u64 = 96;

fn signal(g: &mut Rng64, max_len: usize) -> Vec<f64> {
    let len = g.range(2, max_len);
    (0..len).map(|_| g.uniform(-10.0, 10.0)).collect()
}

#[test]
fn fft_roundtrip_is_identity() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xFF70 + case);
        let x = signal(&mut g, 256);
        let n = x.len().next_power_of_two();
        let fft = Fft::new(n);
        let mut buf: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real(x.get(i).copied().unwrap_or(0.0)))
            .collect();
        let orig = buf.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-8, "case {case}");
            assert!(
                a.im.abs() < 1e-8 || (a.im - b.im).abs() < 1e-8,
                "case {case}"
            );
        }
    }
}

#[test]
fn fft_is_linear() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xFF71 + case);
        let x: Vec<f64> = (0..32).map(|_| g.uniform(-5.0, 5.0)).collect();
        let y: Vec<f64> = (0..32).map(|_| g.uniform(-5.0, 5.0)).collect();
        let a = g.uniform(-3.0, 3.0);
        let fft = Fft::new(32);
        let fx = fft.forward_real(&x);
        let fy = fft.forward_real(&y);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(u, v)| a * u + v).collect();
        let fc = fft.forward_real(&combo);
        for ((zc, zx), zy) in fc.iter().zip(&fx).zip(&fy) {
            let expect = zx.scale(a) + *zy;
            assert!((*zc - expect).abs() < 1e-7, "case {case}");
        }
    }
}

#[test]
fn fft_matches_naive_reference() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xFF72 + case);
        let x: Vec<f64> = (0..16).map(|_| g.uniform(-5.0, 5.0)).collect();
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
        let expect = dft_naive(&buf);
        let fft = Fft::new(16);
        let mut got = buf;
        fft.forward(&mut got);
        for (gz, e) in got.iter().zip(&expect) {
            assert!((*gz - *e).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn parseval_holds_for_any_signal() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xFF73 + case);
        let x = signal(&mut g, 128);
        let n = x.len().next_power_of_two();
        let fft = Fft::new(n);
        let spec = fft.forward_real(&x);
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() < 1e-7 * time.max(1.0), "case {case}");
    }
}

#[test]
fn periodogram_power_tracks_signal_power() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x9E60 + case);
        let x = signal(&mut g, 200);
        let fs = 100.0;
        let psd = periodogram(&x, fs, Window::Rect);
        let sig_power: f64 = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        let est = psd.total_power();
        // Zero-padding smears but preserves total power within a few percent
        // of the rectangular-window estimate.
        assert!(est <= sig_power * 1.01 + 1e-12, "case {case}");
        assert!(est >= sig_power * 0.3 - 1e-12, "case {case}");
    }
}

#[test]
fn one_pole_is_stable_and_bounded() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x09E1 + case);
        let x = signal(&mut g, 300);
        let fc = g.uniform(1.0, 400.0);
        let mut lp = OnePole::lowpass(fc, 1000.0);
        let peak_in = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for &v in &x {
            let y = lp.process(v);
            assert!(y.is_finite(), "case {case}");
            assert!(
                y.abs() <= peak_in + 1e-9,
                "case {case}: one-pole must not overshoot"
            );
        }
    }
}

#[test]
fn butterworth_impulse_response_decays() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xB077 + case);
        let order = g.range(1, 6);
        let fc = g.uniform(5.0, 200.0);
        let mut f = IirFilter::butterworth_lowpass(order, fc, 1000.0);
        let mut energy_head = 0.0;
        let mut energy_tail = 0.0;
        for i in 0..4000 {
            let y = f.process(if i == 0 { 1.0 } else { 0.0 });
            assert!(y.is_finite(), "case {case}");
            if i < 2000 {
                energy_head += y * y
            } else {
                energy_tail += y * y
            }
        }
        assert!(
            energy_tail < energy_head * 0.01 + 1e-12,
            "case {case}: IIR must be stable"
        );
    }
}

#[test]
fn resample_preserves_mean_of_slow_signals() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x4E5A + case);
        let len = g.range(50, 200);
        let x: Vec<f64> = (0..len).map(|_| g.uniform(-5.0, 5.0)).collect();
        // Resampling redistributes samples; the mean of a signal changes only
        // marginally (edge effects).
        let y = resample_linear(&x, 100.0, 173.0);
        assert!((mean(&y) - mean(&x)).abs() < 0.6, "case {case}");
    }
}

#[test]
fn sample_at_never_extrapolates() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x5A3E + case);
        let x = signal(&mut g, 100);
        let t = g.uniform(-5.0, 10.0);
        let v = sample_at(&x, 10.0, t);
        let (lo, hi) = x
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &u| {
                (l.min(u), h.max(u))
            });
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "case {case}");
    }
}

#[test]
fn prd_and_snr_are_consistent() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x94D0 + case);
        let x = signal(&mut g, 100);
        let noise_scale = g.uniform(0.0, 0.5);
        // Skip degenerate all-zero signals.
        if rms(&x) <= 1e-6 {
            continue;
        }
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + noise_scale * ((i * 31) as f64).sin())
            .collect();
        let prd = prd_percent(&x, &y);
        assert!(prd >= 0.0, "case {case}");
        if prd > 1e-9 {
            // snr_fit removes gain/offset so it is at least as good as raw.
            let snr = snr_fit_db(&x, &y);
            let raw = 20.0 * (100.0 / prd).log10();
            assert!(snr >= raw - 1e-6, "case {case}: fit SNR {snr} < raw {raw}");
        }
    }
}

#[test]
fn variance_is_translation_invariant() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x7A61 + case);
        let x = signal(&mut g, 100);
        let c = g.uniform(-100.0, 100.0);
        let shifted: Vec<f64> = x.iter().map(|v| v + c).collect();
        assert!(
            (variance(&x) - variance(&shifted)).abs() < 1e-6 * variance(&x).max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn window_power_gain_le_one() {
    for case in 0..CASES {
        let n = Rng64::new(0x3140 + case).range(2, 512);
        for w in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
        ] {
            let pg = w.power_gain(n);
            assert!(pg > 0.0 && pg <= 1.0 + 1e-12, "case {case}");
            assert!(w.enbw_bins(n) >= 1.0 - 1e-9, "case {case}");
        }
    }
}
