//! Property-based tests for the DSP substrate.

use efficsense_dsp::fft::{dft_naive, Fft};
use efficsense_dsp::filter::{IirFilter, OnePole};
use efficsense_dsp::metrics::{prd_percent, snr_fit_db};
use efficsense_dsp::resample::{resample_linear, sample_at};
use efficsense_dsp::spectrum::periodogram;
use efficsense_dsp::stats::{mean, rms, variance};
use efficsense_dsp::window::Window;
use efficsense_dsp::Complex;
use proptest::prelude::*;

fn signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, 2..max_len)
}

proptest! {
    #[test]
    fn fft_roundtrip_is_identity(x in signal(256)) {
        let n = x.len().next_power_of_two();
        let fft = Fft::new(n);
        let mut buf: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real(x.get(i).copied().unwrap_or(0.0)))
            .collect();
        let orig = buf.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!(a.im.abs() < 1e-8 || (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_is_linear(
        x in proptest::collection::vec(-5.0f64..5.0, 32),
        y in proptest::collection::vec(-5.0f64..5.0, 32),
        a in -3.0f64..3.0,
    ) {
        let fft = Fft::new(32);
        let fx = fft.forward_real(&x);
        let fy = fft.forward_real(&y);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(u, v)| a * u + v).collect();
        let fc = fft.forward_real(&combo);
        for ((zc, zx), zy) in fc.iter().zip(&fx).zip(&fy) {
            let expect = zx.scale(a) + *zy;
            prop_assert!((*zc - expect).abs() < 1e-7);
        }
    }

    #[test]
    fn fft_matches_naive_reference(x in proptest::collection::vec(-5.0f64..5.0, 16)) {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
        let expect = dft_naive(&buf);
        let fft = Fft::new(16);
        let mut got = buf;
        fft.forward(&mut got);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((*g - *e).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds_for_any_signal(x in signal(128)) {
        let n = x.len().next_power_of_two();
        let fft = Fft::new(n);
        let spec = fft.forward_real(&x);
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() < 1e-7 * time.max(1.0));
    }

    #[test]
    fn periodogram_power_tracks_signal_power(x in signal(200)) {
        let fs = 100.0;
        let psd = periodogram(&x, fs, Window::Rect);
        let sig_power: f64 = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        let est = psd.total_power();
        // Zero-padding smears but preserves total power within a few percent
        // of the rectangular-window estimate.
        prop_assert!(est <= sig_power * 1.01 + 1e-12);
        prop_assert!(est >= sig_power * 0.3 - 1e-12);
    }

    #[test]
    fn one_pole_is_stable_and_bounded(
        x in signal(300),
        fc in 1.0f64..400.0,
    ) {
        let mut lp = OnePole::lowpass(fc, 1000.0);
        let peak_in = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for &v in &x {
            let y = lp.process(v);
            prop_assert!(y.is_finite());
            prop_assert!(y.abs() <= peak_in + 1e-9, "one-pole must not overshoot");
        }
    }

    #[test]
    fn butterworth_impulse_response_decays(
        order in 1usize..6,
        fc in 5.0f64..200.0,
    ) {
        let mut f = IirFilter::butterworth_lowpass(order, fc, 1000.0);
        let mut energy_head = 0.0;
        let mut energy_tail = 0.0;
        for i in 0..4000 {
            let y = f.process(if i == 0 { 1.0 } else { 0.0 });
            prop_assert!(y.is_finite());
            if i < 2000 { energy_head += y * y } else { energy_tail += y * y }
        }
        prop_assert!(energy_tail < energy_head * 0.01 + 1e-12, "IIR must be stable");
    }

    #[test]
    fn resample_preserves_mean_of_slow_signals(x in proptest::collection::vec(-5.0f64..5.0, 50..200)) {
        // Resampling redistributes samples; the mean of a signal changes only
        // marginally (edge effects).
        let y = resample_linear(&x, 100.0, 173.0);
        prop_assert!((mean(&y) - mean(&x)).abs() < 0.6);
    }

    #[test]
    fn sample_at_never_extrapolates(x in signal(100), t in -5.0f64..10.0) {
        let v = sample_at(&x, 10.0, t);
        let (lo, hi) = x.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &u| (l.min(u), h.max(u)));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn prd_and_snr_are_consistent(x in signal(100), noise_scale in 0.0f64..0.5) {
        // Skip degenerate all-zero signals.
        prop_assume!(rms(&x) > 1e-6);
        let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v + noise_scale * ((i * 31) as f64).sin()).collect();
        let prd = prd_percent(&x, &y);
        prop_assert!(prd >= 0.0);
        if prd > 1e-9 {
            // snr_fit removes gain/offset so it is at least as good as raw.
            let snr = snr_fit_db(&x, &y);
            let raw = 20.0 * (100.0 / prd).log10();
            prop_assert!(snr >= raw - 1e-6, "fit SNR {snr} < raw {raw}");
        }
    }

    #[test]
    fn variance_is_translation_invariant(x in signal(100), c in -100.0f64..100.0) {
        let shifted: Vec<f64> = x.iter().map(|v| v + c).collect();
        prop_assert!((variance(&x) - variance(&shifted)).abs() < 1e-6 * variance(&x).max(1.0));
    }

    #[test]
    fn window_power_gain_le_one(n in 2usize..512) {
        for w in [Window::Rect, Window::Hann, Window::Hamming, Window::Blackman, Window::BlackmanHarris] {
            let pg = w.power_gain(n);
            prop_assert!(pg > 0.0 && pg <= 1.0 + 1e-12);
            prop_assert!(w.enbw_bins(n) >= 1.0 - 1e-9);
        }
    }
}
