//! Float comparison and finiteness helpers.
//!
//! Direct `==`/`!=` on `f64` is banned across the workspace (the
//! `float-eq` lint rule): it silently misbehaves on rounding noise, on
//! `NaN` (never equal to itself) and on `-0.0` (equal to `0.0` but with a
//! different bit pattern). These helpers make the intended comparison
//! semantics explicit at each call site.

/// Returns `true` when `a` and `b` differ by at most `tol`.
///
/// The tolerance is absolute; pick it from the scale of the quantities
/// compared (e.g. `1e-12` for normalised voltages). `NaN` compares unequal
/// to everything, as it should.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    debug_assert!(tol >= 0.0, "tolerance must be non-negative, got {tol}");
    (a - b).abs() <= tol
}

/// Bitwise-order equality via IEEE 754 `totalOrder`.
///
/// Use where *exact* equality is genuinely meant — comparing a value to a
/// sentinel it was assigned from, or checking entries of a {0, 1} matrix.
/// Unlike `==` this is reflexive for `NaN` and distinguishes `-0.0` from
/// `0.0`.
#[must_use]
pub fn total_eq(a: f64, b: f64) -> bool {
    a.total_cmp(&b).is_eq()
}

/// Returns `true` when `v` is exactly positive or negative zero.
///
/// The usual replacement for `x == 0.0` guards before a division: both
/// zeros divide to an infinity, so both must be caught, while `NaN` must
/// not be.
#[must_use]
pub fn is_zero(v: f64) -> bool {
    v == 0.0 // lint:allow(float-eq) — the one definitional site; ±0.0 both compare equal, NaN does not.
}

/// Debug-asserts that every element of `xs` is finite.
///
/// Hot numerical kernels call this at stage boundaries (the `finite-guard`
/// lint rule) so that a `NaN`/`Inf` escaping one stage is caught where it
/// was produced, not thousands of samples downstream. Compiles to nothing
/// in release builds.
pub fn debug_assert_all_finite(xs: &[f64], context: &str) {
    if cfg!(debug_assertions) {
        for (i, &x) in xs.iter().enumerate() {
            debug_assert!(
                x.is_finite(),
                "{context}: non-finite value {x} at index {i}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-11, 1e-12));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
    }

    #[test]
    fn total_eq_is_reflexive_even_for_nan() {
        assert!(total_eq(1.5, 1.5));
        assert!(total_eq(f64::NAN, f64::NAN));
        assert!(!total_eq(0.0, -0.0));
        assert!(!total_eq(1.0, 2.0));
    }

    #[test]
    fn is_zero_catches_both_zeros_only() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(f64::MIN_POSITIVE));
        assert!(!is_zero(f64::NAN));
    }

    #[test]
    fn finite_guard_accepts_finite_data() {
        debug_assert_all_finite(&[0.0, -1.0, 1e300], "test");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    #[cfg(debug_assertions)]
    fn finite_guard_panics_on_nan() {
        debug_assert_all_finite(&[0.0, f64::NAN], "test");
    }
}
