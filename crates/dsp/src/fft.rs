//! Radix-2 fast Fourier transform.
//!
//! The [`Fft`] planner precomputes twiddle factors and the bit-reversal
//! permutation for a fixed power-of-two size, then performs forward and
//! inverse transforms in place. A convenience real-input path
//! ([`Fft::forward_real`]) zero-pads/windows at the caller's discretion and
//! returns the complex spectrum.

use crate::complex::Complex;

/// Planned radix-2 FFT of a fixed power-of-two length.
///
/// ```
/// use efficsense_dsp::{Complex, Fft};
/// let fft = Fft::new(8);
/// let mut x: Vec<Complex> = (0..8).map(|n| Complex::from_real(n as f64)).collect();
/// let orig = x.clone();
/// fft.forward(&mut x);
/// fft.inverse(&mut x);
/// for (a, b) in x.iter().zip(&orig) {
///     assert!((a.re - b.re).abs() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    // Twiddles for the forward transform: w[k] = exp(-2πik/n) for k < n/2.
    twiddles: Vec<Complex>,
    bitrev: Vec<usize>,
}

impl Fft {
    /// Plans an FFT of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n.is_power_of_two(),
            "FFT length {n} must be a power of two"
        );
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| i.reverse_bits() >> (usize::BITS - bits.max(1)))
            .collect::<Vec<_>>();
        // For n == 1 the shift above is wrong; fix up trivially.
        let bitrev = if n == 1 { vec![0] } else { bitrev };
        Self {
            n,
            twiddles,
            bitrev,
        }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the planned length is zero (never; kept for API
    /// completeness alongside [`Fft::len`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn permute(&self, buf: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.bitrev[i];
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex], conjugate: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if conjugate {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }

    /// In-place forward DFT: `X[k] = Σ x[n]·e^(−2πikn/N)`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn forward(&self, buf: &mut [Complex]) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length must equal planned FFT length"
        );
        debug_assert!(
            buf.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
            "fft::forward: non-finite input sample"
        );
        self.permute(buf);
        self.butterflies(buf, false);
        debug_assert!(
            buf.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
            "fft::forward: non-finite spectrum bin"
        );
    }

    /// In-place inverse DFT including the `1/N` normalisation.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn inverse(&self, buf: &mut [Complex]) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length must equal planned FFT length"
        );
        self.permute(buf);
        self.butterflies(buf, true);
        let inv = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.scale(inv);
        }
        debug_assert!(
            buf.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
            "fft::inverse: non-finite output sample"
        );
    }

    /// Forward transform of a real signal.
    ///
    /// The input is zero-padded (or truncated) to the planned length and the
    /// full complex spectrum of length `N` is returned.
    pub fn forward_real(&self, x: &[f64]) -> Vec<Complex> {
        let mut buf = vec![Complex::ZERO; self.n];
        for (b, &v) in buf.iter_mut().zip(x.iter()) {
            *b = Complex::from_real(v);
        }
        self.forward(&mut buf);
        buf
    }
}

/// Returns the smallest power of two that is `>= n`.
///
/// ```
/// assert_eq!(efficsense_dsp::fft::next_pow2(1000), 1024);
/// assert_eq!(efficsense_dsp::fft::next_pow2(1024), 1024);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Naive O(N²) DFT used as a reference in tests and for odd lengths.
///
/// Computes `X[k] = Σ x[n]·e^(−2πikn/N)` for any length.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += v * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let expect = dft_naive(&x);
            let fft = Fft::new(n);
            let mut got = x.clone();
            fft.forward(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!(close(*g, *e, 1e-9), "n={n}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 256;
        let fft = Fft::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 32;
        let fft = Fft::new(n);
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        fft.forward(&mut x);
        for z in &x {
            assert!(close(*z, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn single_bin_sine() {
        let n = 64;
        let fft = Fft::new(n);
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = fft.forward_real(&x);
        // Energy concentrated in bins k0 and n-k0, each with magnitude n/2.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let fft = Fft::new(n);
        let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = fft.forward_real(&x);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn length_one_is_identity() {
        let fft = Fft::new(1);
        let mut x = vec![Complex::new(3.0, -2.0)];
        fft.forward(&mut x);
        assert_eq!(x[0], Complex::new(3.0, -2.0));
        fft.inverse(&mut x);
        assert_eq!(x[0], Complex::new(3.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn rejects_wrong_buffer() {
        let fft = Fft::new(8);
        let mut x = vec![Complex::ZERO; 4];
        fft.forward(&mut x);
    }
}
