//! Descriptive statistics on `f64` slices.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (divides by `n`). Returns 0 for an empty slice.
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root-mean-square value. Returns 0 for an empty slice.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Largest absolute value. Returns 0 for an empty slice.
pub fn peak(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Minimum and maximum, or `None` for an empty slice.
pub fn min_max(x: &[f64]) -> Option<(f64, f64)> {
    if x.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Some((lo, hi))
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `x` is empty or `p` is outside `[0, 100]`.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    assert!(!x.is_empty(), "percentile of an empty slice is undefined");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile {p} must be in [0, 100]"
    );
    let mut v = x.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = p / 100.0 * (v.len() - 1) as f64;
    let i = pos.floor() as usize;
    if i + 1 >= v.len() {
        return v[v.len() - 1];
    }
    let frac = pos - i as f64;
    v[i] * (1.0 - frac) + v[i + 1] * frac
}

/// Median (50th percentile).
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// Line length: `Σ |x[i] − x[i−1]|`, a classic EEG seizure feature.
pub fn line_length(x: &[f64]) -> f64 {
    x.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
}

/// Hjorth mobility: `σ(x') / σ(x)` — a normalised dominant-frequency proxy.
///
/// Returns 0 when the signal is constant.
pub fn hjorth_mobility(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let dx: Vec<f64> = x.windows(2).map(|w| w[1] - w[0]).collect();
    let vx = variance(x);
    if crate::approx::is_zero(vx) {
        return 0.0;
    }
    (variance(&dx) / vx).sqrt()
}

/// Hjorth complexity: `mobility(x') / mobility(x)` — bandwidth-like measure.
///
/// Returns 0 when undefined.
pub fn hjorth_complexity(x: &[f64]) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    let dx: Vec<f64> = x.windows(2).map(|w| w[1] - w[0]).collect();
    let m = hjorth_mobility(x);
    if crate::approx::is_zero(m) {
        return 0.0;
    }
    hjorth_mobility(&dx) / m
}

/// Number of zero crossings (sign changes).
pub fn zero_crossings(x: &[f64]) -> usize {
    x.windows(2)
        .filter(|w| (w[0] >= 0.0 && w[1] < 0.0) || (w[0] < 0.0 && w[1] >= 0.0))
        .count()
}

/// Kurtosis (excess, Fisher). Returns 0 for fewer than 4 samples or a
/// constant signal.
pub fn kurtosis(x: &[f64]) -> f64 {
    if x.len() < 4 {
        return 0.0;
    }
    let m = mean(x);
    let v = variance(x);
    if crate::approx::is_zero(v) {
        return 0.0;
    }
    let m4 = x.iter().map(|u| (u - m).powi(4)).sum::<f64>() / x.len() as f64;
    m4 / (v * v) - 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        assert!((variance(&x) - 1.25).abs() < 1e-12);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_do_not_panic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(peak(&[]), 0.0);
        assert_eq!(min_max(&[]), None);
        assert_eq!(line_length(&[]), 0.0);
        assert_eq!(zero_crossings(&[]), 0);
    }

    #[test]
    fn rms_of_sine_is_a_over_sqrt2() {
        let x = crate::spectrum::sine(10000, 10000.0, 100.0, 3.0, 0.0);
        assert!((rms(&x) - 3.0 / 2f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn percentile_and_median() {
        let x = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&x), 3.0);
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 100.0), 5.0);
        assert_eq!(percentile(&x, 25.0), 2.0);
    }

    #[test]
    fn line_length_of_ramp() {
        let x = [0.0, 1.0, 2.0, 1.0];
        assert_eq!(line_length(&x), 3.0);
    }

    #[test]
    fn mobility_tracks_frequency() {
        let slow = crate::spectrum::sine(4096, 1024.0, 10.0, 1.0, 0.0);
        let fast = crate::spectrum::sine(4096, 1024.0, 100.0, 1.0, 0.0);
        assert!(hjorth_mobility(&fast) > 5.0 * hjorth_mobility(&slow));
    }

    #[test]
    fn complexity_of_pure_sine_near_one() {
        let x = crate::spectrum::sine(8192, 1024.0, 50.0, 1.0, 0.0);
        let c = hjorth_complexity(&x);
        assert!((c - 1.0).abs() < 0.05, "complexity {c}");
    }

    #[test]
    fn zero_crossings_counts_cycles() {
        // 10 full cycles -> 20 crossings (±1 boundary effect).
        let x = crate::spectrum::sine(1000, 1000.0, 10.0, 1.0, 0.1);
        let zc = zero_crossings(&x);
        assert!((19..=21).contains(&zc), "zc={zc}");
    }

    #[test]
    fn kurtosis_of_constant_is_zero() {
        assert_eq!(kurtosis(&[2.0; 100]), 0.0);
    }

    #[test]
    fn kurtosis_sign_discriminates_spiky_signals() {
        // Sparse spikes have positive excess kurtosis, a sine negative.
        let mut spiky = vec![0.0; 1000];
        spiky[100] = 10.0;
        spiky[500] = -9.0;
        assert!(kurtosis(&spiky) > 10.0);
        let x = crate::spectrum::sine(1000, 1000.0, 10.0, 1.0, 0.0);
        assert!(kurtosis(&x) < 0.0);
    }

    #[test]
    fn min_max_finds_extremes() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }
}
