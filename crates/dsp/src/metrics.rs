//! Signal-quality metrics: SNR, SNDR, THD, ENOB, reconstruction error.
//!
//! Two families are provided:
//!
//! * **Tone-based** metrics ([`sndr_db`], [`thd_db`], [`enob`]) operate on a
//!   single-sine test record, the classic mixed-signal characterisation used
//!   for Fig. 4 of the paper.
//! * **Reference-based** metrics ([`snr_ref_db`], [`prd_percent`], [`nmse`])
//!   compare a processed/reconstructed signal against the known clean input,
//!   which is how the paper's Fig. 7a scores arbitrary EEG waveforms.

use crate::fft::next_pow2;
use crate::spectrum::periodogram;
use crate::window::Window;

/// Number of bins to each side of a peak that are attributed to the tone when
/// using the Blackman-Harris window (its main lobe spans ±4 bins of the
/// *data-length* resolution).
const TONE_HALF_WIDTH: usize = 4;

/// Tone half-width in *padded-FFT* bins: zero-padding to `nfft` spreads the
/// main lobe by `nfft / n`, so the integration window must scale with it.
fn tone_half_width_bins(n: usize, nfft: usize) -> usize {
    (TONE_HALF_WIDTH * nfft).div_ceil(n)
}

/// Signal-to-noise-and-distortion ratio (dB) of a record containing a test
/// tone near `f0` Hz.
///
/// The record is windowed (Blackman-Harris), the fundamental is located near
/// `f0`, its main lobe is integrated as signal, DC is discarded, and all
/// remaining power is counted as noise + distortion.
///
/// # Panics
///
/// Panics if `x` is empty or `fs <= 0`.
#[must_use]
pub fn sndr_db(x: &[f64], fs: f64, f0: f64) -> f64 {
    let psd = periodogram(x, fs, Window::BlackmanHarris);
    let n = x.len();
    let nfft = next_pow2(n);
    let half_width = tone_half_width_bins(n, nfft);
    let dc_bins = half_width; // skirt of the DC lobe
    let guess = psd.bin_of(f0);
    // Search around the nominal frequency for the actual peak.
    let lo = guess.saturating_sub(half_width).max(dc_bins + 1);
    let hi = (guess + half_width).min(psd.values.len() - 1);
    let k0 = (lo..=hi)
        .max_by(|&a, &b| psd.values[a].total_cmp(&psd.values[b]))
        .unwrap_or(guess);
    let sig_lo = k0.saturating_sub(half_width);
    let sig_hi = (k0 + half_width).min(psd.values.len() - 1);
    let mut signal = 0.0;
    let mut noise = 0.0;
    for (k, &p) in psd.values.iter().enumerate() {
        if k <= dc_bins {
            continue;
        }
        if (sig_lo..=sig_hi).contains(&k) {
            signal += p;
        } else {
            noise += p;
        }
    }
    let _ = nfft;
    if noise <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

/// Total harmonic distortion (dB, negative is better) of a tone record:
/// ratio of the power in harmonics 2..=`n_harmonics` to the fundamental.
///
/// # Panics
///
/// Panics if `x` is empty, `fs <= 0` or `n_harmonics == 0`.
#[must_use]
pub fn thd_db(x: &[f64], fs: f64, f0: f64, n_harmonics: usize) -> f64 {
    assert!(n_harmonics > 0, "need at least one harmonic");
    let psd = periodogram(x, fs, Window::BlackmanHarris);
    let half_width = tone_half_width_bins(x.len(), next_pow2(x.len()));
    let tone_power = |f: f64| -> f64 {
        let k = psd.bin_of(f);
        let lo = k.saturating_sub(half_width);
        let hi = (k + half_width).min(psd.values.len() - 1);
        psd.values[lo..=hi].iter().sum()
    };
    let fund = tone_power(f0);
    let mut harm = 0.0;
    for h in 2..=(n_harmonics + 1) {
        let fh = f0 * h as f64;
        if fh >= fs / 2.0 {
            break;
        }
        harm += tone_power(fh);
    }
    if fund <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (harm / fund).log10()
}

/// Effective number of bits from an SNDR value: `(SNDR − 1.76) / 6.02`.
#[must_use]
pub fn enob_from_sndr(sndr_db: f64) -> f64 {
    (sndr_db - 1.76) / 6.02
}

/// Effective number of bits measured directly from a tone record.
#[must_use]
pub fn enob(x: &[f64], fs: f64, f0: f64) -> f64 {
    enob_from_sndr(sndr_db(x, fs, f0))
}

/// Reference-based SNR (dB): `10·log10(Σ ref² / Σ (ref − test)²)`.
///
/// Both slices are truncated to the shorter length. Returns `+∞` for a
/// perfect match.
///
/// # Panics
///
/// Panics if either slice is empty.
#[must_use]
pub fn snr_ref_db(reference: &[f64], test: &[f64]) -> f64 {
    assert!(
        !reference.is_empty() && !test.is_empty(),
        "signals must be non-empty"
    );
    let n = reference.len().min(test.len());
    let mut sig = 0.0;
    let mut err = 0.0;
    for i in 0..n {
        sig += reference[i] * reference[i];
        let e = reference[i] - test[i];
        err += e * e;
    }
    if err <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (sig / err).log10()
}

/// Reference-based SNR after removing the best scalar gain + offset fit.
///
/// Analog chains scale and shift the signal; a designer compares shape, not
/// absolute level, so the test signal is first fitted as `a·test + b` to the
/// reference by least squares.
#[must_use]
pub fn snr_fit_db(reference: &[f64], test: &[f64]) -> f64 {
    assert!(
        !reference.is_empty() && !test.is_empty(),
        "signals must be non-empty"
    );
    let n = reference.len().min(test.len());
    let r = &reference[..n];
    let t = &test[..n];
    let nm = n as f64;
    let st: f64 = t.iter().sum();
    let sr: f64 = r.iter().sum();
    let stt: f64 = t.iter().map(|v| v * v).sum();
    let str_: f64 = t.iter().zip(r).map(|(a, b)| a * b).sum();
    let denom = nm * stt - st * st;
    let (a, b) = if denom.abs() < 1e-300 {
        (0.0, sr / nm)
    } else {
        let a = (nm * str_ - st * sr) / denom;
        let b = (sr - a * st) / nm;
        (a, b)
    };
    let fitted: Vec<f64> = t.iter().map(|&v| a * v + b).collect();
    snr_ref_db(r, &fitted)
}

/// Percentage root-mean-square difference, the standard compressed-EEG
/// reconstruction quality metric: `100 · ‖ref − test‖ / ‖ref‖`.
#[must_use]
pub fn prd_percent(reference: &[f64], test: &[f64]) -> f64 {
    assert!(
        !reference.is_empty() && !test.is_empty(),
        "signals must be non-empty"
    );
    let n = reference.len().min(test.len());
    let mut sig = 0.0;
    let mut err = 0.0;
    for i in 0..n {
        sig += reference[i] * reference[i];
        let e = reference[i] - test[i];
        err += e * e;
    }
    if crate::approx::is_zero(sig) {
        return if crate::approx::is_zero(err) {
            0.0
        } else {
            f64::INFINITY
        };
    }
    100.0 * (err / sig).sqrt()
}

/// Normalised mean-square error `Σ(ref−test)² / Σ ref²` (linear, not dB).
#[must_use]
pub fn nmse(reference: &[f64], test: &[f64]) -> f64 {
    let prd = prd_percent(reference, test) / 100.0;
    prd * prd
}

/// Root-mean-square error between two signals (truncated to common length).
#[must_use]
pub fn rmse(reference: &[f64], test: &[f64]) -> f64 {
    assert!(
        !reference.is_empty() && !test.is_empty(),
        "signals must be non-empty"
    );
    let n = reference.len().min(test.len());
    let e: f64 = (0..n).map(|i| (reference[i] - test[i]).powi(2)).sum();
    (e / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::{coherent_frequency, sine};

    fn seeded_noise(n: usize, sigma: f64) -> Vec<f64> {
        // Deterministic pseudo-noise (sum of incommensurate sines ≈ gaussian-ish).
        (0..n)
            .map(|i| {
                let t = i as f64;
                sigma * 1.29 * ((t * 0.7311).sin() + (t * 1.9173).sin() + (t * 0.1931).cos())
                    / 3f64.sqrt()
            })
            .collect()
    }

    #[test]
    fn clean_sine_has_huge_sndr() {
        let fs = 4096.0;
        let f = coherent_frequency(100.0, fs, 4096);
        let x = sine(4096, fs, f, 1.0, 0.0);
        assert!(sndr_db(&x, fs, f) > 100.0);
    }

    #[test]
    fn sndr_tracks_added_noise() {
        let fs = 4096.0;
        let n = 8192;
        let f = coherent_frequency(100.0, fs, n);
        let sig = sine(n, fs, f, 1.0, 0.0);
        let noise = seeded_noise(n, 0.01);
        let x: Vec<f64> = sig.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let s = sndr_db(&x, fs, f);
        // P_sig/P_noise = 0.5 / 1e-4 => ~37 dB.
        assert!((s - 37.0).abs() < 3.0, "got {s} dB");
    }

    #[test]
    fn quantized_sine_matches_ideal_enob() {
        let fs = 8192.0;
        let n = 8192;
        let f = coherent_frequency(441.0, fs, n);
        let bits = 8u32;
        let x = sine(n, fs, f, 1.0, 0.0);
        let q = 2.0 / (1u64 << bits) as f64;
        let xq: Vec<f64> = x.iter().map(|v| (v / q).round() * q).collect();
        let e = enob(&xq, fs, f);
        assert!((e - bits as f64).abs() < 0.35, "ENOB {e} for {bits} bits");
    }

    #[test]
    fn thd_detects_cubic_distortion() {
        let fs = 8192.0;
        let n = 8192;
        let f = coherent_frequency(200.0, fs, n);
        let x: Vec<f64> = sine(n, fs, f, 1.0, 0.0)
            .into_iter()
            .map(|v| v + 0.01 * v * v * v)
            .collect();
        let t = thd_db(&x, fs, f, 5);
        // 3rd harmonic at ~(0.01*1/4) amplitude → about -52 dB.
        assert!((-56.0..=-46.0).contains(&t), "THD {t} dB");
    }

    #[test]
    fn snr_ref_for_known_noise() {
        let sig = sine(10000, 1000.0, 10.0, 1.0, 0.0);
        let noise = seeded_noise(10000, 0.1);
        let test: Vec<f64> = sig.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let s = snr_ref_db(&sig, &test);
        // 0.5 / 0.01 → ~17 dB.
        assert!((s - 17.0).abs() < 2.0, "got {s}");
    }

    #[test]
    fn snr_fit_removes_gain_and_offset() {
        let sig = sine(5000, 1000.0, 10.0, 1.0, 0.0);
        let test: Vec<f64> = sig.iter().map(|v| 37.0 * v + 5.0).collect();
        assert!(snr_ref_db(&sig, &test) < 0.0); // raw comparison is terrible
        assert!(snr_fit_db(&sig, &test) > 100.0); // fit restores it
    }

    #[test]
    fn prd_zero_for_identical() {
        let x = sine(100, 100.0, 5.0, 1.0, 0.0);
        assert_eq!(prd_percent(&x, &x), 0.0);
        assert_eq!(nmse(&x, &x), 0.0);
        assert_eq!(rmse(&x, &x), 0.0);
    }

    #[test]
    fn prd_scales_with_error() {
        let x = vec![1.0; 100];
        let y = vec![0.9; 100];
        assert!((prd_percent(&x, &y) - 10.0).abs() < 1e-9);
        assert!((nmse(&x, &y) - 0.01).abs() < 1e-12);
        assert!((rmse(&x, &y) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sndr_correct_for_non_power_of_two_length() {
        // Regression: zero-padding spreads the tone's main lobe by nfft/n;
        // the integration window must widen accordingly or signal power is
        // misattributed to noise.
        let fs = 537.6;
        let n = 4300; // pads to 8192
        let f = coherent_frequency(64.0, fs, n);
        let sig = sine(n, fs, f, 1.0, 0.0);
        let noise = seeded_noise(n, 0.01);
        let x: Vec<f64> = sig.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let s = sndr_db(&x, fs, f);
        assert!((s - 37.0).abs() < 3.0, "non-pow2 SNDR {s} dB, expected ~37");
    }

    #[test]
    fn enob_from_sndr_known_points() {
        assert!((enob_from_sndr(49.92) - 8.0).abs() < 1e-9);
        assert!((enob_from_sndr(74.0) - 12.0).abs() < 0.01);
    }

    #[test]
    fn perfect_match_gives_infinite_snr() {
        let x = vec![1.0, -1.0, 0.5];
        assert!(snr_ref_db(&x, &x).is_infinite());
    }
}
