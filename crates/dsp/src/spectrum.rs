//! Spectral estimation: periodogram, Welch PSD, band power, test tones.

use crate::fft::{next_pow2, Fft};
use crate::window::Window;

/// A one-sided power spectral density estimate.
///
/// `psd[k]` is the power density in V²/Hz at frequency `k * freq_resolution`.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// One-sided PSD values, `nfft/2 + 1` bins.
    pub values: Vec<f64>,
    /// Bin spacing in Hz.
    pub freq_resolution: f64,
}

impl Psd {
    /// Frequency (Hz) of bin `k`.
    #[inline]
    pub fn frequency(&self, k: usize) -> f64 {
        k as f64 * self.freq_resolution
    }

    /// Index of the bin closest to frequency `f` (Hz), clamped to range.
    pub fn bin_of(&self, f: f64) -> usize {
        let k = (f / self.freq_resolution).round();
        (k.max(0.0) as usize).min(self.values.len() - 1)
    }

    /// Integrated power (V²) in the inclusive frequency band `[lo, hi]` Hz.
    ///
    /// Rectangle-rule integration of the density over the covered bins.
    pub fn band_power(&self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "band limits out of order: {lo} > {hi}");
        let (a, b) = (self.bin_of(lo), self.bin_of(hi));
        self.values[a..=b].iter().sum::<f64>() * self.freq_resolution
    }

    /// Total power (V²) over the whole estimate.
    pub fn total_power(&self) -> f64 {
        self.values.iter().sum::<f64>() * self.freq_resolution
    }

    /// Frequency of the largest bin, ignoring DC.
    pub fn peak_frequency(&self) -> f64 {
        let (k, _) = self
            .values
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap_or((0, &0.0));
        self.frequency(k)
    }
}

/// Windowed periodogram PSD of `x` sampled at `fs` Hz.
///
/// The signal is zero-padded to the next power of two. The estimate is scaled
/// so that integrating it over frequency recovers the windowed signal power
/// (one-sided convention).
///
/// # Panics
///
/// Panics if `x` is empty or `fs` is not positive.
pub fn periodogram(x: &[f64], fs: f64, window: Window) -> Psd {
    assert!(!x.is_empty(), "cannot estimate the PSD of an empty signal");
    assert!(fs > 0.0, "sample rate must be positive");
    let n = x.len();
    let nfft = next_pow2(n);
    let mut xw = x.to_vec();
    window.apply(&mut xw);
    let fft = Fft::new(nfft);
    let spec = fft.forward_real(&xw);
    let pg = window.power_gain(n);
    // U compensates window power loss; n (not nfft) is the data length.
    let scale = 1.0 / (fs * n as f64 * pg);
    let half = nfft / 2;
    let mut values = Vec::with_capacity(half + 1);
    for (k, z) in spec.iter().take(half + 1).enumerate() {
        let mut p = z.norm_sqr() * scale;
        if k != 0 && k != half {
            p *= 2.0; // fold negative frequencies
        }
        values.push(p);
    }
    Psd {
        values,
        freq_resolution: fs / nfft as f64,
    }
}

/// Welch-averaged PSD with `segment_len` samples per segment and 50 % overlap.
///
/// Falls back to a single periodogram when the signal is shorter than one
/// segment.
///
/// # Panics
///
/// Panics if `x` is empty, `fs <= 0`, or `segment_len == 0`.
pub fn welch(x: &[f64], fs: f64, segment_len: usize, window: Window) -> Psd {
    assert!(!x.is_empty(), "cannot estimate the PSD of an empty signal");
    assert!(fs > 0.0, "sample rate must be positive");
    assert!(segment_len > 0, "segment length must be positive");
    if x.len() < segment_len {
        return periodogram(x, fs, window);
    }
    let hop = (segment_len / 2).max(1);
    // The length check above guarantees the first segment fits.
    let mut psd = periodogram(&x[..segment_len], fs, window);
    let mut count = 1usize;
    let mut start = hop;
    while start + segment_len <= x.len() {
        let p = periodogram(&x[start..start + segment_len], fs, window);
        for (av, pv) in psd.values.iter_mut().zip(&p.values) {
            *av += pv;
        }
        count += 1;
        start += hop;
    }
    for v in &mut psd.values {
        *v /= count as f64;
    }
    psd
}

/// Generates `n` samples of `amplitude * sin(2π f t + phase)` at rate `fs`.
pub fn sine(n: usize, fs: f64, f: f64, amplitude: f64, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| amplitude * (2.0 * std::f64::consts::PI * f * i as f64 / fs + phase).sin())
        .collect()
}

/// Picks a coherent test frequency near `target` Hz for an `n`-point record at
/// rate `fs`, i.e. one that lands exactly on an FFT bin (integer number of
/// cycles), avoiding spectral leakage in SNDR tests.
pub fn coherent_frequency(target: f64, fs: f64, n: usize) -> f64 {
    let nfft = next_pow2(n) as f64;
    let k = (target * nfft / fs).round().max(1.0);
    k * fs / nfft
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodogram_total_power_matches_variance() {
        // White-ish deterministic signal; Parseval should hold within scaling.
        let n = 4096;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761usize) as f64 * 1e-9).sin())
            .collect();
        let fs = 1000.0;
        let psd = periodogram(&x, fs, Window::Rect);
        let pwr: f64 = x.iter().map(|v| v * v).sum::<f64>() / n as f64;
        let est = psd.total_power();
        assert!((est - pwr).abs() < 0.02 * pwr, "est {est} vs {pwr}");
    }

    #[test]
    fn sine_power_is_half_amplitude_squared() {
        let fs = 2048.0;
        let n = 2048;
        let f = coherent_frequency(100.0, fs, n);
        let x = sine(n, fs, f, 2.0, 0.3);
        let psd = periodogram(&x, fs, Window::Hann);
        let p = psd.band_power(f - 10.0, f + 10.0);
        assert!(
            (p - 2.0).abs() < 0.05,
            "sine power should be A^2/2 = 2, got {p}"
        );
    }

    #[test]
    fn peak_frequency_finds_tone() {
        let fs = 1024.0;
        let f = coherent_frequency(60.0, fs, 1024);
        let x = sine(1024, fs, f, 1.0, 0.0);
        let psd = periodogram(&x, fs, Window::Hann);
        assert!((psd.peak_frequency() - f).abs() <= psd.freq_resolution);
    }

    #[test]
    fn welch_reduces_to_periodogram_for_short_input() {
        let x = sine(100, 1000.0, 50.0, 1.0, 0.0);
        let a = welch(&x, 1000.0, 256, Window::Hann);
        let b = periodogram(&x, 1000.0, Window::Hann);
        assert_eq!(a, b);
    }

    #[test]
    fn welch_total_power_consistent() {
        let fs = 512.0;
        let x = sine(4096, fs, 32.0, 1.0, 0.0);
        let psd = welch(&x, fs, 512, Window::Hann);
        assert!((psd.total_power() - 0.5).abs() < 0.05);
    }

    #[test]
    fn band_power_partition_sums_to_total() {
        let fs = 1000.0;
        let x: Vec<f64> = (0..2048)
            .map(|i| (i as f64 * 0.7).sin() + (i as f64 * 0.11).cos())
            .collect();
        let psd = periodogram(&x, fs, Window::Rect);
        let whole = psd.total_power();
        // Split exactly between adjacent bins to avoid rounding overlap.
        let df = psd.freq_resolution;
        let split = 512;
        let lo = psd.band_power(0.0, (split - 1) as f64 * df);
        let hi = psd.band_power(split as f64 * df, fs / 2.0);
        assert!((lo + hi - whole).abs() < 1e-9 * whole.max(1.0));
    }

    #[test]
    fn coherent_frequency_is_on_bin() {
        let fs = 537.6;
        let n = 1000;
        let f = coherent_frequency(64.0, fs, n);
        let nfft = next_pow2(n) as f64;
        let cycles = f * nfft / fs;
        assert!((cycles - cycles.round()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn periodogram_rejects_empty() {
        let _ = periodogram(&[], 1.0, Window::Rect);
    }
}
