//! # efficsense-dsp
//!
//! Digital signal processing substrate for the EffiCSense architectural
//! pathfinding framework.
//!
//! This crate provides the numerical machinery every other EffiCSense crate
//! builds on: an FFT, window functions, spectral estimation (periodogram and
//! Welch PSD, band power), IIR/FIR filtering with Butterworth design,
//! resampling, signal-quality metrics (SNR, SNDR, THD, ENOB) and descriptive
//! statistics.
//!
//! Everything is implemented from scratch on `f64` slices; no external
//! numerical dependencies are used.
//!
//! ## Example
//!
//! ```
//! use efficsense_dsp::{metrics::sndr_db, spectrum::sine};
//!
//! // 1 V amplitude, 100 Hz sine sampled at 4096 Hz for 1 s.
//! let x = sine(4096, 4096.0, 100.0, 1.0, 0.0);
//! let s = sndr_db(&x, 4096.0, 100.0);
//! assert!(s > 100.0, "a clean sine has very high SNDR, got {s}");
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod approx;
pub mod complex;
pub mod fft;
pub mod filter;
pub mod metrics;
pub mod resample;
pub mod spectrum;
pub mod stats;
pub mod window;

pub use complex::Complex;
pub use fft::Fft;
