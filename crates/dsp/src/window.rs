//! Window functions for spectral estimation.

/// Supported window shapes.
///
/// Windows trade main-lobe width against side-lobe level; the EffiCSense
/// spectral metrics default to [`Window::Hann`], while SNDR estimation uses
/// [`Window::BlackmanHarris`] for its very low side lobes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// Rectangular (no) window.
    Rect,
    /// Hann (raised-cosine) window.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
    /// 4-term Blackman-Harris window (−92 dB side lobes).
    BlackmanHarris,
}

impl Window {
    /// Evaluates the window at sample `i` of an `n`-point window.
    ///
    /// Uses the periodic (DFT-even) convention, which is the appropriate one
    /// for spectral analysis with the FFT.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `i >= n`.
    pub fn value(self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be positive");
        assert!(i < n, "window index {i} out of range for length {n}");
        let x = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            Window::BlackmanHarris => {
                0.35875 - 0.48829 * x.cos() + 0.14128 * (2.0 * x).cos() - 0.01168 * (3.0 * x).cos()
            }
        }
    }

    /// Generates the full `n`-point window.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }

    /// Applies the window to `x` in place.
    pub fn apply(self, x: &mut [f64]) {
        let n = x.len();
        if n == 0 {
            return;
        }
        for (i, v) in x.iter_mut().enumerate() {
            *v *= self.value(i, n);
        }
    }

    /// Coherent gain: mean of the window coefficients.
    ///
    /// Amplitude estimates from windowed spectra must be divided by this.
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// Noise-equivalent power gain: mean of the squared coefficients.
    ///
    /// Power-spectral-density estimates must be divided by this.
    pub fn power_gain(self, n: usize) -> f64 {
        self.coefficients(n).iter().map(|w| w * w).sum::<f64>() / n as f64
    }

    /// Equivalent noise bandwidth in bins.
    ///
    /// The number of bins over which a spectral peak spreads its power; used
    /// when integrating signal power out of a windowed periodogram.
    pub fn enbw_bins(self, n: usize) -> f64 {
        let cg = self.coherent_gain(n);
        self.power_gain(n) / (cg * cg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_all_ones() {
        let w = Window::Rect.coefficients(16);
        assert!(w.iter().all(|&v| crate::approx::total_eq(v, 1.0)));
        assert!((Window::Rect.enbw_bins(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let n = 64;
        let w = Window::Hann.coefficients(n);
        assert!(w[0].abs() < 1e-12);
        // Periodic Hann peaks at n/2 with value 1.
        assert!((w[n / 2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_bounded_zero_one() {
        for win in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
        ] {
            for (i, v) in win.coefficients(101).into_iter().enumerate() {
                assert!((-1e-6..=1.0 + 1e-12).contains(&v), "{win:?}[{i}]={v}");
            }
        }
    }

    #[test]
    fn hann_enbw_is_1_5_bins() {
        // Textbook value for the Hann window.
        let enbw = Window::Hann.enbw_bins(4096);
        assert!((enbw - 1.5).abs() < 1e-3, "got {enbw}");
    }

    #[test]
    fn coherent_gain_hann_is_half() {
        let cg = Window::Hann.coherent_gain(4096);
        assert!((cg - 0.5).abs() < 1e-6);
    }

    #[test]
    fn apply_matches_coefficients() {
        let mut x = vec![2.0; 32];
        Window::Hamming.apply(&mut x);
        let w = Window::Hamming.coefficients(32);
        for (a, b) in x.iter().zip(&w) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_empty_is_noop() {
        let mut x: Vec<f64> = vec![];
        Window::Hann.apply(&mut x);
        assert!(x.is_empty());
    }
}
