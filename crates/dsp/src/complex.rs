//! Minimal complex-number type used by the FFT and spectral estimators.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The standard library has no complex type and external numeric crates are
/// out of scope for this project, so this small value type implements exactly
/// the operations the DSP kernels need.
///
/// ```
/// use efficsense_dsp::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity (0 + 0i).
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity (1 + 0i).
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit (0 + 1i).
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates `r * e^(i*theta)` from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Creates `e^(i*theta)`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re^2 + im^2` (cheaper than [`Complex::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, k: f64) -> Complex {
        self.scale(k)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, k: f64) -> Complex {
        Complex::new(self.re / k, self.im / k)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(2.0, -3.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        assert_eq!(-a, Complex::new(-2.0, 3.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3+4i+6i+8i^2 = -5+10i
        assert_eq!(a * b, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.7, -1.3);
        let b = Complex::new(-2.5, 0.4);
        let c = (a * b) / b;
        assert!((c.re - a.re).abs() < EPS && (c.im - a.im).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.6);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.6).abs() < EPS);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex::new(1.5, 2.5);
        assert_eq!(z.conj(), Complex::new(1.5, -2.5));
        // z * conj(z) = |z|^2 (purely real)
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.41);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
