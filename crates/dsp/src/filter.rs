//! IIR and FIR filtering.
//!
//! Provides transposed direct-form-II biquad sections, Butterworth low/high
//! pass design of arbitrary even/odd order (as biquad cascades), a one-pole
//! low-pass (the LNA bandwidth model uses this), windowed-sinc FIR design and
//! zero-phase (forward-backward) filtering.

use crate::window::Window;

/// A single second-order IIR section (normalised so `a0 == 1`).
///
/// Implemented in transposed direct form II for good numerical behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f64; 3],
    /// Feedback coefficients `a1, a2` (with `a0 == 1` implied).
    pub a: [f64; 2],
    s1: f64,
    s2: f64,
}

impl Biquad {
    /// Creates a section from coefficients `b0..b2`, `a1..a2` (with `a0 = 1`).
    pub fn new(b: [f64; 3], a: [f64; 2]) -> Self {
        Self {
            b,
            a,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// The identity (pass-through) section.
    pub fn identity() -> Self {
        Self::new([1.0, 0.0, 0.0], [0.0, 0.0])
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b[0] * x + self.s1;
        self.s1 = self.b[1] * x - self.a[0] * y + self.s2;
        self.s2 = self.b[2] * x - self.a[1] * y;
        y
    }

    /// Clears the internal state.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }

    /// Magnitude response at normalised frequency `w` (radians/sample).
    pub fn magnitude_at(&self, w: f64) -> f64 {
        use crate::complex::Complex;
        let z1 = Complex::cis(-w);
        let z2 = Complex::cis(-2.0 * w);
        let num = Complex::from_real(self.b[0]) + z1 * self.b[1] + z2 * self.b[2];
        let den = Complex::ONE + z1 * self.a[0] + z2 * self.a[1];
        (num / den).abs()
    }
}

/// A cascade of biquad sections forming a higher-order IIR filter.
#[derive(Debug, Clone, PartialEq)]
pub struct IirFilter {
    sections: Vec<Biquad>,
}

impl IirFilter {
    /// Builds a filter from explicit sections.
    pub fn from_sections(sections: Vec<Biquad>) -> Self {
        Self { sections }
    }

    /// Designs an order-`order` Butterworth low-pass with cutoff `fc` Hz at
    /// sample rate `fs` Hz, using the bilinear transform.
    ///
    /// ```
    /// use efficsense_dsp::filter::IirFilter;
    /// let f = IirFilter::butterworth_lowpass(4, 100.0, 1000.0);
    /// // Unity DC gain, −3 dB at the cutoff.
    /// assert!((f.magnitude_at(0.0, 1000.0) - 1.0).abs() < 1e-9);
    /// let db = 20.0 * f.magnitude_at(100.0, 1000.0).log10();
    /// assert!((db + 3.0).abs() < 0.1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs/2` and `order >= 1`.
    pub fn butterworth_lowpass(order: usize, fc: f64, fs: f64) -> Self {
        Self::butterworth(order, fc, fs, false)
    }

    /// Designs an order-`order` Butterworth high-pass with cutoff `fc` Hz.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs/2` and `order >= 1`.
    pub fn butterworth_highpass(order: usize, fc: f64, fs: f64) -> Self {
        Self::butterworth(order, fc, fs, true)
    }

    fn butterworth(order: usize, fc: f64, fs: f64, highpass: bool) -> Self {
        assert!(order >= 1, "filter order must be at least 1");
        assert!(
            fc > 0.0 && fc < fs / 2.0,
            "cutoff {fc} must lie in (0, fs/2)"
        );
        // Pre-warped analog cutoff for the bilinear transform.
        let wc = (std::f64::consts::PI * fc / fs).tan();
        let mut sections = Vec::new();
        let pairs = order / 2;
        for k in 0..pairs {
            // Analog Butterworth pole-pair quality factor.
            let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * order as f64);
            let q = 1.0 / (2.0 * theta.sin());
            sections.push(second_order_section(wc, q, highpass));
        }
        if order % 2 == 1 {
            sections.push(first_order_section(wc, highpass));
        }
        Self { sections }
    }

    /// Processes one sample through the cascade.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        self.sections.iter_mut().fold(x, |acc, s| s.process(acc))
    }

    /// Filters a whole buffer, returning a new vector.
    pub fn filter(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.process(v)).collect()
    }

    /// Zero-phase filtering: forward pass, then backward pass.
    ///
    /// Doubles the effective order and removes group delay; used when
    /// preparing reference signals for SNR comparisons.
    pub fn filtfilt(&self, x: &[f64]) -> Vec<f64> {
        let mut fwd = self.clone();
        fwd.reset();
        let mut y = fwd.filter(x);
        y.reverse();
        let mut bwd = self.clone();
        bwd.reset();
        let mut z = bwd.filter(&y);
        z.reverse();
        z
    }

    /// Clears all section states.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Magnitude response at frequency `f` Hz given sample rate `fs`.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f / fs;
        self.sections.iter().map(|s| s.magnitude_at(w)).product()
    }

    /// Number of biquad sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }
}

fn second_order_section(wc: f64, q: f64, highpass: bool) -> Biquad {
    // Bilinear transform of H(s) = 1/(s^2 + s/q + 1) (LP) with s -> s/wc.
    let k = wc;
    let norm = 1.0 / (1.0 + k / q + k * k);
    if highpass {
        Biquad::new(
            [norm, -2.0 * norm, norm],
            [2.0 * (k * k - 1.0) * norm, (1.0 - k / q + k * k) * norm],
        )
    } else {
        let b0 = k * k * norm;
        Biquad::new(
            [b0, 2.0 * b0, b0],
            [2.0 * (k * k - 1.0) * norm, (1.0 - k / q + k * k) * norm],
        )
    }
}

fn first_order_section(wc: f64, highpass: bool) -> Biquad {
    let k = wc;
    let norm = 1.0 / (1.0 + k);
    if highpass {
        Biquad::new([norm, -norm, 0.0], [(k - 1.0) * norm, 0.0])
    } else {
        Biquad::new([k * norm, k * norm, 0.0], [(k - 1.0) * norm, 0.0])
    }
}

/// A one-pole low-pass filter `y[n] = y[n-1] + α (x[n] − y[n-1])`.
///
/// This is the behavioural bandwidth model of the LNA: a single dominant pole
/// at `fc`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePole {
    alpha: f64,
    state: f64,
}

impl OnePole {
    /// Creates a one-pole low-pass with −3 dB frequency `fc` Hz at rate `fs`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc` and `fs > 0`. `fc >= fs/2` saturates to an
    /// all-pass (α = 1).
    pub fn lowpass(fc: f64, fs: f64) -> Self {
        assert!(fc > 0.0 && fs > 0.0, "fc and fs must be positive");
        // Exact impulse-invariant mapping of a single pole.
        let alpha = 1.0 - (-2.0 * std::f64::consts::PI * fc / fs).exp();
        Self {
            alpha: alpha.min(1.0),
            state: 0.0,
        }
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        self.state += self.alpha * (x - self.state);
        self.state
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }
}

/// A finite-impulse-response filter with direct-form convolution state.
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
    delay: Vec<f64>,
    pos: usize,
}

impl FirFilter {
    /// Creates an FIR filter from explicit taps.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        let n = taps.len();
        Self {
            taps,
            delay: vec![0.0; n],
            pos: 0,
        }
    }

    /// Designs a windowed-sinc low-pass with `n_taps` taps (made odd if even)
    /// and cutoff `fc` Hz at rate `fs`, Hamming-windowed and normalised to
    /// unity DC gain.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs/2`.
    pub fn lowpass(n_taps: usize, fc: f64, fs: f64) -> Self {
        assert!(
            fc > 0.0 && fc < fs / 2.0,
            "cutoff {fc} must lie in (0, fs/2)"
        );
        let n = if n_taps.is_multiple_of(2) {
            n_taps + 1
        } else {
            n_taps.max(1)
        };
        let m = (n - 1) as f64 / 2.0;
        let wc = 2.0 * fc / fs; // normalised cutoff (cycles/sample * 2)
        let mut taps: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 - m;
                let sinc = if crate::approx::is_zero(t) {
                    wc
                } else {
                    (std::f64::consts::PI * wc * t).sin() / (std::f64::consts::PI * t)
                };
                sinc * Window::Hamming.value(i, n)
            })
            .collect();
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Self::new(taps)
    }

    /// Processes one sample.
    pub fn process(&mut self, x: f64) -> f64 {
        self.delay[self.pos] = x;
        let n = self.taps.len();
        let mut acc = 0.0;
        let mut idx = self.pos;
        for &t in &self.taps {
            acc += t * self.delay[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Filters a whole buffer.
    pub fn filter(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.process(v)).collect()
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (linear-phase symmetric design).
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::sine;
    use crate::stats::rms;

    #[test]
    fn butterworth_lowpass_dc_gain_unity() {
        for order in 1..=6 {
            let f = IirFilter::butterworth_lowpass(order, 100.0, 1000.0);
            let g = f.magnitude_at(0.0, 1000.0);
            assert!((g - 1.0).abs() < 1e-9, "order {order}: DC gain {g}");
        }
    }

    #[test]
    fn butterworth_cutoff_is_minus_3db() {
        for order in [1usize, 2, 3, 4, 5] {
            let f = IirFilter::butterworth_lowpass(order, 100.0, 1000.0);
            let g = f.magnitude_at(100.0, 1000.0);
            let db = 20.0 * g.log10();
            assert!(
                (db + 3.0103).abs() < 0.1,
                "order {order}: cutoff gain {db} dB"
            );
        }
    }

    #[test]
    fn highpass_blocks_dc_passes_high() {
        let f = IirFilter::butterworth_highpass(4, 50.0, 1000.0);
        assert!(f.magnitude_at(0.001, 1000.0) < 1e-6);
        assert!((f.magnitude_at(400.0, 1000.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lowpass_attenuates_high_tone() {
        let fs = 2000.0;
        let mut f = IirFilter::butterworth_lowpass(4, 100.0, fs);
        let hi = sine(4000, fs, 800.0, 1.0, 0.0);
        let y = f.filter(&hi);
        // Skip the transient.
        assert!(rms(&y[1000..]) < 0.01);
    }

    #[test]
    fn one_pole_3db_point() {
        let fs = 10000.0;
        let fc = 100.0;
        let mut lp = OnePole::lowpass(fc, fs);
        let x = sine(50000, fs, fc, 1.0, 0.0);
        let y: Vec<f64> = x.iter().map(|&v| lp.process(v)).collect();
        let gain = rms(&y[10000..]) / rms(&x[10000..]);
        let db = 20.0 * gain.log10();
        assert!((db + 3.0).abs() < 0.3, "one-pole gain at fc: {db} dB");
    }

    #[test]
    fn one_pole_dc_passthrough() {
        let mut lp = OnePole::lowpass(10.0, 1000.0);
        let mut y = 0.0;
        for _ in 0..10000 {
            y = lp.process(1.0);
        }
        assert!((y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fir_lowpass_dc_gain_unity() {
        let mut f = FirFilter::lowpass(63, 100.0, 1000.0);
        let y = f.filter(&vec![1.0; 500]);
        assert!((y[400] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fir_attenuates_stopband() {
        let fs = 1000.0;
        let mut f = FirFilter::lowpass(101, 100.0, fs);
        let x = sine(2000, fs, 400.0, 1.0, 0.0);
        let y = f.filter(&x);
        assert!(rms(&y[500..]) < 1e-3);
    }

    #[test]
    fn filtfilt_has_zero_phase() {
        let fs = 1000.0;
        let f = IirFilter::butterworth_lowpass(2, 200.0, fs);
        let x = sine(2048, fs, 20.0, 1.0, 0.0);
        let y = f.filtfilt(&x);
        // In-band tone passes with no delay: max cross-correlation at lag 0.
        let dot: f64 = x[100..1900]
            .iter()
            .zip(&y[100..1900])
            .map(|(a, b)| a * b)
            .sum();
        let e: f64 = x[100..1900].iter().map(|v| v * v).sum();
        assert!((dot / e - 1.0).abs() < 0.01);
    }

    #[test]
    fn biquad_identity_passthrough() {
        let mut b = Biquad::identity();
        for i in 0..10 {
            let v = i as f64 * 0.3 - 1.0;
            assert_eq!(b.process(v), v);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut f = IirFilter::butterworth_lowpass(4, 100.0, 1000.0);
        f.filter(&vec![1.0; 100]);
        f.reset();
        let y0 = f.process(0.0);
        assert_eq!(y0, 0.0);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn rejects_cutoff_above_nyquist() {
        let _ = IirFilter::butterworth_lowpass(2, 600.0, 1000.0);
    }
}
