//! Sample-rate conversion.
//!
//! EffiCSense represents the sensor input on a dense "continuous-time proxy"
//! grid and lets samplers pick values off it at arbitrary instants; this
//! module provides the conversions between the dataset rate, the proxy rate
//! and block sample rates.

use crate::filter::FirFilter;

/// Linearly interpolates `x` (sampled at `fs_in`) at time `t` seconds.
///
/// Values outside the record are clamped to the edge samples.
pub fn sample_at(x: &[f64], fs_in: f64, t: f64) -> f64 {
    assert!(!x.is_empty(), "cannot sample an empty signal");
    let pos = t * fs_in;
    if pos <= 0.0 {
        return x[0];
    }
    let i = pos.floor() as usize;
    if i + 1 >= x.len() {
        return x[x.len() - 1];
    }
    let frac = pos - i as f64;
    x[i] * (1.0 - frac) + x[i + 1] * frac
}

/// Linear-interpolation resampling from `fs_in` to `fs_out`, covering the
/// same time span as the input record.
///
/// # Panics
///
/// Panics if `x` is empty or a rate is not positive.
pub fn resample_linear(x: &[f64], fs_in: f64, fs_out: f64) -> Vec<f64> {
    assert!(!x.is_empty(), "cannot resample an empty signal");
    assert!(fs_in > 0.0 && fs_out > 0.0, "sample rates must be positive");
    let duration = x.len() as f64 / fs_in;
    let n_out = (duration * fs_out).round() as usize;
    (0..n_out)
        .map(|i| sample_at(x, fs_in, i as f64 / fs_out))
        .collect()
}

/// Integer-factor zero-stuffing upsampler followed by an anti-imaging FIR.
///
/// Produces a smoother continuous-time proxy than linear interpolation; used
/// when converting the 173.61 Hz dataset records to the dense simulation grid.
///
/// # Panics
///
/// Panics if `factor == 0` or `x` is empty.
pub fn upsample_fir(x: &[f64], factor: usize, taps: usize) -> Vec<f64> {
    assert!(factor > 0, "upsampling factor must be positive");
    assert!(!x.is_empty(), "cannot upsample an empty signal");
    if factor == 1 {
        return x.to_vec();
    }
    let mut stuffed = vec![0.0; x.len() * factor];
    for (i, &v) in x.iter().enumerate() {
        stuffed[i * factor] = v * factor as f64; // compensate interpolation gain
    }
    // Cut at the original Nyquist: fc = 0.5 / factor of the new rate.
    let fs = factor as f64;
    let mut fir = FirFilter::lowpass(taps, 0.45, fs);
    let delay = fir.group_delay();
    let mut y = fir.filter(&stuffed);
    // Flush the group delay so output aligns with input timing.
    for _ in 0..delay {
        y.push(fir.process(0.0));
    }
    y.drain(..delay);
    y
}

/// Integer-factor decimator with anti-aliasing FIR.
///
/// # Panics
///
/// Panics if `factor == 0` or `x` is empty.
pub fn decimate(x: &[f64], factor: usize, taps: usize) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be positive");
    assert!(!x.is_empty(), "cannot decimate an empty signal");
    if factor == 1 {
        return x.to_vec();
    }
    let mut fir = FirFilter::lowpass(taps, 0.45 / factor as f64, 1.0);
    let delay = fir.group_delay();
    let mut filtered = fir.filter(x);
    for _ in 0..delay {
        filtered.push(fir.process(0.0));
    }
    filtered.drain(..delay);
    filtered.into_iter().step_by(factor).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::sine;
    use crate::stats::rms;

    #[test]
    fn sample_at_hits_grid_points() {
        let x = vec![0.0, 1.0, 4.0, 9.0];
        for (i, &v) in x.iter().enumerate() {
            assert_eq!(sample_at(&x, 10.0, i as f64 / 10.0), v);
        }
    }

    #[test]
    fn sample_at_interpolates_midpoints() {
        let x = vec![0.0, 2.0];
        assert!((sample_at(&x, 1.0, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_at_clamps_out_of_range() {
        let x = vec![3.0, 5.0];
        assert_eq!(sample_at(&x, 1.0, -1.0), 3.0);
        assert_eq!(sample_at(&x, 1.0, 100.0), 5.0);
    }

    #[test]
    fn resample_preserves_duration() {
        let x = vec![1.0; 1000];
        let y = resample_linear(&x, 100.0, 250.0);
        assert_eq!(y.len(), 2500);
    }

    #[test]
    fn resample_preserves_tone() {
        let fs_in = 500.0;
        let x = sine(5000, fs_in, 20.0, 1.0, 0.0);
        let y = resample_linear(&x, fs_in, 2000.0);
        let expect = sine(y.len(), 2000.0, 20.0, 1.0, 0.0);
        let err: f64 = y
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / y.len() as f64;
        assert!(err.sqrt() < 0.02, "rms error {}", err.sqrt());
    }

    #[test]
    fn upsample_fir_preserves_tone_amplitude() {
        let x = sine(2048, 512.0, 10.0, 1.0, 0.0);
        let y = upsample_fir(&x, 4, 63);
        assert_eq!(y.len(), x.len() * 4);
        let r = rms(&y[2000..6000]);
        assert!(
            (r - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "rms {r}"
        );
    }

    #[test]
    fn upsample_factor_one_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(upsample_fir(&x, 1, 31), x);
    }

    #[test]
    fn decimate_then_length() {
        let x = sine(4000, 4000.0, 50.0, 1.0, 0.0);
        let y = decimate(&x, 4, 63);
        assert_eq!(y.len(), 1000);
        let r = rms(&y[200..800]);
        assert!((r - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
    }

    #[test]
    fn decimate_removes_aliasing_tone() {
        let fs = 4000.0;
        // A 1.9 kHz tone would alias to 100 Hz after /4 decimation without filtering.
        let x = sine(8000, fs, 1900.0, 1.0, 0.0);
        let y = decimate(&x, 4, 127);
        assert!(rms(&y[200..1800]) < 0.02);
    }
}
