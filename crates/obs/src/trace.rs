//! JSON-lines trace events.
//!
//! Each event is one line:
//!
//! ```json
//! {"ts_ns":123456,"kind":"span","name":"sweep.point","fields":{"total_ns":987,"self_ns":400}}
//! ```
//!
//! `kind` is a small open vocabulary — the registry emits `"span"`,
//! `"warn"` and `"heartbeat"`; benches add their own. Field values are
//! unsigned integers (exact), floats (shortest round-trip `{:?}` form, so
//! the token always carries a `.` or an exponent and parses back as a
//! float), or strings. Non-finite floats render as `null` and parse back
//! as NaN.

use crate::json::{escape, Json};

/// A trace field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An exact unsigned integer.
    U64(u64),
    /// A finite-or-not float; non-finite values serialise as `null`.
    F64(f64),
    /// A string.
    Str(String),
}

impl FieldValue {
    fn render(&self) -> String {
        match self {
            FieldValue::U64(v) => format!("{v}"),
            FieldValue::F64(v) if v.is_finite() => format!("{v:?}"),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Str(s) => format!("\"{}\"", escape(s)),
        }
    }

    fn from_json(v: &Json) -> Option<FieldValue> {
        match v {
            Json::Int(n) => Some(FieldValue::U64(*n)),
            Json::Float(f) => Some(FieldValue::F64(*f)),
            Json::Null => Some(FieldValue::F64(f64::NAN)),
            Json::Str(s) => Some(FieldValue::Str(s.clone())),
            _ => None,
        }
    }
}

/// One structured trace event, serialisable to a single JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Clock reading when the event was emitted (ns since registry clock
    /// origin).
    pub ts_ns: u64,
    /// Event kind: `"span"`, `"warn"`, `"heartbeat"`, or a bench-defined
    /// kind.
    pub kind: String,
    /// Instrument or event name, e.g. `"sweep.point"`.
    pub name: String,
    /// Event payload, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// A new event with no fields.
    #[must_use]
    pub fn new(ts_ns: u64, kind: &str, name: &str) -> Self {
        Self {
            ts_ns,
            kind: kind.to_string(),
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, key: &str, value: FieldValue) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the event as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"ts_ns\":{},\"kind\":\"{}\",\"name\":\"{}\",\"fields\":{{",
            self.ts_ns,
            escape(&self.kind),
            escape(&self.name)
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(k));
            out.push_str("\":");
            out.push_str(&v.render());
        }
        out.push_str("}}");
        out
    }

    /// Parses one JSONL line produced by [`TraceEvent::to_json_line`];
    /// `None` on malformed input or missing keys.
    #[must_use]
    pub fn parse(line: &str) -> Option<TraceEvent> {
        let v = Json::parse(line)?;
        let ts_ns = v.get("ts_ns")?.as_u64()?;
        let kind = v.get("kind")?.as_str()?.to_string();
        let name = v.get("name")?.as_str()?.to_string();
        let mut fields = Vec::new();
        for (k, fv) in v.get("fields")?.as_obj()? {
            fields.push((k.clone(), FieldValue::from_json(fv)?));
        }
        Some(TraceEvent {
            ts_ns,
            kind,
            name,
            fields,
        })
    }

    /// Looks up a field value by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_round_trip() {
        let ev = TraceEvent::new(42, "span", "sweep.point")
            .field("total_ns", FieldValue::U64(u64::MAX))
            .field("rate", FieldValue::F64(2.5))
            .field("note", FieldValue::Str("a\"b\nc".to_string()));
        let line = ev.to_json_line();
        let back = TraceEvent::parse(&line).expect("round-trips");
        assert_eq!(back, ev);
        // Re-rendering is byte-identical: field order and number formats
        // are preserved end to end.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let ev = TraceEvent::new(1, "warn", "x").field("bad", FieldValue::F64(f64::INFINITY));
        let line = ev.to_json_line();
        assert!(line.contains("\"bad\":null"), "{line}");
        let back = TraceEvent::parse(&line).expect("parses");
        match back.get("bad") {
            Some(FieldValue::F64(v)) => assert!(v.is_nan()),
            other => panic!("expected NaN field, got {other:?}"),
        }
    }

    #[test]
    fn floats_parse_back_as_floats() {
        // {:?} on a whole-valued f64 prints "3.0" — the '.' keeps it
        // classifiable as a float on the way back in.
        let ev = TraceEvent::new(1, "span", "x").field("v", FieldValue::F64(3.0));
        let back = TraceEvent::parse(&ev.to_json_line()).expect("parses");
        assert!(matches!(back.get("v"), Some(FieldValue::F64(_))));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{}",
            "{\"ts_ns\":1}",
            "{\"ts_ns\":1,\"kind\":\"k\",\"name\":\"n\"}",
            "{\"ts_ns\":1,\"kind\":\"k\",\"name\":\"n\",\"fields\":[]}",
            "not json",
        ] {
            assert_eq!(TraceEvent::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn truncated_lines_do_not_parse() {
        let full = TraceEvent::new(9, "span", "stage.detect")
            .field("total_ns", FieldValue::U64(1234))
            .field("note", FieldValue::Str("mid\u{6c49}point".to_string()))
            .to_json_line();
        for cut in 1..full.len() {
            // Byte-boundary prefixes only: mid-UTF-8 cuts are not valid
            // &str slices in the first place.
            if !full.is_char_boundary(cut) {
                continue;
            }
            assert_eq!(
                TraceEvent::parse(&full[..cut]),
                None,
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn huge_integer_fields_round_trip_exactly() {
        let line = format!(
            "{{\"ts_ns\":{max},\"kind\":\"span\",\"name\":\"n\",\"fields\":{{\"v\":{max}}}}}",
            max = u64::MAX
        );
        let ev = TraceEvent::parse(&line).expect("parses");
        assert_eq!(ev.ts_ns, u64::MAX);
        assert_eq!(ev.get("v"), Some(&FieldValue::U64(u64::MAX)));
        assert_eq!(ev.to_json_line(), line);
        // Past u64 range the value falls to float; as a ts_ns it no
        // longer satisfies the schema and the line is rejected.
        let over = "{\"ts_ns\":18446744073709551616,\"kind\":\"k\",\"name\":\"n\",\"fields\":{}}";
        assert_eq!(TraceEvent::parse(over), None);
    }

    #[test]
    fn surrogate_escapes_and_nonfinite_numbers_reject_the_line() {
        let lone = "{\"ts_ns\":1,\"kind\":\"warn\",\"name\":\"n\",\"fields\":{\"t\":\"\\ud800\"}}";
        assert_eq!(TraceEvent::parse(lone), None);
        let huge_exp = "{\"ts_ns\":1,\"kind\":\"span\",\"name\":\"n\",\"fields\":{\"v\":1e999}}";
        assert_eq!(TraceEvent::parse(huge_exp), None);
        // Escaped unicode in a field survives the trip.
        let ev = TraceEvent::parse(
            "{\"ts_ns\":1,\"kind\":\"warn\",\"name\":\"n\",\"fields\":{\"t\":\"\\u00e9\"}}",
        )
        .expect("parses");
        assert_eq!(ev.get("t"), Some(&FieldValue::Str("\u{e9}".to_string())));
    }

    #[test]
    fn empty_fields_render_as_empty_object() {
        let ev = TraceEvent::new(7, "heartbeat", "sweep.progress");
        assert_eq!(
            ev.to_json_line(),
            "{\"ts_ns\":7,\"kind\":\"heartbeat\",\"name\":\"sweep.progress\",\"fields\":{}}"
        );
    }
}
