//! Atomic counters and fixed-bucket latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds sub-microsecond durations,
/// buckets 1..=24 hold `[2^(i-1), 2^i)` microseconds, and the last bucket
/// holds everything at or above `2^24` µs (≈ 16.8 s).
pub const BUCKETS: usize = 26;

/// Bucket index of a duration (see [`BUCKETS`] for the bucket layout).
#[must_use]
pub fn bucket_index(duration_ns: u64) -> usize {
    let us = duration_ns / 1_000;
    if us == 0 {
        0
    } else {
        ((us.ilog2() as usize) + 1).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket in microseconds (0 for bucket 0).
#[must_use]
pub fn bucket_floor_us(index: usize) -> u64 {
    match index.min(BUCKETS - 1) {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// Exclusive upper bound of a bucket in microseconds. The overflow bucket
/// has no true upper bound; it reports twice its floor (`2^25` µs ≈ 33.6 s)
/// as a saturated estimate so quantiles stay finite.
#[must_use]
pub fn bucket_ceiling_us(index: usize) -> u64 {
    if index >= BUCKETS - 1 {
        1u64 << 25
    } else {
        bucket_floor_us(index + 1)
    }
}

/// A monotonically increasing atomic event counter.
///
/// All operations are `Relaxed`: counters are statistics, not
/// synchronisation, and the registry snapshot tolerates being a moment
/// stale.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub(crate) fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Fixed-bucket latency histogram with total/self time accounting.
///
/// Each recorded span contributes its **total** duration to the bucket
/// counts and `total_ns`, and its **self** time (total minus directly
/// nested spans) to `self_ns`. Self times of sibling stages are disjoint,
/// so `Σ stage self ≈ parent total` is a checkable accounting identity.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
        }
    }

    /// Records one span occurrence.
    pub fn record(&self, total_ns: u64, self_ns: u64) {
        self.buckets[bucket_index(total_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_ns, Ordering::Relaxed);
    }

    /// Freezes the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            self_ns: self.self_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|bucket_count| bucket_count.load(Ordering::Relaxed))
                .collect(),
        }
    }

    pub(crate) fn reset(&self) {
        for bucket_count in &self.buckets {
            bucket_count.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
    }
}

/// A frozen [`Histogram`]: occurrence count, summed total and self time,
/// and per-bucket occurrence counts ([`BUCKETS`] entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded span occurrences.
    pub count: u64,
    /// Summed total durations (ns).
    pub total_ns: u64,
    /// Summed self times — total minus directly nested spans (ns).
    pub self_ns: u64,
    /// Occurrence count per latency bucket (see [`bucket_floor_us`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean total duration per occurrence in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile **upper bound** in microseconds, derived
    /// from the power-of-two bucket geometry: the ceiling of the bucket
    /// holding the `q`-quantile occurrence. Exact per-occurrence
    /// durations are not retained, so this bounds the true quantile from
    /// above by at most 2x (one bucket width). 0 when empty.
    #[must_use]
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= rank {
                return bucket_ceiling_us(i);
            }
        }
        bucket_ceiling_us(BUCKETS - 1)
    }

    /// Median upper bound in microseconds (bucket geometry).
    #[must_use]
    pub fn p50_us(&self) -> u64 {
        self.quantile_upper_us(0.50)
    }

    /// 95th-percentile upper bound in microseconds (bucket geometry).
    #[must_use]
    pub fn p95_us(&self) -> u64 {
        self.quantile_upper_us(0.95)
    }

    /// 99th-percentile upper bound in microseconds (bucket geometry).
    #[must_use]
    pub fn p99_us(&self) -> u64 {
        self.quantile_upper_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0);
        assert_eq!(bucket_index(1_000), 1); // 1 µs → [1, 2) µs
        assert_eq!(bucket_index(1_999), 1);
        assert_eq!(bucket_index(2_000), 2); // 2 µs → [2, 4) µs
        assert_eq!(bucket_index(1_000_000), 10); // 1 ms = 1000 µs → [512, 1024) µs
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_floors_are_powers_of_two() {
        assert_eq!(bucket_floor_us(0), 0);
        assert_eq!(bucket_floor_us(1), 1);
        assert_eq!(bucket_floor_us(5), 16);
        assert_eq!(bucket_floor_us(BUCKETS - 1), 1 << 24);
        // Out-of-range indices clamp to the overflow bucket.
        assert_eq!(bucket_floor_us(BUCKETS + 7), 1 << 24);
    }

    #[test]
    fn bucket_ceilings_cap_the_floors() {
        assert_eq!(bucket_ceiling_us(0), 1);
        assert_eq!(bucket_ceiling_us(1), 2);
        assert_eq!(bucket_ceiling_us(5), 32);
        assert_eq!(bucket_ceiling_us(BUCKETS - 2), 1 << 24);
        // The overflow bucket saturates at twice its floor.
        assert_eq!(bucket_ceiling_us(BUCKETS - 1), 1 << 25);
        assert_eq!(bucket_ceiling_us(BUCKETS + 3), 1 << 25);
    }

    #[test]
    fn quantile_upper_bounds_follow_bucket_geometry() {
        let h = Histogram::new();
        // 90 fast spans at ~1.5 µs (bucket 1, ceiling 2 µs) and 10 slow
        // ones at ~100 µs (bucket 7, ceiling 128 µs).
        for _ in 0..90 {
            h.record(1_500, 1_500);
        }
        for _ in 0..10 {
            h.record(100_000, 100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.p50_us(), 2);
        assert_eq!(s.quantile_upper_us(0.90), 2);
        assert_eq!(s.p95_us(), 128);
        assert_eq!(s.p99_us(), 128);
        // q clamps: 0 maps to the first occupied bucket, 1 to the last.
        assert_eq!(s.quantile_upper_us(-1.0), 2);
        assert_eq!(s.quantile_upper_us(2.0), 128);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50_us(), 0);
        assert_eq!(s.p99_us(), 0);
    }

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record(1_500, 1_000);
        h.record(3_000, 3_000);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 4_500);
        assert_eq!(s.self_ns, 4_000);
        assert_eq!(s.buckets[1], 1); // 1.5 µs
        assert_eq!(s.buckets[2], 1); // 3 µs
        assert_eq!(s.buckets.iter().sum::<u64>(), 2);
        assert!((s.mean_ns() - 2_250.0).abs() < 1e-9);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert!(Histogram::new().snapshot().mean_ns().abs() < 1e-12);
    }
}
