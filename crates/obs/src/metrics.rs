//! Atomic counters and fixed-bucket latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds sub-microsecond durations,
/// buckets 1..=24 hold `[2^(i-1), 2^i)` microseconds, and the last bucket
/// holds everything at or above `2^24` µs (≈ 16.8 s).
pub const BUCKETS: usize = 26;

/// Bucket index of a duration (see [`BUCKETS`] for the bucket layout).
#[must_use]
pub fn bucket_index(duration_ns: u64) -> usize {
    let us = duration_ns / 1_000;
    if us == 0 {
        0
    } else {
        ((us.ilog2() as usize) + 1).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket in microseconds (0 for bucket 0).
#[must_use]
pub fn bucket_floor_us(index: usize) -> u64 {
    match index.min(BUCKETS - 1) {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// A monotonically increasing atomic event counter.
///
/// All operations are `Relaxed`: counters are statistics, not
/// synchronisation, and the registry snapshot tolerates being a moment
/// stale.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub(crate) fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Fixed-bucket latency histogram with total/self time accounting.
///
/// Each recorded span contributes its **total** duration to the bucket
/// counts and `total_ns`, and its **self** time (total minus directly
/// nested spans) to `self_ns`. Self times of sibling stages are disjoint,
/// so `Σ stage self ≈ parent total` is a checkable accounting identity.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
        }
    }

    /// Records one span occurrence.
    pub fn record(&self, total_ns: u64, self_ns: u64) {
        self.buckets[bucket_index(total_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_ns, Ordering::Relaxed);
    }

    /// Freezes the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            self_ns: self.self_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|bucket_count| bucket_count.load(Ordering::Relaxed))
                .collect(),
        }
    }

    pub(crate) fn reset(&self) {
        for bucket_count in &self.buckets {
            bucket_count.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
    }
}

/// A frozen [`Histogram`]: occurrence count, summed total and self time,
/// and per-bucket occurrence counts ([`BUCKETS`] entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded span occurrences.
    pub count: u64,
    /// Summed total durations (ns).
    pub total_ns: u64,
    /// Summed self times — total minus directly nested spans (ns).
    pub self_ns: u64,
    /// Occurrence count per latency bucket (see [`bucket_floor_us`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean total duration per occurrence in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0);
        assert_eq!(bucket_index(1_000), 1); // 1 µs → [1, 2) µs
        assert_eq!(bucket_index(1_999), 1);
        assert_eq!(bucket_index(2_000), 2); // 2 µs → [2, 4) µs
        assert_eq!(bucket_index(1_000_000), 10); // 1 ms = 1000 µs → [512, 1024) µs
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_floors_are_powers_of_two() {
        assert_eq!(bucket_floor_us(0), 0);
        assert_eq!(bucket_floor_us(1), 1);
        assert_eq!(bucket_floor_us(5), 16);
        assert_eq!(bucket_floor_us(BUCKETS - 1), 1 << 24);
        // Out-of-range indices clamp to the overflow bucket.
        assert_eq!(bucket_floor_us(BUCKETS + 7), 1 << 24);
    }

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record(1_500, 1_000);
        h.record(3_000, 3_000);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 4_500);
        assert_eq!(s.self_ns, 4_000);
        assert_eq!(s.buckets[1], 1); // 1.5 µs
        assert_eq!(s.buckets[2], 1); // 3 µs
        assert_eq!(s.buckets.iter().sum::<u64>(), 2);
        assert!((s.mean_ns() - 2_250.0).abs() < 1e-9);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert!(Histogram::new().snapshot().mean_ns().abs() < 1e-12);
    }
}
