//! Structured telemetry for the EffiCSense sweep engine.
//!
//! A design-space product sweep runs for hours across worker threads,
//! caches, retries and fault plans; this crate is the window into it.
//! Std-only by design — it must build in the same offline environment as
//! the models it observes — and strictly *passive*: instrumentation may
//! never change an evaluation result, only record timing and counts.
//!
//! Three instrument kinds, aggregated in a process-wide [`ObsRegistry`]:
//!
//! * **Counters** ([`Counter`]) — monotonically increasing atomic event
//!   counts (cache hits, quarantined points, retry attempts).
//! * **Spans** ([`SpanGuard`], created by the [`span!`] macro) — scoped
//!   timers feeding a fixed-bucket latency [`Histogram`] per span name.
//!   Spans nest on a thread-local stack; every record carries both the
//!   *total* duration and the *self* time (total minus the time spent in
//!   directly nested spans), so per-stage totals are disjoint and sum to
//!   the enclosing span.
//! * **Trace events** ([`TraceEvent`]) — optional JSON-lines stream of
//!   span begin/end events (with `span`/`parent`/`thread` causal lineage),
//!   warnings and heartbeats to a sink installed with
//!   [`ObsRegistry::set_sink`]; disabled (and free) by default. A
//!   deterministic tree-level sampler
//!   ([`ObsRegistry::set_trace_sampling`]) keeps every Nth span *tree*
//!   whole, so sampled traces still reconstruct.
//!
//! Timing comes from a pluggable [`Clock`]: the default
//! [`MonotonicClock`] reads wall time, while [`LogicalClock`] advances a
//! *thread-local* tick on every read, making span durations a pure
//! function of code structure — identical sweeps produce identical metric
//! snapshots regardless of worker-thread count or interleaving.
//!
//! [`ObsRegistry::snapshot`] freezes everything into an ordered
//! name → value map ([`Snapshot`]) that serialises to JSON via the same
//! hand-rolled [`json`] module the trace parser uses.
//!
//! The [`profile`] module closes the loop offline: it rebuilds the span
//! forest from a JSONL trace and aggregates it into a deterministic
//! [`Profile`] — per-stage self/total time with exact p50/p95/p99,
//! folded-stack flamegraph text, cache-efficacy estimates, and a
//! per-stage [`profile::diff`] that attributes a throughput change to
//! the stages responsible.

pub mod clock;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod trace;

pub use clock::{Clock, LogicalClock, MonotonicClock};
pub use metrics::{bucket_floor_us, bucket_index, Counter, Histogram, HistogramSnapshot, BUCKETS};
pub use profile::{Profile, ProfileBuilder, ProfileDiff, StageStats};
pub use registry::{global, ObsRegistry, Snapshot, SpanGuard};
pub use trace::{FieldValue, TraceEvent};

/// Opens a named span on the [`global`] registry, returning a guard that
/// records into the span's histogram when dropped. The histogram handle is
/// resolved once and cached in a per-call-site static, so a hot loop pays
/// two clock reads and a few atomics per span — no map lookups.
///
/// ```
/// let _guard = efficsense_obs::span!("stage.simulate");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::global().span_on(
            HANDLE.get_or_init(|| $crate::global().histogram($name)),
            $name,
        )
    }};
}

/// Resolves a named counter on the [`global`] registry, cached in a
/// per-call-site static (same trick as [`span!`]).
///
/// ```
/// efficsense_obs::counter!("cache.l1.hit").incr();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}
