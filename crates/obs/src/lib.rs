//! Structured telemetry for the EffiCSense sweep engine.
//!
//! A design-space product sweep runs for hours across worker threads,
//! caches, retries and fault plans; this crate is the window into it.
//! Std-only by design — it must build in the same offline environment as
//! the models it observes — and strictly *passive*: instrumentation may
//! never change an evaluation result, only record timing and counts.
//!
//! Three instrument kinds, aggregated in a process-wide [`ObsRegistry`]:
//!
//! * **Counters** ([`Counter`]) — monotonically increasing atomic event
//!   counts (cache hits, quarantined points, retry attempts).
//! * **Spans** ([`SpanGuard`], created by the [`span!`] macro) — scoped
//!   timers feeding a fixed-bucket latency [`Histogram`] per span name.
//!   Spans nest on a thread-local stack; every record carries both the
//!   *total* duration and the *self* time (total minus the time spent in
//!   directly nested spans), so per-stage totals are disjoint and sum to
//!   the enclosing span.
//! * **Trace events** ([`TraceEvent`]) — optional JSON-lines stream of
//!   span closings, warnings and heartbeats to a sink installed with
//!   [`ObsRegistry::set_sink`]; disabled (and free) by default.
//!
//! Timing comes from a pluggable [`Clock`]: the default
//! [`MonotonicClock`] reads wall time, while [`LogicalClock`] advances a
//! *thread-local* tick on every read, making span durations a pure
//! function of code structure — identical sweeps produce identical metric
//! snapshots regardless of worker-thread count or interleaving.
//!
//! [`ObsRegistry::snapshot`] freezes everything into an ordered
//! name → value map ([`Snapshot`]) that serialises to JSON via the same
//! hand-rolled [`json`] module the trace parser uses.

pub mod clock;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use clock::{Clock, LogicalClock, MonotonicClock};
pub use metrics::{bucket_floor_us, bucket_index, Counter, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{global, ObsRegistry, Snapshot, SpanGuard};
pub use trace::{FieldValue, TraceEvent};

/// Opens a named span on the [`global`] registry, returning a guard that
/// records into the span's histogram when dropped. The histogram handle is
/// resolved once and cached in a per-call-site static, so a hot loop pays
/// two clock reads and a few atomics per span — no map lookups.
///
/// ```
/// let _guard = efficsense_obs::span!("stage.simulate");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::global().span_on(
            HANDLE.get_or_init(|| $crate::global().histogram($name)),
            $name,
        )
    }};
}

/// Resolves a named counter on the [`global`] registry, cached in a
/// per-call-site static (same trick as [`span!`]).
///
/// ```
/// efficsense_obs::counter!("cache.l1.hit").incr();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}
