//! Pluggable time sources for span measurement.
//!
//! The registry reads time through a [`Clock`] trait object so tests can
//! swap the wall clock for a deterministic one. [`MonotonicClock`] is the
//! production source; [`LogicalClock`] makes span durations a pure function
//! of code structure (see its docs), which is what lets the determinism
//! tests compare metric snapshots across worker-thread counts.

use std::cell::Cell;
use std::time::Instant;

/// A monotonic time source, read in nanoseconds from an arbitrary origin.
///
/// Implementations must be cheap (called twice per span) and monotonic per
/// thread; the absolute origin is irrelevant because spans only consume
/// differences.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Current time in nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time via [`Instant`], anchored at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

thread_local! {
    /// Per-thread tick counter of every [`LogicalClock`] (see below for why
    /// it is thread-local rather than global).
    static LOGICAL_NOW_NS: Cell<u64> = const { Cell::new(0) };
}

/// Deterministic clock: every read advances a **thread-local** counter by a
/// fixed step and returns it.
///
/// Thread-locality is the load-bearing choice. A span's duration is the
/// difference between two reads *on the thread that owns the span*, so with
/// a per-thread counter it equals `step × (clock reads made by that thread
/// inside the span)` — a pure function of the code path, independent of how
/// other threads interleave. A single global counter would leak cross-thread
/// scheduling into every duration and make 1-thread and N-thread runs
/// disagree.
///
/// The absolute tick values differ between threads and runs; only
/// differences are meaningful, exactly as with [`MonotonicClock`].
#[derive(Debug, Clone)]
pub struct LogicalClock {
    step_ns: u64,
}

impl LogicalClock {
    /// A logical clock advancing `step_ns` per read (clamped to ≥ 1).
    #[must_use]
    pub fn new(step_ns: u64) -> Self {
        Self {
            step_ns: step_ns.max(1),
        }
    }
}

impl Clock for LogicalClock {
    fn now_ns(&self) -> u64 {
        LOGICAL_NOW_NS.with(|c| {
            let t = c.get().wrapping_add(self.step_ns);
            c.set(t);
            t
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn logical_clock_steps_deterministically() {
        let c = LogicalClock::new(1_000);
        let a = c.now_ns();
        let b = c.now_ns();
        assert_eq!(b - a, 1_000);
        // A second instance shares the thread-local counter: durations stay
        // meaningful even when the registry clock is swapped mid-thread.
        let d = LogicalClock::new(1_000);
        assert_eq!(d.now_ns() - b, 1_000);
    }

    #[test]
    fn logical_clock_zero_step_clamps_to_one() {
        let c = LogicalClock::new(0);
        let a = c.now_ns();
        assert_eq!(c.now_ns() - a, 1);
    }

    #[test]
    fn logical_clock_is_per_thread() {
        let c = LogicalClock::new(7);
        let main_first = c.now_ns();
        let other = std::thread::spawn(move || {
            let c = LogicalClock::new(7);
            c.now_ns()
        })
        .join()
        .expect("thread joins");
        // A fresh thread starts from its own zero, unaffected by reads here.
        assert_eq!(other, 7);
        assert_eq!(c.now_ns(), main_first + 7);
    }
}
