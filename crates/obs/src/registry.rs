//! The process-wide instrument registry: named counters and span
//! histograms, a swappable clock, and an optional JSONL trace sink.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::clock::{Clock, MonotonicClock};
use crate::json::escape;
use crate::metrics::{Counter, Histogram, HistogramSnapshot};
use crate::trace::{FieldValue, TraceEvent};

/// One open span on a thread's stack: the child-time accumulator for
/// self-time accounting, the span's lineage id, and whether the span's
/// tree was selected by the trace sampler.
struct Frame {
    child_ns: u64,
    span_id: u64,
    traced: bool,
}

/// Per-thread span bookkeeping: the open-frame stack, the id sequence,
/// the root-span sampling counter, and the lazily assigned thread
/// ordinal (`NEXT_THREAD_ORDINAL` hands each OS thread a distinct small
/// integer on its first span).
struct ThreadSpans {
    frames: Vec<Frame>,
    next_seq: u32,
    roots: u64,
    ordinal: Option<u32>,
}

impl ThreadSpans {
    fn ordinal(&mut self) -> u32 {
        *self.ordinal.get_or_insert_with(|| {
            // relaxed: ordinals only need to be distinct, not ordered
            NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed)
        })
    }
}

static NEXT_THREAD_ORDINAL: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// Per-thread stack of open spans. Opening a span pushes a frame with
    /// a zeroed child-time accumulator; a closing child adds its total
    /// into the new top, which is the parent's accumulator. Frames also
    /// carry the lineage id (`thread ordinal << 32 | per-thread seq`) and
    /// the sampling decision children inherit from their root.
    static SPAN_STATE: RefCell<ThreadSpans> = const {
        RefCell::new(ThreadSpans { frames: Vec::new(), next_seq: 0, roots: 0, ordinal: None })
    };
}

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Aggregation point for all instruments (see the crate docs for the
/// model). Most code uses the [`global`] instance through the [`span!`]
/// and [`counter!`] macros; tests construct their own for isolation.
///
/// [`span!`]: crate::span!
/// [`counter!`]: crate::counter!
pub struct ObsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    spans: Mutex<BTreeMap<String, Arc<Histogram>>>,
    clock: Mutex<Arc<dyn Clock>>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
    sink_enabled: AtomicBool,
    trace_sample: AtomicU64,
    run_id: Mutex<String>,
}

/// Default run id: `<binary-name>-<pid>`. Derived without ambient time or
/// entropy (both are banned in library code by the determinism lints), yet
/// unique across the binaries of one CI run, so their JSONL traces can be
/// merged into a single timeline and split back apart.
fn default_run_id() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let name = std::path::Path::new(&exe).file_stem().map_or_else(
        || "unknown".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    format!("{name}-{}", std::process::id())
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRegistry")
            .field("counters", &recover(self.counters.lock()).len())
            .field("spans", &recover(self.spans.lock()).len())
            // relaxed: debug rendering; a momentarily stale flag is fine
            .field("sink_enabled", &self.sink_enabled.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ObsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsRegistry {
    /// An empty registry with a [`MonotonicClock`] and no trace sink.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            clock: Mutex::new(Arc::new(MonotonicClock::new())),
            sink: Mutex::new(None),
            sink_enabled: AtomicBool::new(false),
            trace_sample: AtomicU64::new(1),
            run_id: Mutex::new(default_run_id()),
        }
    }

    /// The id stamped onto every emitted trace event as its `run` field.
    #[must_use]
    pub fn run_id(&self) -> String {
        recover(self.run_id.lock()).clone()
    }

    /// Overrides the run id (e.g. a CI job id shared across binaries).
    pub fn set_run_id(&self, id: &str) {
        *recover(self.run_id.lock()) = id.to_string();
    }

    /// The named counter, created on first use. The returned handle is
    /// cheap to clone and valid for the registry's lifetime — cache it
    /// (the [`counter!`] macro does) rather than re-resolving per event.
    ///
    /// [`counter!`]: crate::counter!
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            recover(self.counters.lock())
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The named span histogram, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            recover(self.spans.lock())
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Replaces the time source. Existing open spans mix clocks for one
    /// reading; swap at quiescent points (startup, between sweep passes).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *recover(self.clock.lock()) = clock;
    }

    /// Reads the current clock.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        recover(self.clock.lock()).now_ns()
    }

    /// Installs a JSONL trace sink (e.g. a buffered file); `None` removes
    /// it. While no sink is installed, event emission short-circuits on a
    /// relaxed atomic load. The outgoing sink, if any, receives a closing
    /// `"counters"` event and a flush so its trace is self-contained.
    pub fn set_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        let enabled = sink.is_some();
        self.finalize_sink();
        let mut slot = recover(self.sink.lock());
        *slot = sink;
        // relaxed: advisory fast-path flag; the sink itself is behind the
        // mutex, so a stale read only costs one wasted event build.
        self.sink_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Sets the trace sampling stride: 1 (the default) traces every span
    /// tree, `n` traces every n-th *root* span per thread. Children
    /// inherit their root's decision, so a sampled trace keeps whole span
    /// trees and parent links never dangle. Histograms and counters
    /// always record every span — sampling bounds only the JSONL event
    /// volume.
    pub fn set_trace_sampling(&self, every: u64) {
        // relaxed: advisory configuration knob, read once per root span
        self.trace_sample.store(every.max(1), Ordering::Relaxed);
    }

    /// The current trace sampling stride (see
    /// [`ObsRegistry::set_trace_sampling`]).
    #[must_use]
    pub fn trace_sampling(&self) -> u64 {
        // relaxed: advisory configuration knob
        self.trace_sample.load(Ordering::Relaxed)
    }

    /// Whether a trace sink is installed. Callers pay for event
    /// construction only when this is true.
    #[must_use]
    pub fn sink_enabled(&self) -> bool {
        // relaxed: advisory fast-path flag; emit() re-checks under the lock
        self.sink_enabled.load(Ordering::Relaxed)
    }

    /// Writes one event to the sink, if any, stamping it with the process
    /// [`run id`](ObsRegistry::run_id) so traces from several binaries can
    /// be merged into one timeline. A failing sink is dropped after a
    /// single stderr warning — telemetry must never take down the sweep.
    pub fn emit(&self, event: &TraceEvent) {
        if !self.sink_enabled() {
            return;
        }
        let stamped = event.clone().field("run", FieldValue::Str(self.run_id()));
        let mut slot = recover(self.sink.lock());
        if let Some(sink) = slot.as_mut() {
            let mut line = stamped.to_json_line();
            line.push('\n');
            if let Err(e) = sink.write_all(line.as_bytes()) {
                eprintln!("warning: trace sink write failed ({e}); tracing disabled");
                *slot = None;
                // relaxed: advisory flag cleared under the sink lock
                self.sink_enabled.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Flushes the trace sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = recover(self.sink.lock()).as_mut() {
            let _ = sink.flush();
        }
    }

    /// Emits a `"counters"` trace event carrying every counter's current
    /// value, making the trace file self-contained for offline analysis
    /// (the profiler's cache-efficacy report joins these with span
    /// durations). The last such event in a trace wins.
    pub fn emit_counters(&self) {
        if !self.sink_enabled() {
            return;
        }
        let ev = self.counters_event();
        self.emit(&ev);
    }

    fn counters_event(&self) -> TraceEvent {
        let mut ev = TraceEvent::new(self.now_ns(), "counters", "registry.counters");
        for (k, v) in recover(self.counters.lock()).iter() {
            ev = ev.field(k, FieldValue::U64(v.get()));
        }
        ev
    }

    /// Writes a closing `"counters"` event into the current sink and
    /// flushes it. Called when the sink is detached — replacement via
    /// [`ObsRegistry::set_sink`] or registry teardown — so a buffered
    /// tail and the final counter totals are never silently lost.
    fn finalize_sink(&self) {
        if !self.sink_enabled() {
            return;
        }
        let mut line = self
            .counters_event()
            .field("run", FieldValue::Str(self.run_id()))
            .to_json_line();
        line.push('\n');
        let mut slot = recover(self.sink.lock());
        if let Some(sink) = slot.as_mut() {
            let _ = sink.write_all(line.as_bytes());
            let _ = sink.flush();
        }
    }

    /// Opens a span against an already-resolved histogram handle (the
    /// [`span!`] macro's fast path). `name` is only used for the trace
    /// event on close.
    ///
    /// [`span!`]: crate::span!
    #[must_use]
    pub fn span_on<'a>(&'a self, hist: &Arc<Histogram>, name: &'static str) -> SpanGuard<'a> {
        let sink_on = self.sink_enabled();
        let sample = if sink_on {
            self.trace_sampling().max(1)
        } else {
            1
        };
        let (span_id, parent_id, thread, traced) = SPAN_STATE.with(|s| {
            let mut st = s.borrow_mut();
            let thread = st.ordinal();
            st.next_seq = st.next_seq.wrapping_add(1);
            let span_id = (u64::from(thread) << 32) | u64::from(st.next_seq);
            let parent_id = st.frames.last().map(|f| f.span_id);
            // Tree-level sampling: a root span draws from the per-thread
            // root counter; children inherit, so sampled traces keep
            // whole trees and parent links never dangle.
            let traced = sink_on
                && match st.frames.last() {
                    Some(parent) => parent.traced,
                    None => {
                        let n = st.roots;
                        st.roots += 1;
                        n % sample == 0
                    }
                };
            st.frames.push(Frame {
                child_ns: 0,
                span_id,
                traced,
            });
            (span_id, parent_id, thread, traced)
        });
        let start_ns = self.now_ns();
        if traced {
            let mut ev =
                TraceEvent::new(start_ns, "begin", name).field("span", FieldValue::U64(span_id));
            if let Some(p) = parent_id {
                ev = ev.field("parent", FieldValue::U64(p));
            }
            self.emit(&ev.field("thread", FieldValue::U64(u64::from(thread))));
        }
        SpanGuard {
            registry: self,
            hist: Arc::clone(hist),
            name,
            start_ns,
            span_id,
            parent_id,
            thread,
            traced,
        }
    }

    /// Convenience for non-hot paths: resolve by name, then open.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let hist = self.histogram(name);
        self.span_on(&hist, name)
    }

    /// Routes a warning through telemetry: prints `text` to stderr, adds
    /// `count` to the named counter, and emits a `warn` trace event.
    pub fn warn(&self, name: &'static str, count: u64, text: &str) {
        eprintln!("{text}");
        self.counter(name).add(count);
        if self.sink_enabled() {
            let ev = TraceEvent::new(self.now_ns(), "warn", name)
                .field("count", FieldValue::U64(count))
                .field("text", FieldValue::Str(text.to_string()));
            self.emit(&ev);
        }
    }

    /// Freezes every instrument into an ordered snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: recover(self.counters.lock())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            spans: recover(self.spans.lock())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every counter and histogram (names and handles stay valid).
    /// For test isolation and multi-pass benches; not thread-safe with
    /// respect to in-flight spans.
    pub fn reset(&self) {
        for c in recover(self.counters.lock()).values() {
            c.reset();
        }
        for h in recover(self.spans.lock()).values() {
            h.reset();
        }
    }
}

impl Drop for ObsRegistry {
    fn drop(&mut self) {
        // Teardown flush: a buffered sink dropped with the registry would
        // otherwise lose its tail silently, truncating the trace. (The
        // process-wide [`global`] registry lives in a `OnceLock` and never
        // drops — long-lived binaries flush through
        // [`ObsRegistry::flush`] / [`ObsRegistry::set_sink`] instead.)
        self.finalize_sink();
    }
}

/// RAII guard for an open span; records into the histogram and emits a
/// trace event with full lineage (when a sink is installed and the
/// span's tree is sampled) on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a ObsRegistry,
    hist: Arc<Histogram>,
    name: &'static str,
    start_ns: u64,
    span_id: u64,
    parent_id: Option<u64>,
    thread: u32,
    traced: bool,
}

impl SpanGuard<'_> {
    /// This span's lineage id (`thread ordinal << 32 | per-thread seq`).
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The enclosing span's id, if this span is not a root.
    #[must_use]
    pub fn parent_id(&self) -> Option<u64> {
        self.parent_id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end_ns = self.registry.now_ns();
        let total = end_ns.saturating_sub(self.start_ns);
        let child = SPAN_STATE.with(|s| {
            let mut st = s.borrow_mut();
            let child = st.frames.pop().map_or(0, |f| f.child_ns);
            // Propagate this span's total into the parent's accumulator.
            if let Some(parent) = st.frames.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total);
            }
            child
        });
        let self_ns = total.saturating_sub(child);
        self.hist.record(total, self_ns);
        if self.traced {
            let mut ev = TraceEvent::new(end_ns, "span", self.name)
                .field("span", FieldValue::U64(self.span_id));
            if let Some(p) = self.parent_id {
                ev = ev.field("parent", FieldValue::U64(p));
            }
            let ev = ev
                .field("thread", FieldValue::U64(u64::from(self.thread)))
                .field("total_ns", FieldValue::U64(total))
                .field("self_ns", FieldValue::U64(self_ns));
            self.registry.emit(&ev);
        }
    }
}

/// An ordered, frozen view of a registry: counter values and span
/// histogram snapshots, both sorted by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` for every span histogram, name-ordered.
    pub spans: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// A counter's value, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// A span's histogram snapshot, if present.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.spans.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serialises the snapshot as a compact JSON object:
    ///
    /// ```json
    /// {"counters":{"cache.l1.hit":12},
    ///  "spans":{"sweep.point":{"count":96,"total_ns":1,"self_ns":1,
    ///           "mean_ns":0.01,"p50_us":1,"p95_us":2,"p99_us":2,
    ///           "buckets":[0,...]}}}
    /// ```
    ///
    /// The `p*_us` values are bucket-geometry quantile *upper bounds*
    /// (see [`HistogramSnapshot::quantile_upper_us`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(k)));
        }
        out.push_str("},\"spans\":{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\"mean_ns\":{:?},\
                 \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"buckets\":[",
                escape(k),
                s.count,
                s.total_ns,
                s.self_ns,
                s.mean_ns(),
                s.p50_us(),
                s.p95_us(),
                s.p99_us()
            ));
            for (j, b) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{b}"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

static GLOBAL: OnceLock<ObsRegistry> = OnceLock::new();

/// The process-wide registry used by the [`span!`] and [`counter!`]
/// macros.
///
/// [`span!`]: crate::span!
/// [`counter!`]: crate::counter!
#[must_use]
pub fn global() -> &'static ObsRegistry {
    GLOBAL.get_or_init(ObsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::trace::TraceEvent;

    /// A `Write` sink that appends into a shared buffer the test can read
    /// back after the registry has consumed the other clone.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(recover(self.0.lock()).clone()).expect("utf8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            recover(self.0.lock()).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A sink that always fails, to exercise the drop-on-error path.
    struct BrokenSink;

    impl Write for BrokenSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("broken"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn nested_spans_split_total_and_self_time() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(1_000)));
        {
            let _outer = reg.span("outer"); // read 1 (start)
            {
                let _inner = reg.span("inner"); // read 2 (start)
            } // read 3 (end): inner total 1000, self 1000
        } // read 4 (end): outer total 3000, child 1000, self 2000
        let snap = reg.snapshot();
        let outer = snap.span("outer").expect("outer recorded");
        let inner = snap.span("inner").expect("inner recorded");
        assert_eq!(inner.total_ns, 1_000);
        assert_eq!(inner.self_ns, 1_000);
        assert_eq!(outer.total_ns, 3_000);
        assert_eq!(outer.self_ns, 2_000);
    }

    #[test]
    fn sibling_spans_each_charge_the_parent() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(1)));
        {
            let _p = reg.span("parent"); // 1 read
            drop(reg.span("a")); // 2 reads, total 1
            drop(reg.span("b")); // 2 reads, total 1
        } // end read: parent total 5, children 2, self 3
        let snap = reg.snapshot();
        let parent = snap.span("parent").expect("parent recorded");
        assert_eq!(parent.total_ns, 5);
        assert_eq!(parent.self_ns, 3);
        let child_total = snap.span("a").expect("a").total_ns + snap.span("b").expect("b").total_ns;
        assert_eq!(parent.total_ns - parent.self_ns, child_total);
    }

    #[test]
    fn snapshot_is_name_ordered_and_resets() {
        let reg = ObsRegistry::new();
        reg.counter("zeta").add(3);
        reg.counter("alpha").incr();
        drop(reg.span("m"));
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.counter("zeta"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        reg.reset();
        let after = reg.snapshot();
        assert_eq!(after.counter("zeta"), Some(0));
        assert_eq!(after.span("m").expect("name survives reset").count, 0);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(500)));
        reg.counter("hits").add(7);
        drop(reg.span("stage"));
        let json = crate::json::Json::parse(&reg.snapshot().to_json()).expect("snapshot JSON");
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("hits"))
                .and_then(crate::json::Json::as_u64),
            Some(7)
        );
        let stage = json
            .get("spans")
            .and_then(|s| s.get("stage"))
            .expect("stage");
        assert_eq!(
            stage.get("total_ns").and_then(crate::json::Json::as_u64),
            Some(500)
        );
        assert_eq!(
            stage
                .get("buckets")
                .and_then(crate::json::Json::as_arr)
                .map(<[crate::json::Json]>::len),
            Some(crate::metrics::BUCKETS)
        );
    }

    #[test]
    fn sink_receives_span_warn_and_heartbeat_events() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        assert!(!reg.sink_enabled());
        reg.set_sink(Some(Box::new(buf.clone())));
        assert!(reg.sink_enabled());
        drop(reg.span("s"));
        reg.warn("w", 2, "two things happened");
        reg.emit(&TraceEvent::new(reg.now_ns(), "heartbeat", "progress"));
        reg.flush();
        let lines: Vec<TraceEvent> = buf
            .contents()
            .lines()
            .map(|l| TraceEvent::parse(l).expect("every sink line parses"))
            .collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].kind, "begin");
        assert_eq!(lines[1].kind, "span");
        assert_eq!(lines[1].get("total_ns"), Some(&FieldValue::U64(10)));
        assert_eq!(lines[2].kind, "warn");
        assert_eq!(lines[2].get("count"), Some(&FieldValue::U64(2)));
        assert_eq!(lines[3].kind, "heartbeat");
        reg.set_sink(None);
        assert!(!reg.sink_enabled());
    }

    #[test]
    fn span_events_carry_parent_linked_lineage() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        reg.set_sink(Some(Box::new(buf.clone())));
        {
            let outer = reg.span("outer");
            let inner = reg.span("inner");
            assert_eq!(inner.parent_id(), Some(outer.span_id()));
            assert!(outer.parent_id().is_none(), "outer is a root");
        }
        reg.flush();
        let events: Vec<TraceEvent> = buf
            .contents()
            .lines()
            .map(|l| TraceEvent::parse(l).expect("parses"))
            .collect();
        // begin(outer), begin(inner), span(inner), span(outer)
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, "begin");
        assert_eq!(events[0].name, "outer");
        let outer_id = match events[0].get("span") {
            Some(&FieldValue::U64(id)) => id,
            other => panic!("outer begin lacks span id: {other:?}"),
        };
        assert_eq!(events[0].get("parent"), None, "roots omit parent");
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[1].get("parent"), Some(&FieldValue::U64(outer_id)));
        assert_eq!(events[2].kind, "span");
        assert_eq!(events[2].name, "inner");
        assert_eq!(events[2].get("parent"), Some(&FieldValue::U64(outer_id)));
        assert_eq!(events[3].name, "outer");
        assert_eq!(events[3].get("span"), Some(&FieldValue::U64(outer_id)));
        assert!(events[3].get("thread").is_some(), "events carry the thread");
    }

    #[test]
    fn tree_sampling_keeps_whole_trees_and_all_histogram_records() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        reg.set_trace_sampling(2);
        assert_eq!(reg.trace_sampling(), 2);
        let buf = SharedBuf::default();
        reg.set_sink(Some(Box::new(buf.clone())));
        for _ in 0..4 {
            let _root = reg.span("root");
            drop(reg.span("leaf"));
        }
        reg.flush();
        let events: Vec<TraceEvent> = buf
            .contents()
            .lines()
            .map(|l| TraceEvent::parse(l).expect("parses"))
            .collect();
        // Roots 0 and 2 are sampled; each tree emits 2 begins + 2 ends.
        let span_ends = events.iter().filter(|e| e.kind == "span").count();
        let begins = events.iter().filter(|e| e.kind == "begin").count();
        assert_eq!(span_ends, 4);
        assert_eq!(begins, 4);
        // Every sampled end event's parent (if any) has a begin event, so
        // lineage never dangles under sampling.
        for e in events.iter().filter(|e| e.kind == "span") {
            if let Some(&FieldValue::U64(p)) = e.get("parent") {
                assert!(
                    events
                        .iter()
                        .any(|b| b.kind == "begin" && b.get("span") == Some(&FieldValue::U64(p))),
                    "dangling parent {p}"
                );
            }
        }
        // Histograms are unaffected by sampling.
        let snap = reg.snapshot();
        assert_eq!(snap.span("root").expect("root").count, 4);
        assert_eq!(snap.span("leaf").expect("leaf").count, 4);
        reg.set_trace_sampling(0); // clamps to 1
        assert_eq!(reg.trace_sampling(), 1);
    }

    /// A sink that buffers writes and only publishes them on `flush`, to
    /// pin down the teardown-flush guarantees.
    #[derive(Clone, Default)]
    struct FlushGated {
        pending: Arc<Mutex<Vec<u8>>>,
        visible: Arc<Mutex<Vec<u8>>>,
    }

    impl FlushGated {
        fn visible(&self) -> String {
            String::from_utf8(recover(self.visible.lock()).clone()).expect("utf8")
        }
    }

    impl Write for FlushGated {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            recover(self.pending.lock()).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            let mut pending = recover(self.pending.lock());
            recover(self.visible.lock()).extend_from_slice(&pending);
            pending.clear();
            Ok(())
        }
    }

    #[test]
    fn registry_teardown_flushes_the_sink_and_appends_counters() {
        let buf = FlushGated::default();
        {
            let reg = ObsRegistry::new();
            reg.set_clock(Arc::new(LogicalClock::new(10)));
            reg.set_sink(Some(Box::new(buf.clone())));
            reg.counter("work.done").add(3);
            drop(reg.span("s"));
            assert_eq!(buf.visible(), "", "nothing published before flush");
        } // registry drops here
        let events: Vec<TraceEvent> = buf
            .visible()
            .lines()
            .map(|l| TraceEvent::parse(l).expect("parses"))
            .collect();
        assert!(
            events.iter().any(|e| e.kind == "span"),
            "buffered span flushed on teardown"
        );
        let counters = events
            .last()
            .expect("teardown appends a closing counters event");
        assert_eq!(counters.kind, "counters");
        assert_eq!(counters.get("work.done"), Some(&FieldValue::U64(3)));
    }

    #[test]
    fn emit_counters_writes_current_values() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        reg.set_sink(Some(Box::new(buf.clone())));
        reg.counter("a.hit").add(5);
        reg.emit_counters();
        reg.flush();
        let ev = TraceEvent::parse(buf.contents().lines().next().expect("one line"))
            .expect("counters event parses");
        assert_eq!(ev.kind, "counters");
        assert_eq!(ev.name, "registry.counters");
        assert_eq!(ev.get("a.hit"), Some(&FieldValue::U64(5)));
    }

    #[test]
    fn every_emitted_event_carries_the_run_id() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        reg.set_sink(Some(Box::new(buf.clone())));
        drop(reg.span("s"));
        reg.warn("w", 1, "note");
        reg.flush();
        let id = reg.run_id();
        assert!(id.contains('-'), "default id is <binary>-<pid>: {id}");
        for line in buf.contents().lines() {
            let ev = TraceEvent::parse(line).expect("line parses");
            assert_eq!(
                ev.get("run"),
                Some(&FieldValue::Str(id.clone())),
                "missing run id on: {line}"
            );
        }
    }

    #[test]
    fn run_id_override_applies_to_subsequent_events() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        reg.set_sink(Some(Box::new(buf.clone())));
        reg.set_run_id("ci-1234");
        assert_eq!(reg.run_id(), "ci-1234");
        drop(reg.span("s"));
        reg.flush();
        let ev =
            TraceEvent::parse(buf.contents().lines().next().expect("one line")).expect("parses");
        assert_eq!(ev.get("run"), Some(&FieldValue::Str("ci-1234".to_string())));
    }

    #[test]
    fn failing_sink_is_dropped_not_fatal() {
        let reg = ObsRegistry::new();
        reg.set_sink(Some(Box::new(BrokenSink)));
        drop(reg.span("s")); // triggers a write that fails
        assert!(!reg.sink_enabled(), "broken sink must disable tracing");
        drop(reg.span("s")); // and further spans still record fine
        assert_eq!(reg.snapshot().span("s").expect("s").count, 2);
    }

    #[test]
    fn warn_counts_without_a_sink() {
        let reg = ObsRegistry::new();
        reg.warn("report.nonfinite_cells", 4, "warning: 4 cells blank");
        assert_eq!(reg.snapshot().counter("report.nonfinite_cells"), Some(4));
    }
}
