//! The process-wide instrument registry: named counters and span
//! histograms, a swappable clock, and an optional JSONL trace sink.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::clock::{Clock, MonotonicClock};
use crate::json::escape;
use crate::metrics::{Counter, Histogram, HistogramSnapshot};
use crate::trace::{FieldValue, TraceEvent};

thread_local! {
    /// Per-thread stack of child-time accumulators for self-time
    /// accounting. Opening a span pushes a 0; a closing child adds its
    /// total into the new top, which is the parent's accumulator.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Aggregation point for all instruments (see the crate docs for the
/// model). Most code uses the [`global`] instance through the [`span!`]
/// and [`counter!`] macros; tests construct their own for isolation.
///
/// [`span!`]: crate::span!
/// [`counter!`]: crate::counter!
pub struct ObsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    spans: Mutex<BTreeMap<String, Arc<Histogram>>>,
    clock: Mutex<Arc<dyn Clock>>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
    sink_enabled: AtomicBool,
    run_id: Mutex<String>,
}

/// Default run id: `<binary-name>-<pid>`. Derived without ambient time or
/// entropy (both are banned in library code by the determinism lints), yet
/// unique across the binaries of one CI run, so their JSONL traces can be
/// merged into a single timeline and split back apart.
fn default_run_id() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let name = std::path::Path::new(&exe).file_stem().map_or_else(
        || "unknown".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    format!("{name}-{}", std::process::id())
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRegistry")
            .field("counters", &recover(self.counters.lock()).len())
            .field("spans", &recover(self.spans.lock()).len())
            // relaxed: debug rendering; a momentarily stale flag is fine
            .field("sink_enabled", &self.sink_enabled.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ObsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsRegistry {
    /// An empty registry with a [`MonotonicClock`] and no trace sink.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            clock: Mutex::new(Arc::new(MonotonicClock::new())),
            sink: Mutex::new(None),
            sink_enabled: AtomicBool::new(false),
            run_id: Mutex::new(default_run_id()),
        }
    }

    /// The id stamped onto every emitted trace event as its `run` field.
    #[must_use]
    pub fn run_id(&self) -> String {
        recover(self.run_id.lock()).clone()
    }

    /// Overrides the run id (e.g. a CI job id shared across binaries).
    pub fn set_run_id(&self, id: &str) {
        *recover(self.run_id.lock()) = id.to_string();
    }

    /// The named counter, created on first use. The returned handle is
    /// cheap to clone and valid for the registry's lifetime — cache it
    /// (the [`counter!`] macro does) rather than re-resolving per event.
    ///
    /// [`counter!`]: crate::counter!
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            recover(self.counters.lock())
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The named span histogram, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            recover(self.spans.lock())
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Replaces the time source. Existing open spans mix clocks for one
    /// reading; swap at quiescent points (startup, between sweep passes).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *recover(self.clock.lock()) = clock;
    }

    /// Reads the current clock.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        recover(self.clock.lock()).now_ns()
    }

    /// Installs a JSONL trace sink (e.g. a buffered file); `None` removes
    /// it. While no sink is installed, event emission short-circuits on a
    /// relaxed atomic load.
    pub fn set_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        let enabled = sink.is_some();
        let mut slot = recover(self.sink.lock());
        // Flush the outgoing sink so its tail is not lost on replacement.
        if let Some(old) = slot.as_mut() {
            let _ = old.flush();
        }
        *slot = sink;
        // relaxed: advisory fast-path flag; the sink itself is behind the
        // mutex, so a stale read only costs one wasted event build.
        self.sink_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether a trace sink is installed. Callers pay for event
    /// construction only when this is true.
    #[must_use]
    pub fn sink_enabled(&self) -> bool {
        // relaxed: advisory fast-path flag; emit() re-checks under the lock
        self.sink_enabled.load(Ordering::Relaxed)
    }

    /// Writes one event to the sink, if any, stamping it with the process
    /// [`run id`](ObsRegistry::run_id) so traces from several binaries can
    /// be merged into one timeline. A failing sink is dropped after a
    /// single stderr warning — telemetry must never take down the sweep.
    pub fn emit(&self, event: &TraceEvent) {
        if !self.sink_enabled() {
            return;
        }
        let stamped = event.clone().field("run", FieldValue::Str(self.run_id()));
        let mut slot = recover(self.sink.lock());
        if let Some(sink) = slot.as_mut() {
            let mut line = stamped.to_json_line();
            line.push('\n');
            if let Err(e) = sink.write_all(line.as_bytes()) {
                eprintln!("warning: trace sink write failed ({e}); tracing disabled");
                *slot = None;
                // relaxed: advisory flag cleared under the sink lock
                self.sink_enabled.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Flushes the trace sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = recover(self.sink.lock()).as_mut() {
            let _ = sink.flush();
        }
    }

    /// Opens a span against an already-resolved histogram handle (the
    /// [`span!`] macro's fast path). `name` is only used for the trace
    /// event on close.
    ///
    /// [`span!`]: crate::span!
    #[must_use]
    pub fn span_on<'a>(&'a self, hist: &Arc<Histogram>, name: &'static str) -> SpanGuard<'a> {
        SPAN_STACK.with(|s| s.borrow_mut().push(0));
        SpanGuard {
            registry: self,
            hist: Arc::clone(hist),
            name,
            start_ns: self.now_ns(),
        }
    }

    /// Convenience for non-hot paths: resolve by name, then open.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let hist = self.histogram(name);
        self.span_on(&hist, name)
    }

    /// Routes a warning through telemetry: prints `text` to stderr, adds
    /// `count` to the named counter, and emits a `warn` trace event.
    pub fn warn(&self, name: &'static str, count: u64, text: &str) {
        eprintln!("{text}");
        self.counter(name).add(count);
        if self.sink_enabled() {
            let ev = TraceEvent::new(self.now_ns(), "warn", name)
                .field("count", FieldValue::U64(count))
                .field("text", FieldValue::Str(text.to_string()));
            self.emit(&ev);
        }
    }

    /// Freezes every instrument into an ordered snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: recover(self.counters.lock())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            spans: recover(self.spans.lock())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every counter and histogram (names and handles stay valid).
    /// For test isolation and multi-pass benches; not thread-safe with
    /// respect to in-flight spans.
    pub fn reset(&self) {
        for c in recover(self.counters.lock()).values() {
            c.reset();
        }
        for h in recover(self.spans.lock()).values() {
            h.reset();
        }
    }
}

/// RAII guard for an open span; records into the histogram and emits a
/// trace event (when a sink is installed) on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a ObsRegistry,
    hist: Arc<Histogram>,
    name: &'static str,
    start_ns: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end_ns = self.registry.now_ns();
        let total = end_ns.saturating_sub(self.start_ns);
        let child = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            // Propagate this span's total into the parent's accumulator.
            if let Some(parent) = stack.last_mut() {
                *parent = parent.saturating_add(total);
            }
            child
        });
        let self_ns = total.saturating_sub(child);
        self.hist.record(total, self_ns);
        if self.registry.sink_enabled() {
            let ev = TraceEvent::new(end_ns, "span", self.name)
                .field("total_ns", FieldValue::U64(total))
                .field("self_ns", FieldValue::U64(self_ns));
            self.registry.emit(&ev);
        }
    }
}

/// An ordered, frozen view of a registry: counter values and span
/// histogram snapshots, both sorted by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` for every span histogram, name-ordered.
    pub spans: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// A counter's value, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// A span's histogram snapshot, if present.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.spans.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serialises the snapshot as a compact JSON object:
    ///
    /// ```json
    /// {"counters":{"cache.l1.hit":12},
    ///  "spans":{"sweep.point":{"count":96,"total_ns":1,"self_ns":1,
    ///           "mean_ns":0.01,"buckets":[0,...]}}}
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(k)));
        }
        out.push_str("},\"spans\":{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\"mean_ns\":{:?},\"buckets\":[",
                escape(k),
                s.count,
                s.total_ns,
                s.self_ns,
                s.mean_ns()
            ));
            for (j, b) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{b}"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

static GLOBAL: OnceLock<ObsRegistry> = OnceLock::new();

/// The process-wide registry used by the [`span!`] and [`counter!`]
/// macros.
///
/// [`span!`]: crate::span!
/// [`counter!`]: crate::counter!
#[must_use]
pub fn global() -> &'static ObsRegistry {
    GLOBAL.get_or_init(ObsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::trace::TraceEvent;

    /// A `Write` sink that appends into a shared buffer the test can read
    /// back after the registry has consumed the other clone.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(recover(self.0.lock()).clone()).expect("utf8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            recover(self.0.lock()).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A sink that always fails, to exercise the drop-on-error path.
    struct BrokenSink;

    impl Write for BrokenSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("broken"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn nested_spans_split_total_and_self_time() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(1_000)));
        {
            let _outer = reg.span("outer"); // read 1 (start)
            {
                let _inner = reg.span("inner"); // read 2 (start)
            } // read 3 (end): inner total 1000, self 1000
        } // read 4 (end): outer total 3000, child 1000, self 2000
        let snap = reg.snapshot();
        let outer = snap.span("outer").expect("outer recorded");
        let inner = snap.span("inner").expect("inner recorded");
        assert_eq!(inner.total_ns, 1_000);
        assert_eq!(inner.self_ns, 1_000);
        assert_eq!(outer.total_ns, 3_000);
        assert_eq!(outer.self_ns, 2_000);
    }

    #[test]
    fn sibling_spans_each_charge_the_parent() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(1)));
        {
            let _p = reg.span("parent"); // 1 read
            drop(reg.span("a")); // 2 reads, total 1
            drop(reg.span("b")); // 2 reads, total 1
        } // end read: parent total 5, children 2, self 3
        let snap = reg.snapshot();
        let parent = snap.span("parent").expect("parent recorded");
        assert_eq!(parent.total_ns, 5);
        assert_eq!(parent.self_ns, 3);
        let child_total = snap.span("a").expect("a").total_ns + snap.span("b").expect("b").total_ns;
        assert_eq!(parent.total_ns - parent.self_ns, child_total);
    }

    #[test]
    fn snapshot_is_name_ordered_and_resets() {
        let reg = ObsRegistry::new();
        reg.counter("zeta").add(3);
        reg.counter("alpha").incr();
        drop(reg.span("m"));
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.counter("zeta"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        reg.reset();
        let after = reg.snapshot();
        assert_eq!(after.counter("zeta"), Some(0));
        assert_eq!(after.span("m").expect("name survives reset").count, 0);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(500)));
        reg.counter("hits").add(7);
        drop(reg.span("stage"));
        let json = crate::json::Json::parse(&reg.snapshot().to_json()).expect("snapshot JSON");
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("hits"))
                .and_then(crate::json::Json::as_u64),
            Some(7)
        );
        let stage = json
            .get("spans")
            .and_then(|s| s.get("stage"))
            .expect("stage");
        assert_eq!(
            stage.get("total_ns").and_then(crate::json::Json::as_u64),
            Some(500)
        );
        assert_eq!(
            stage
                .get("buckets")
                .and_then(crate::json::Json::as_arr)
                .map(<[crate::json::Json]>::len),
            Some(crate::metrics::BUCKETS)
        );
    }

    #[test]
    fn sink_receives_span_warn_and_heartbeat_events() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        assert!(!reg.sink_enabled());
        reg.set_sink(Some(Box::new(buf.clone())));
        assert!(reg.sink_enabled());
        drop(reg.span("s"));
        reg.warn("w", 2, "two things happened");
        reg.emit(&TraceEvent::new(reg.now_ns(), "heartbeat", "progress"));
        reg.flush();
        let lines: Vec<TraceEvent> = buf
            .contents()
            .lines()
            .map(|l| TraceEvent::parse(l).expect("every sink line parses"))
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].kind, "span");
        assert_eq!(lines[0].get("total_ns"), Some(&FieldValue::U64(10)));
        assert_eq!(lines[1].kind, "warn");
        assert_eq!(lines[1].get("count"), Some(&FieldValue::U64(2)));
        assert_eq!(lines[2].kind, "heartbeat");
        reg.set_sink(None);
        assert!(!reg.sink_enabled());
    }

    #[test]
    fn every_emitted_event_carries_the_run_id() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        reg.set_sink(Some(Box::new(buf.clone())));
        drop(reg.span("s"));
        reg.warn("w", 1, "note");
        reg.flush();
        let id = reg.run_id();
        assert!(id.contains('-'), "default id is <binary>-<pid>: {id}");
        for line in buf.contents().lines() {
            let ev = TraceEvent::parse(line).expect("line parses");
            assert_eq!(
                ev.get("run"),
                Some(&FieldValue::Str(id.clone())),
                "missing run id on: {line}"
            );
        }
    }

    #[test]
    fn run_id_override_applies_to_subsequent_events() {
        let reg = ObsRegistry::new();
        reg.set_clock(Arc::new(LogicalClock::new(10)));
        let buf = SharedBuf::default();
        reg.set_sink(Some(Box::new(buf.clone())));
        reg.set_run_id("ci-1234");
        assert_eq!(reg.run_id(), "ci-1234");
        drop(reg.span("s"));
        reg.flush();
        let ev =
            TraceEvent::parse(buf.contents().lines().next().expect("one line")).expect("parses");
        assert_eq!(ev.get("run"), Some(&FieldValue::Str("ci-1234".to_string())));
    }

    #[test]
    fn failing_sink_is_dropped_not_fatal() {
        let reg = ObsRegistry::new();
        reg.set_sink(Some(Box::new(BrokenSink)));
        drop(reg.span("s")); // triggers a write that fails
        assert!(!reg.sink_enabled(), "broken sink must disable tracing");
        drop(reg.span("s")); // and further spans still record fine
        assert_eq!(reg.snapshot().span("s").expect("s").count, 2);
    }

    #[test]
    fn warn_counts_without_a_sink() {
        let reg = ObsRegistry::new();
        reg.warn("report.nonfinite_cells", 4, "warning: 4 cells blank");
        assert_eq!(reg.snapshot().counter("report.nonfinite_cells"), Some(4));
    }
}
