//! Minimal hand-rolled JSON codec shared by the trace parser, the registry
//! snapshot serialiser and `cargo xtask bench-diff`.
//!
//! Deliberately small: objects, arrays, strings, numbers and `null` — the
//! only shapes our own writers emit. Numbers keep the integer/float
//! distinction ([`Json::Int`] vs [`Json::Float`]) so `u64` trace fields
//! round-trip exactly instead of passing through `f64`'s 53-bit mantissa.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A number token with no `.`/`e`/`-` that fits a `u64`.
    Int(u64),
    /// Any other number token.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (duplicate keys are kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; `None` on any syntax error or
    /// trailing garbage.
    #[must_use]
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i == p.b.len() {
            Some(v)
        } else {
            None
        }
    }

    /// The object entries, or `None` for non-objects.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object (first match wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The array elements, or `None` for non-arrays.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string value, or `None` for non-strings.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, or `None` for anything else (floats included —
    /// callers that want coercion use [`Json::as_f64`]).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as `f64`, coercing [`Json::Int`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }
}

/// Escapes a string for embedding between JSON double quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b'n' => {
                if self.b[self.i..].starts_with(b"null") {
                    self.i += 4;
                    Some(Json::Null)
                } else {
                    None
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Some(Json::Obj(out));
        }
        loop {
            let k = {
                self.skip_ws();
                self.string()?
            };
            self.eat(b':')?;
            let v = self.value()?;
            out.push((k, v));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(Json::Obj(out));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Some(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Some(Json::Arr(out));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.b.get(self.i) != Some(&b'"') {
            return None;
        }
        self.i += 1;
        let start = self.i;
        // Fast path: no escapes, raw UTF-8 slice between the quotes.
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    let s = std::str::from_utf8(&self.b[start..self.i]).ok()?;
                    self.i += 1;
                    return Some(s.to_string());
                }
                b'\\' => break,
                _ => self.i += 1,
            }
        }
        // Slow path: decode escapes.
        let mut out = std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .to_string();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.b.get(self.i)?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8 after an escape: re-sync on char
                    // boundaries via the remaining slice.
                    let rest = std::str::from_utf8(&self.b[self.i - 1..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.i += ch.len_utf8() - 1;
                }
            }
        }
        None
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        let tok = std::str::from_utf8(&self.b[start..self.i]).ok()?;
        // Integer tokens (no '.', exponent or sign) stay exact as u64.
        if let Ok(v) = tok.parse::<u64>() {
            return Some(Json::Int(v));
        }
        // Everything else must parse as a *finite* float: no writer of
        // ours emits non-finite numbers (they render as null), and a
        // token like "1e999" silently rounding to infinity would poison
        // downstream arithmetic.
        tok.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Json::Float)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = Json::parse(r#"{"a":[1,2.5,null,"x"],"b":{"c":-3}}"#).expect("parses");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
        let a = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(a[0].as_u64(), Some(1));
        assert!(matches!(a[1], Json::Float(_)));
        assert_eq!(a[2], Json::Null);
        assert_eq!(a[3].as_str(), Some("x"));
        assert!(matches!(
            v.get("b").and_then(|b| b.get("c")),
            Some(Json::Float(_))
        ));
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = Json::parse(&format!("{{\"n\":{}}}", u64::MAX)).expect("parses");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(u64::MAX));
        assert!(v.get("n").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert_eq!(Json::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let original = "a\"b\\c\nd\te\rf\u{1}g µ";
        let encoded = format!("\"{}\"", escape(original));
        let parsed = Json::parse(&encoded).expect("parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn truncated_documents_are_rejected() {
        // Prefixes of a valid line, as left behind by a torn write.
        let full = r#"{"ts_ns":12,"kind":"span","name":"sweep.point","fields":{"total_ns":9}}"#;
        assert!(Json::parse(full).is_some());
        for cut in 1..full.len() {
            assert_eq!(
                Json::parse(&full[..cut]),
                None,
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn unicode_escapes_decode_and_surrogates_are_rejected() {
        // \u escapes decode to their scalar values, mixed freely with
        // literal multi-byte UTF-8 after the first escape.
        assert_eq!(
            Json::parse("\"caf\\u00e9\"").and_then(|v| v.as_str().map(String::from)),
            Some("caf\u{e9}".to_string())
        );
        assert_eq!(
            Json::parse("\"A\\u6f22\u{6c49}\"").and_then(|v| v.as_str().map(String::from)),
            Some("A\u{6f22}\u{6c49}".to_string())
        );
        // Surrogate code points (D800-DFFF) are not scalar values; lone
        // and paired surrogate escapes are rejected (the codec never
        // emits them -- non-BMP chars pass through as raw UTF-8, which
        // still parses).
        assert_eq!(Json::parse("\"\\ud800\""), None);
        assert_eq!(Json::parse("\"\\udfff\""), None);
        assert_eq!(Json::parse("\"\\ud83d\\ude00\""), None);
        assert_eq!(
            Json::parse("\"\u{1f600}\"").and_then(|v| v.as_str().map(String::from)),
            Some("\u{1f600}".to_string())
        );
        // Truncated and non-hex escapes fail cleanly too.
        assert_eq!(Json::parse("\"\\u00\""), None);
        assert_eq!(Json::parse("\"\\uzzzz\""), None);
    }

    #[test]
    fn huge_integers_overflow_to_float_not_garbage() {
        // u64::MAX parses exactly; one past it no longer fits and falls
        // through to the (lossy but finite) float path.
        let v = Json::parse("18446744073709551615").expect("u64::MAX parses");
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = Json::parse("18446744073709551616").expect("2^64 parses as float");
        assert_eq!(v.as_u64(), None);
        assert!(matches!(v, Json::Float(f) if f.is_finite()));
    }

    #[test]
    fn non_finite_number_tokens_are_rejected() {
        for bad in ["1e999", "-1e999", "1e+400", "nan", "inf", "-inf"] {
            assert_eq!(Json::parse(bad), None, "{bad:?} must not parse");
        }
        // The finite edge of the exponent range still parses.
        assert!(matches!(Json::parse("1e308"), Some(Json::Float(_))));
    }
}
