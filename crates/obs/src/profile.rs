//! Offline trace analysis: causal span-forest reconstruction and
//! deterministic profiling.
//!
//! A JSONL trace (see [`crate::trace`]) carries `begin`/`span` events with
//! `span`/`parent`/`thread` lineage fields and an optional closing
//! `counters` event. This module rebuilds the span forest from those
//! links and aggregates it three ways:
//!
//! * **per stage** ([`StageStats`]) — occurrence count, summed total and
//!   self time, and exact nearest-rank p50/p95/p99 over per-occurrence
//!   totals;
//! * **per folded call path** ([`StackStats`]) — `root;child;leaf` keys
//!   in the standard collapsed-stack format, rendered by
//!   [`Profile::to_folded`] for speedscope/inferno flamegraphs;
//! * **cache efficacy** ([`cache_efficacy`]) — L1/L2/L3 hit/miss/evict
//!   counters joined with the spans that price a miss, estimating the
//!   time each cache level saved.
//!
//! Everything aggregates over *names*, never span ids, threads or
//! absolute timestamps, and every map is ordered — so under
//! [`LogicalClock`](crate::clock::LogicalClock) the profile of a sweep is
//! a pure function of the code path: bit-identical across worker-thread
//! counts. That determinism is what makes [`diff`] trustworthy for
//! attributing a throughput change to specific stages.

use std::collections::BTreeMap;

use crate::json::{escape, Json};
use crate::trace::{FieldValue, TraceEvent};

/// Profile file format version (the `"version"` key in
/// [`Profile::to_json`]).
pub const PROFILE_VERSION: u64 = 1;

/// Parent chains longer than this are treated as broken (a corrupt trace
/// could otherwise loop forever).
const MAX_STACK_DEPTH: usize = 64;

/// Per-name aggregate over every closed span occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Closed occurrences.
    pub count: u64,
    /// Summed total durations (ns).
    pub total_ns: u64,
    /// Summed self times (ns).
    pub self_ns: u64,
    /// Exact nearest-rank median of per-occurrence totals (ns).
    pub p50_ns: u64,
    /// Exact nearest-rank 95th percentile (ns).
    pub p95_ns: u64,
    /// Exact nearest-rank 99th percentile (ns).
    pub p99_ns: u64,
}

/// Aggregate for one folded call path (`root;child;leaf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StackStats {
    /// Closed occurrences of exactly this path.
    pub count: u64,
    /// Summed total durations (ns).
    pub total_ns: u64,
    /// Summed self times (ns) — the flamegraph weight.
    pub self_ns: u64,
}

/// A reconstructed, order-deterministic profile of one trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    /// Parsed event lines of any kind.
    pub events: u64,
    /// Lines that failed to parse (e.g. a torn tail write).
    pub skipped_lines: u64,
    /// Closed spans whose parent chain dangled — the referenced parent
    /// never appeared in the trace (truncation) or the chain exceeded
    /// [`MAX_STACK_DEPTH`]. Their stack roots where the chain broke.
    pub orphans: u64,
    /// Per-name aggregates, name-ordered.
    pub stages: BTreeMap<String, StageStats>,
    /// Folded call paths, path-ordered.
    pub stacks: BTreeMap<String, StackStats>,
    /// The last `"counters"` event in the trace, if any.
    pub counters: BTreeMap<String, u64>,
}

fn field_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    match ev.get(key) {
        Some(FieldValue::U64(v)) => Some(*v),
        _ => None,
    }
}

/// Exact nearest-rank quantile over an ascending-sorted slice (0 when
/// empty).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0)
}

#[derive(Debug, Default)]
struct StageAcc {
    totals: Vec<u64>,
    total_ns: u64,
    self_ns: u64,
}

/// Streaming builder: feed trace lines (or parsed events), then
/// [`finish`](ProfileBuilder::finish) into a [`Profile`]. Span names are
/// interned so a million-event trace holds each name once.
#[derive(Debug, Default)]
pub struct ProfileBuilder {
    names: Vec<String>,
    name_ix: BTreeMap<String, u32>,
    /// span id → (name index, parent id), learned from `begin` and
    /// `span` events alike so an end event can resolve ancestors whose
    /// own end has not been seen yet.
    lineage: BTreeMap<u64, (u32, Option<u64>)>,
    stages: BTreeMap<u32, StageAcc>,
    stacks: BTreeMap<Vec<u32>, StackStats>,
    counters: BTreeMap<String, u64>,
    events: u64,
    skipped_lines: u64,
    orphans: u64,
}

impl ProfileBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&ix) = self.name_ix.get(name) {
            return ix;
        }
        let ix = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_ix.insert(name.to_string(), ix);
        ix
    }

    /// Feeds one raw JSONL line; blank lines are ignored, unparseable
    /// ones are counted in [`Profile::skipped_lines`].
    pub fn add_line(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match TraceEvent::parse(line) {
            Some(ev) => self.add_event(&ev),
            None => self.skipped_lines += 1,
        }
    }

    /// Feeds one parsed event.
    pub fn add_event(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match ev.kind.as_str() {
            "begin" => {
                if let Some(id) = field_u64(ev, "span") {
                    let nix = self.intern(&ev.name);
                    self.lineage.insert(id, (nix, field_u64(ev, "parent")));
                }
            }
            "span" => self.add_span(ev),
            "counters" => {
                // Last event wins: the registry emits its closing totals
                // when the sink is detached or the session finishes.
                self.counters = ev
                    .fields
                    .iter()
                    .filter_map(|(k, v)| match v {
                        FieldValue::U64(n) if k != "run" => Some((k.clone(), *n)),
                        _ => None,
                    })
                    .collect();
            }
            _ => {}
        }
    }

    fn add_span(&mut self, ev: &TraceEvent) {
        let Some(total_ns) = field_u64(ev, "total_ns") else {
            return;
        };
        let self_ns = field_u64(ev, "self_ns").unwrap_or(total_ns);
        let nix = self.intern(&ev.name);
        let parent = field_u64(ev, "parent");
        if let Some(id) = field_u64(ev, "span") {
            self.lineage.insert(id, (nix, parent));
        }
        let acc = self.stages.entry(nix).or_default();
        acc.totals.push(total_ns);
        acc.total_ns = acc.total_ns.saturating_add(total_ns);
        acc.self_ns = acc.self_ns.saturating_add(self_ns);
        // Walk the parent chain to the root (leaf-first, then reversed).
        let mut path = vec![nix];
        let mut cursor = parent;
        while let Some(p) = cursor {
            if path.len() > MAX_STACK_DEPTH {
                self.orphans += 1;
                break;
            }
            match self.lineage.get(&p) {
                Some(&(pn, pp)) => {
                    path.push(pn);
                    cursor = pp;
                }
                None => {
                    self.orphans += 1;
                    break;
                }
            }
        }
        path.reverse();
        let st = self.stacks.entry(path).or_default();
        st.count += 1;
        st.total_ns = st.total_ns.saturating_add(total_ns);
        st.self_ns = st.self_ns.saturating_add(self_ns);
    }

    /// Aggregates everything into the final [`Profile`].
    #[must_use]
    pub fn finish(self) -> Profile {
        let Self {
            names,
            stages: raw_stages,
            stacks: raw_stacks,
            counters,
            events,
            skipped_lines,
            orphans,
            ..
        } = self;
        let name_of = |ix: u32| names.get(ix as usize).cloned().unwrap_or_default();
        let mut stages = BTreeMap::new();
        for (nix, mut acc) in raw_stages {
            acc.totals.sort_unstable();
            stages.insert(
                name_of(nix),
                StageStats {
                    count: acc.totals.len() as u64,
                    total_ns: acc.total_ns,
                    self_ns: acc.self_ns,
                    p50_ns: nearest_rank(&acc.totals, 0.50),
                    p95_ns: nearest_rank(&acc.totals, 0.95),
                    p99_ns: nearest_rank(&acc.totals, 0.99),
                },
            );
        }
        let mut stacks: BTreeMap<String, StackStats> = BTreeMap::new();
        for (path, st) in raw_stacks {
            let key = path
                .iter()
                .map(|&ix| name_of(ix))
                .collect::<Vec<_>>()
                .join(";");
            let merged = stacks.entry(key).or_default();
            merged.count += st.count;
            merged.total_ns = merged.total_ns.saturating_add(st.total_ns);
            merged.self_ns = merged.self_ns.saturating_add(st.self_ns);
        }
        Profile {
            events,
            skipped_lines,
            orphans,
            stages,
            stacks,
            counters,
        }
    }
}

impl Profile {
    /// Builds a profile from the full text of a JSONL trace.
    #[must_use]
    pub fn from_trace(text: &str) -> Profile {
        let mut b = ProfileBuilder::new();
        for line in text.lines() {
            b.add_line(line);
        }
        b.finish()
    }

    /// Serialises the profile as one deterministic JSON document (the
    /// `.prof` format consumed by `cargo xtask trace diff`):
    ///
    /// ```json
    /// {"version":1,"events":9,"skipped_lines":0,"orphans":0,
    ///  "stages":{"sweep.point":{"count":4,"total_ns":9,"self_ns":3,
    ///            "p50_ns":2,"p95_ns":3,"p99_ns":3}},
    ///  "stacks":{"sweep.point;stage.simulate":{"count":4,"total_ns":6,"self_ns":6}},
    ///  "counters":{"cache.l1.hit":2}}
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":{PROFILE_VERSION},\"events\":{},\"skipped_lines\":{},\"orphans\":{},\
             \"stages\":{{",
            self.events, self.skipped_lines, self.orphans
        );
        for (i, (name, s)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\"p50_ns\":{},\
                 \"p95_ns\":{},\"p99_ns\":{}}}",
                escape(name),
                s.count,
                s.total_ns,
                s.self_ns,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns
            ));
        }
        out.push_str("},\"stacks\":{");
        for (i, (path, s)) in self.stacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                escape(path),
                s.count,
                s.total_ns,
                s.self_ns
            ));
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(k)));
        }
        out.push_str("}}");
        out
    }

    /// Parses a profile serialised by [`Profile::to_json`]; `None` on
    /// malformed input or an unknown format version.
    #[must_use]
    pub fn parse(text: &str) -> Option<Profile> {
        let v = Json::parse(text)?;
        if v.get("version")?.as_u64()? != PROFILE_VERSION {
            return None;
        }
        let mut stages = BTreeMap::new();
        for (name, s) in v.get("stages")?.as_obj()? {
            stages.insert(
                name.clone(),
                StageStats {
                    count: s.get("count")?.as_u64()?,
                    total_ns: s.get("total_ns")?.as_u64()?,
                    self_ns: s.get("self_ns")?.as_u64()?,
                    p50_ns: s.get("p50_ns")?.as_u64()?,
                    p95_ns: s.get("p95_ns")?.as_u64()?,
                    p99_ns: s.get("p99_ns")?.as_u64()?,
                },
            );
        }
        let mut stacks = BTreeMap::new();
        for (path, s) in v.get("stacks")?.as_obj()? {
            stacks.insert(
                path.clone(),
                StackStats {
                    count: s.get("count")?.as_u64()?,
                    total_ns: s.get("total_ns")?.as_u64()?,
                    self_ns: s.get("self_ns")?.as_u64()?,
                },
            );
        }
        let mut counters = BTreeMap::new();
        for (k, c) in v.get("counters")?.as_obj()? {
            counters.insert(k.clone(), c.as_u64()?);
        }
        Some(Profile {
            events: v.get("events")?.as_u64()?,
            skipped_lines: v.get("skipped_lines")?.as_u64()?,
            orphans: v.get("orphans")?.as_u64()?,
            stages,
            stacks,
            counters,
        })
    }

    /// Renders the folded-stack flamegraph text: one
    /// `root;child;leaf weight` line per call path, weighted by summed
    /// self time in nanoseconds. The format is consumed directly by
    /// inferno (`inferno-flamegraph`) and speedscope.
    #[must_use]
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (path, s) in &self.stacks {
            out.push_str(&format!("{path} {}\n", s.self_ns));
        }
        out
    }
}

/// One cache level's observed traffic joined with the span durations
/// that price what its hits avoided.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevelReport {
    /// Level identifier, e.g. `"l3.analog"`.
    pub level: &'static str,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Capacity evictions (0 for unbounded levels).
    pub evictions: u64,
    /// Estimated cost one miss pays (ns), from the level's rebuild
    /// span(s); `None` when the trace carries no span to price it with.
    pub est_miss_cost_ns: Option<f64>,
    /// `hits x est_miss_cost_ns` — estimated time the level saved (ns).
    pub est_saved_ns: Option<f64>,
}

fn level(
    out: &mut Vec<CacheLevelReport>,
    name: &'static str,
    hits: u64,
    misses: u64,
    evictions: u64,
    est_miss_cost_ns: Option<f64>,
) {
    out.push(CacheLevelReport {
        level: name,
        hits,
        misses,
        evictions,
        est_miss_cost_ns,
        est_saved_ns: est_miss_cost_ns.map(|c| c * hits as f64),
    });
}

/// Joins the trace's cache counters with span durations into per-level
/// time-saved estimates. Levels with zero traffic are omitted.
///
/// Pricing rules (all estimates, not measurements):
///
/// * **L1** (`cache.l1.*`, whole-point result cache) — a hit skips one
///   full evaluation, priced as
///   `(Σ stage.simulate + Σ stage.detect) / sweep.evaluations`.
/// * **L2 dict** (`memo.dict.*`) — a hit skips the Gram/AᵀA dictionary
///   build, priced as the mean `recon.gram` span.
/// * **L3 analog / reference / sampled** (`memo.<class>.*`) — a hit
///   skips the class rebuild, priced by the mean `sim.analog.build`,
///   `sim.reference.build` or `sim.sample.build` span.
/// * **L3 acquired** — a hit skips the analog, encode and reconstruct
///   stages for one record, priced as the sum of their means.
/// * Levels without a dedicated rebuild span (l2.srbm, l2.basis,
///   l2.detector, l3.ct) report counters only (`est_* = None`).
#[must_use]
pub fn cache_efficacy(p: &Profile) -> Vec<CacheLevelReport> {
    let c = |name: &str| p.counters.get(name).copied().unwrap_or(0);
    let mean = |name: &str| {
        p.stages
            .get(name)
            .filter(|s| s.count > 0)
            .map(|s| s.total_ns as f64 / s.count as f64)
    };
    let mut out = Vec::new();

    let evals = c("sweep.evaluations");
    let eval_work = p.stages.get("stage.simulate").map_or(0, |s| s.total_ns)
        + p.stages.get("stage.detect").map_or(0, |s| s.total_ns);
    let l1_cost = (evals > 0 && eval_work > 0).then(|| eval_work as f64 / evals as f64);
    level(
        &mut out,
        "l1.point",
        c("cache.l1.hit"),
        c("cache.l1.miss"),
        0,
        l1_cost,
    );

    level(
        &mut out,
        "l2.dict",
        c("memo.dict.hit"),
        c("memo.dict.miss"),
        0,
        mean("recon.gram"),
    );
    level(
        &mut out,
        "l2.srbm",
        c("memo.srbm.hit"),
        c("memo.srbm.miss"),
        0,
        None,
    );
    level(
        &mut out,
        "l2.basis",
        c("memo.basis.hit"),
        c("memo.basis.miss"),
        0,
        None,
    );
    level(
        &mut out,
        "l2.detector",
        c("memo.detector.hit"),
        c("memo.detector.miss"),
        0,
        None,
    );

    let l3 = |name: &str, field: &str| c(&format!("memo.{name}.{field}"));
    level(
        &mut out,
        "l3.ct",
        l3("ct", "hit"),
        l3("ct", "miss"),
        l3("ct", "evict"),
        None,
    );
    level(
        &mut out,
        "l3.analog",
        l3("analog", "hit"),
        l3("analog", "miss"),
        l3("analog", "evict"),
        mean("sim.analog.build"),
    );
    level(
        &mut out,
        "l3.reference",
        l3("reference", "hit"),
        l3("reference", "miss"),
        l3("reference", "evict"),
        mean("sim.reference.build"),
    );
    level(
        &mut out,
        "l3.sampled",
        l3("sampled", "hit"),
        l3("sampled", "miss"),
        l3("sampled", "evict"),
        mean("sim.sample.build"),
    );
    let acquired_parts: Vec<f64> = ["sim.analog", "sim.encode", "stage.reconstruct"]
        .iter()
        .filter_map(|s| mean(s))
        .collect();
    let acquired_cost = (!acquired_parts.is_empty()).then(|| acquired_parts.iter().sum());
    level(
        &mut out,
        "l3.acquired",
        l3("acquired", "hit"),
        l3("acquired", "miss"),
        l3("acquired", "evict"),
        acquired_cost,
    );

    out.retain(|r| r.hits + r.misses + r.evictions > 0);
    out
}

/// Per-stage share of a throughput delta between two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDelta {
    /// Span name.
    pub name: String,
    /// Self time per sweep point in the old profile (ns).
    pub old_self_pp_ns: f64,
    /// Self time per sweep point in the new profile (ns).
    pub new_self_pp_ns: f64,
    /// `new - old` (ns per point; positive means the stage got slower).
    pub delta_pp_ns: f64,
}

/// Attribution of a per-point cost change to individual stages.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// `sweep.point` occurrences in the old profile.
    pub old_points: u64,
    /// `sweep.point` occurrences in the new profile.
    pub new_points: u64,
    /// Mean wall time of one `sweep.point` in the old profile (ns).
    pub old_point_ns: f64,
    /// Mean wall time of one `sweep.point` in the new profile (ns).
    pub new_point_ns: f64,
    /// Per-stage deltas, sorted by `|delta_pp_ns|` descending (name
    /// breaks ties).
    pub stages: Vec<StageDelta>,
}

impl ProfileDiff {
    /// `true` when the new per-point cost exceeds the old by more than
    /// `tolerance` (fractional: 0.3 = 30% slower).
    #[must_use]
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.old_point_ns > 0.0 && self.new_point_ns > self.old_point_ns * (1.0 + tolerance)
    }
}

/// Compares two profiles, normalising every stage's self time by its
/// profile's `sweep.point` count so traces of different sweep sizes (or
/// sampling strides) are comparable per point.
#[must_use]
pub fn diff(old: &Profile, new: &Profile) -> ProfileDiff {
    let points = |p: &Profile| p.stages.get("sweep.point").map_or(0, |s| s.count);
    let point_mean = |p: &Profile| {
        p.stages
            .get("sweep.point")
            .filter(|s| s.count > 0)
            .map_or(0.0, |s| s.total_ns as f64 / s.count as f64)
    };
    let (old_points, new_points) = (points(old), points(new));
    let (old_div, new_div) = (old_points.max(1) as f64, new_points.max(1) as f64);
    let mut names: Vec<&String> = old.stages.keys().collect();
    names.extend(new.stages.keys());
    names.sort_unstable();
    names.dedup();
    let mut stages: Vec<StageDelta> = names
        .into_iter()
        .map(|name| {
            let old_pp = old.stages.get(name).map_or(0.0, |s| s.self_ns as f64) / old_div;
            let new_pp = new.stages.get(name).map_or(0.0, |s| s.self_ns as f64) / new_div;
            StageDelta {
                name: name.clone(),
                old_self_pp_ns: old_pp,
                new_self_pp_ns: new_pp,
                delta_pp_ns: new_pp - old_pp,
            }
        })
        .collect();
    stages.sort_by(|a, b| {
        b.delta_pp_ns
            .abs()
            .total_cmp(&a.delta_pp_ns.abs())
            .then_with(|| a.name.cmp(&b.name))
    });
    ProfileDiff {
        old_points,
        new_points,
        old_point_ns: point_mean(old),
        new_point_ns: point_mean(new),
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A three-deep tree on thread 0 plus a sibling root, with ids laid
    /// out like the registry does (`thread << 32 | seq`).
    fn sample_trace() -> String {
        let lines = [
            r#"{"ts_ns":1,"kind":"begin","name":"sweep.point","fields":{"span":1,"thread":0}}"#,
            r#"{"ts_ns":2,"kind":"begin","name":"stage.simulate","fields":{"span":2,"parent":1,"thread":0}}"#,
            r#"{"ts_ns":3,"kind":"begin","name":"sim.analog","fields":{"span":3,"parent":2,"thread":0}}"#,
            r#"{"ts_ns":5,"kind":"span","name":"sim.analog","fields":{"span":3,"parent":2,"thread":0,"total_ns":2,"self_ns":2}}"#,
            r#"{"ts_ns":7,"kind":"span","name":"stage.simulate","fields":{"span":2,"parent":1,"thread":0,"total_ns":5,"self_ns":3}}"#,
            r#"{"ts_ns":9,"kind":"span","name":"sweep.point","fields":{"span":1,"thread":0,"total_ns":8,"self_ns":3}}"#,
            r#"{"ts_ns":10,"kind":"begin","name":"sweep.point","fields":{"span":4294967297,"thread":1}}"#,
            r#"{"ts_ns":14,"kind":"span","name":"sweep.point","fields":{"span":4294967297,"thread":1,"total_ns":4,"self_ns":4}}"#,
            r#"{"ts_ns":15,"kind":"counters","name":"registry.counters","fields":{"cache.l1.hit":3,"cache.l1.miss":2,"sweep.evaluations":2}}"#,
        ];
        let mut s = lines.join("\n");
        s.push('\n');
        s
    }

    #[test]
    fn reconstructs_the_parent_linked_forest() {
        let p = Profile::from_trace(&sample_trace());
        assert_eq!(p.events, 9);
        assert_eq!(p.skipped_lines, 0);
        assert_eq!(p.orphans, 0);
        let point = p.stages.get("sweep.point").expect("sweep.point");
        assert_eq!(point.count, 2);
        assert_eq!(point.total_ns, 12);
        assert_eq!(point.self_ns, 7);
        // Quantiles over sorted totals [4, 8]: p50 -> 4, p95/p99 -> 8.
        assert_eq!(point.p50_ns, 4);
        assert_eq!(point.p95_ns, 8);
        assert_eq!(point.p99_ns, 8);
        // Stacks are keyed by the full name path.
        assert_eq!(
            p.stacks
                .get("sweep.point;stage.simulate;sim.analog")
                .map(|s| (s.count, s.total_ns, s.self_ns)),
            Some((1, 2, 2))
        );
        assert_eq!(p.stacks.get("sweep.point").map(|s| s.count), Some(2));
        assert_eq!(p.counters.get("cache.l1.hit"), Some(&3));
    }

    #[test]
    fn dangling_parents_root_the_stack_and_count_as_orphans() {
        let trace = concat!(
            "{\"ts_ns\":1,\"kind\":\"span\",\"name\":\"leaf\",",
            "\"fields\":{\"span\":7,\"parent\":99,\"thread\":0,\"total_ns\":3,\"self_ns\":3}}\n",
            "this line is torn{\n",
        );
        let p = Profile::from_trace(trace);
        assert_eq!(p.orphans, 1);
        assert_eq!(p.skipped_lines, 1);
        assert_eq!(p.stacks.get("leaf").map(|s| s.count), Some(1));
    }

    #[test]
    fn events_without_lineage_still_profile_flat() {
        // Pre-lineage traces (no span/parent ids) degrade to per-name
        // stats with every span a root.
        let trace = concat!(
            "{\"ts_ns\":5,\"kind\":\"span\",\"name\":\"stage.power\",",
            "\"fields\":{\"total_ns\":5,\"self_ns\":5}}\n",
        );
        let p = Profile::from_trace(trace);
        assert_eq!(p.orphans, 0);
        assert_eq!(p.stages.get("stage.power").map(|s| s.count), Some(1));
        assert_eq!(p.stacks.get("stage.power").map(|s| s.count), Some(1));
    }

    #[test]
    fn profile_json_round_trips() {
        let p = Profile::from_trace(&sample_trace());
        let json = p.to_json();
        let back = Profile::parse(&json).expect("profile JSON parses");
        assert_eq!(back, p);
        assert_eq!(back.to_json(), json, "re-render is byte-identical");
        assert_eq!(Profile::parse("{\"version\":999}"), None);
        assert_eq!(Profile::parse("not json"), None);
    }

    #[test]
    fn folded_output_is_sorted_and_weighted_by_self_time() {
        let p = Profile::from_trace(&sample_trace());
        let folded = p.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            [
                "sweep.point 7",
                "sweep.point;stage.simulate 3",
                "sweep.point;stage.simulate;sim.analog 2",
            ]
        );
    }

    #[test]
    fn cache_efficacy_joins_counters_with_spans() {
        let p = Profile::from_trace(&sample_trace());
        let report = cache_efficacy(&p);
        // Only L1 has traffic in the sample trace.
        assert_eq!(report.len(), 1);
        let l1 = &report[0];
        assert_eq!(l1.level, "l1.point");
        assert_eq!((l1.hits, l1.misses), (3, 2));
        // stage.simulate total 5 over 2 evaluations -> 2.5 ns per miss.
        let cost = l1.est_miss_cost_ns.expect("priced");
        assert!((cost - 2.5).abs() < 1e-9);
        let saved = l1.est_saved_ns.expect("saved");
        assert!((saved - 7.5).abs() < 1e-9);
    }

    #[test]
    fn diff_attributes_per_point_regressions_to_stages() {
        let old = Profile::from_trace(&sample_trace());
        // New trace: same shape but sim.analog got 10x slower.
        let new_trace = sample_trace()
            .replace(
                "\"total_ns\":2,\"self_ns\":2",
                "\"total_ns\":20,\"self_ns\":20",
            )
            .replace(
                "\"total_ns\":5,\"self_ns\":3",
                "\"total_ns\":23,\"self_ns\":3",
            )
            .replace(
                "\"total_ns\":8,\"self_ns\":3",
                "\"total_ns\":26,\"self_ns\":3",
            );
        let new = Profile::from_trace(&new_trace);
        let d = diff(&old, &new);
        assert_eq!(d.old_points, 2);
        assert_eq!(d.new_points, 2);
        assert!(d.new_point_ns > d.old_point_ns);
        let top = d.stages.first().expect("has stages");
        assert_eq!(top.name, "sim.analog", "regressed stage ranks first");
        assert!((top.delta_pp_ns - 9.0).abs() < 1e-9, "{}", top.delta_pp_ns);
        assert!(d.regressed(0.5), "(6->15 mean) is a >50% regression");
        assert!(
            !diff(&old, &old).regressed(0.0),
            "self-diff never regresses"
        );
    }

    #[test]
    fn nearest_rank_is_exact() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 0.50), 50);
        assert_eq!(nearest_rank(&v, 0.95), 95);
        assert_eq!(nearest_rank(&v, 0.99), 99);
        assert_eq!(nearest_rank(&v, 1.0), 100);
        assert_eq!(nearest_rank(&v, 0.0), 1);
        assert_eq!(nearest_rank(&[], 0.5), 0);
    }
}
