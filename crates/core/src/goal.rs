//! Goal functions (paper Step 5).
//!
//! A goal function turns the simulated front-end outputs of a design point
//! into a single quality number. The paper demonstrates that the *choice* of
//! goal function changes the optimal architecture (Fig. 7a vs 7b), so the
//! sweep engine is generic over this trait.

use crate::detector::SeizureDetector;
use crate::simulate::SimOutput;
use efficsense_dsp::metrics::{sndr_db, snr_fit_db};

/// Scores the outputs of one design point over the evaluation records.
pub trait GoalFunction {
    /// Human-readable metric name (used in reports).
    fn name(&self) -> &str;

    /// Aggregated metric over all `(output, label)` pairs; higher is better.
    fn evaluate(&self, outputs: &[(SimOutput, usize)]) -> f64;
}

/// Mean reference-based SNR in dB (the Fig. 7a metric).
///
/// Uses the gain/offset-fitted SNR so the score reflects waveform fidelity
/// rather than absolute level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnrGoal;

impl GoalFunction for SnrGoal {
    fn name(&self) -> &str {
        "snr_db"
    }

    fn evaluate(&self, outputs: &[(SimOutput, usize)]) -> f64 {
        assert!(!outputs.is_empty(), "cannot score an empty evaluation set");
        let mut acc = 0.0;
        for (o, _) in outputs {
            let snr = snr_fit_db(&o.reference, &o.input_referred);
            // Cap perfect reconstructions so one ∞ doesn't wreck the mean.
            acc += snr.min(120.0);
        }
        acc / outputs.len() as f64
    }
}

/// Mean single-tone SNDR in dB — the Fig. 4 metric (requires sine inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SndrGoal {
    /// The test-tone frequency (Hz).
    pub tone_hz: f64,
}

impl GoalFunction for SndrGoal {
    fn name(&self) -> &str {
        "sndr_db"
    }

    fn evaluate(&self, outputs: &[(SimOutput, usize)]) -> f64 {
        assert!(!outputs.is_empty(), "cannot score an empty evaluation set");
        let mut acc = 0.0;
        for (o, _) in outputs {
            acc += sndr_db(&o.input_referred, o.fs_out, self.tone_hz).min(120.0);
        }
        acc / outputs.len() as f64
    }
}

/// Negative mean PRD (percentage root-mean-square difference) — the
/// standard compressed-EEG reconstruction metric, negated so that higher is
/// better like every other goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrdGoal;

impl GoalFunction for PrdGoal {
    fn name(&self) -> &str {
        "neg_prd_percent"
    }

    fn evaluate(&self, outputs: &[(SimOutput, usize)]) -> f64 {
        assert!(!outputs.is_empty(), "cannot score an empty evaluation set");
        let mut acc = 0.0;
        for (o, _) in outputs {
            acc += efficsense_dsp::metrics::prd_percent(&o.reference, &o.input_referred).min(1e3);
        }
        -(acc / outputs.len() as f64)
    }
}

/// Seizure detection accuracy (the Fig. 7b metric).
#[derive(Debug, Clone)]
pub struct DetectionGoal {
    detector: SeizureDetector,
}

impl DetectionGoal {
    /// Wraps a trained detector as a goal function.
    pub fn new(detector: SeizureDetector) -> Self {
        Self { detector }
    }

    /// Access to the wrapped detector.
    pub fn detector(&self) -> &SeizureDetector {
        &self.detector
    }
}

impl GoalFunction for DetectionGoal {
    fn name(&self) -> &str {
        "detection_accuracy"
    }

    fn evaluate(&self, outputs: &[(SimOutput, usize)]) -> f64 {
        assert!(!outputs.is_empty(), "cannot score an empty evaluation set");
        let pairs: Vec<(Vec<f64>, usize)> = outputs
            .iter()
            .map(|(o, label)| (o.input_referred.clone(), *label))
            .collect();
        let fs = outputs[0].0.fs_out;
        // Separates inference proper from the pair-assembly above in the
        // per-stage profile.
        let _infer_span = efficsense_obs::span!("detect.infer");
        self.detector.accuracy(&pairs, fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_power::PowerBreakdown;

    fn fake_output(reference: Vec<f64>, signal: Vec<f64>) -> SimOutput {
        SimOutput {
            input_referred: signal,
            reference,
            fs_out: 537.6,
            power: PowerBreakdown::new(),
            area_units: 0.0,
            words: 0,
            link: None,
        }
    }

    #[test]
    fn snr_goal_perfect_match_caps_at_120() {
        let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.1).sin()).collect();
        let out = fake_output(x.clone(), x);
        assert_eq!(SnrGoal.evaluate(&[(out, 0)]), 120.0);
        assert_eq!(SnrGoal.name(), "snr_db");
    }

    #[test]
    fn snr_goal_orders_by_error() {
        let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.1).sin()).collect();
        let slightly: Vec<f64> = x.iter().map(|v| v + 0.001).collect();
        let badly: Vec<f64> = x.iter().map(|v| v + 0.3).collect();
        // Add a non-constant error so the offset fit can't absorb it all.
        let slightly: Vec<f64> = slightly
            .iter()
            .enumerate()
            .map(|(i, v)| v + 1e-3 * (i as f64 * 0.7).sin())
            .collect();
        let badly: Vec<f64> = badly
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.2 * (i as f64 * 0.7).sin())
            .collect();
        let good = SnrGoal.evaluate(&[(fake_output(x.clone(), slightly), 0)]);
        let bad = SnrGoal.evaluate(&[(fake_output(x, badly), 0)]);
        assert!(good > bad + 20.0, "good {good} vs bad {bad}");
    }

    #[test]
    fn sndr_goal_scores_clean_tone_high() {
        let fs = 537.6;
        let tone = efficsense_dsp::spectrum::coherent_frequency(64.0, fs, 4096);
        let x = efficsense_dsp::spectrum::sine(4096, fs, tone, 1.0, 0.0);
        let goal = SndrGoal { tone_hz: tone };
        let v = goal.evaluate(&[(fake_output(x.clone(), x), 0)]);
        assert!(v > 100.0, "clean tone SNDR {v}");
        assert_eq!(goal.name(), "sndr_db");
    }

    #[test]
    fn prd_goal_orders_like_snr() {
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        let close: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.01 * (i as f64).cos())
            .collect();
        let far: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.3 * (i as f64).cos())
            .collect();
        let g_close = PrdGoal.evaluate(&[(fake_output(x.clone(), close), 0)]);
        let g_far = PrdGoal.evaluate(&[(fake_output(x, far), 0)]);
        assert!(g_close > g_far, "lower PRD must score higher");
        assert!(g_close <= 0.0, "metric is negated PRD");
        assert_eq!(PrdGoal.name(), "neg_prd_percent");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn snr_goal_rejects_empty() {
        let _ = SnrGoal.evaluate(&[]);
    }
}
