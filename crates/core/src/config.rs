//! System architecture description (the paper's "Step 1").

use efficsense_blocks::cs_frontend::EncoderImperfections;
use efficsense_cs::basis::Basis;
use efficsense_power::{DesignParams, TechnologyParams};

/// The two system architectures compared by the paper (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Classical chain: LNA → S/H → SAR ADC → transmitter.
    Baseline,
    /// Passive charge-sharing CS chain: LNA → CS encoder → SAR ADC → TX.
    CompressiveSensing,
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::Baseline => f.write_str("baseline"),
            Architecture::CompressiveSensing => f.write_str("cs"),
        }
    }
}

/// LNA design variables.
#[derive(Debug, Clone, PartialEq)]
pub struct LnaConfig {
    /// Closed-loop gain.
    pub gain: f64,
    /// Input-referred noise floor (V rms over the LNA bandwidth) — the
    /// paper's 1–20 µV sweep axis.
    pub noise_floor_vrms: f64,
    /// Third-order nonlinearity coefficient (0 = linear).
    pub k3: f64,
}

impl Default for LnaConfig {
    fn default() -> Self {
        Self {
            gain: 4000.0,
            noise_floor_vrms: 3e-6,
            k3: 0.01,
        }
    }
}

/// SAR ADC design variables.
#[derive(Debug, Clone, PartialEq)]
pub struct AdcConfig {
    /// DAC unit capacitor (F).
    pub c_u_f: f64,
    /// Comparator input-referred noise (V rms per decision).
    pub comparator_noise_v: f64,
    /// Comparator offset (V).
    pub comparator_offset_v: f64,
}

impl Default for AdcConfig {
    fn default() -> Self {
        Self {
            c_u_f: 1e-15,
            comparator_noise_v: 100e-6,
            comparator_offset_v: 0.0,
        }
    }
}

/// Compressive-sensing front-end design variables.
#[derive(Debug, Clone, PartialEq)]
pub struct CsConfig {
    /// Measurements per frame `M` (Table III: 75 / 150 / 192).
    pub m: usize,
    /// Frame length `N_Φ` (Table III: 384).
    pub n_phi: usize,
    /// Ones per sensing-matrix column (s-SRBM `s`).
    pub s: usize,
    /// Sample capacitor (F).
    pub c_sample_f: f64,
    /// Hold capacitor (F).
    pub c_hold_f: f64,
    /// Sparsifying basis used by the decoder.
    pub basis: Basis,
    /// OMP sparsity budget per frame.
    pub omp_sparsity: usize,
    /// Which encoder imperfections to simulate.
    pub imperfections: EncoderImperfections,
}

impl Default for CsConfig {
    fn default() -> Self {
        Self {
            m: 150,
            n_phi: 384,
            s: 2,
            c_sample_f: 0.1e-12,
            c_hold_f: 0.5e-12,
            basis: Basis::Dct,
            omp_sparsity: 48,
            imperfections: EncoderImperfections::realistic(),
        }
    }
}

/// Complete description of one candidate system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Shared Table III design parameters (rates, voltages, resolution).
    pub design: DesignParams,
    /// Extracted technology parameters.
    pub tech: TechnologyParams,
    /// LNA variables.
    pub lna: LnaConfig,
    /// ADC variables.
    pub adc: AdcConfig,
    /// CS front-end variables; `None` selects the baseline architecture.
    pub cs: Option<CsConfig>,
    /// Continuous-time proxy oversampling relative to `f_sample`.
    pub ct_oversample: f64,
    /// Master noise/mismatch seed.
    pub seed: u64,
}

impl SystemConfig {
    /// Paper-default baseline system at the given resolution.
    pub fn baseline(n_bits: u32) -> Self {
        Self {
            design: DesignParams::paper_defaults(n_bits),
            tech: TechnologyParams::gpdk045(),
            lna: LnaConfig::default(),
            adc: AdcConfig::default(),
            cs: None,
            ct_oversample: 8.0,
            seed: 0xEFF1,
        }
    }

    /// Paper-default compressive-sensing system at the given resolution.
    pub fn compressive(n_bits: u32, cs: CsConfig) -> Self {
        Self {
            cs: Some(cs),
            ..Self::baseline(n_bits)
        }
    }

    /// Which architecture this config describes.
    pub fn architecture(&self) -> Architecture {
        if self.cs.is_some() {
            Architecture::CompressiveSensing
        } else {
            Architecture::Baseline
        }
    }

    /// Continuous-time proxy rate (Hz).
    pub fn f_ct_hz(&self) -> f64 {
        self.ct_oversample * self.design.f_sample_hz()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self) -> Result<(), String> {
        self.design.validate()?;
        if self.lna.gain <= 0.0 {
            return Err("LNA gain must be positive".into());
        }
        if self.lna.noise_floor_vrms <= 0.0 {
            return Err("LNA noise floor must be positive".into());
        }
        if self.adc.c_u_f < self.tech.c_u_min_f {
            return Err(format!(
                "DAC unit cap {} below technology minimum {}",
                self.adc.c_u_f, self.tech.c_u_min_f
            ));
        }
        if self.ct_oversample < 2.0 {
            return Err("continuous-time proxy must oversample by at least 2".into());
        }
        if let Some(cs) = &self.cs {
            if cs.m == 0 || cs.m > cs.n_phi {
                return Err(format!(
                    "need 0 < M <= N_Φ, got M={} N_Φ={}",
                    cs.m, cs.n_phi
                ));
            }
            if cs.s == 0 || cs.s > cs.m {
                return Err(format!("need 0 < s <= M, got s={} M={}", cs.s, cs.m));
            }
            if !(cs.c_sample_f > 0.0 && cs.c_hold_f > 0.0) {
                return Err("CS capacitors must be positive".into());
            }
            if cs.omp_sparsity == 0 || cs.omp_sparsity > cs.m {
                return Err(format!(
                    "OMP sparsity must be in 1..=M, got {} (M={})",
                    cs.omp_sparsity, cs.m
                ));
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_detection() {
        assert_eq!(
            SystemConfig::baseline(8).architecture(),
            Architecture::Baseline
        );
        let cs = SystemConfig::compressive(8, CsConfig::default());
        assert_eq!(cs.architecture(), Architecture::CompressiveSensing);
        assert_eq!(Architecture::Baseline.to_string(), "baseline");
        assert_eq!(Architecture::CompressiveSensing.to_string(), "cs");
    }

    #[test]
    fn defaults_validate() {
        SystemConfig::baseline(6)
            .validate()
            .expect("baseline valid");
        SystemConfig::baseline(8)
            .validate()
            .expect("baseline valid");
        SystemConfig::compressive(8, CsConfig::default())
            .validate()
            .expect("cs valid");
    }

    #[test]
    fn f_ct_is_oversampled() {
        let c = SystemConfig::baseline(8);
        assert!((c.f_ct_hz() - 8.0 * 537.6).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_cs() {
        let mut cfg = SystemConfig::compressive(
            8,
            CsConfig {
                m: 500,
                ..Default::default()
            },
        );
        assert!(cfg.validate().unwrap_err().contains("M <= N_Φ"));
        cfg = SystemConfig::compressive(
            8,
            CsConfig {
                s: 0,
                ..Default::default()
            },
        );
        assert!(cfg.validate().is_err());
        cfg = SystemConfig::compressive(
            8,
            CsConfig {
                omp_sparsity: 0,
                ..Default::default()
            },
        );
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_lna() {
        let mut cfg = SystemConfig::baseline(8);
        cfg.lna.noise_floor_vrms = 0.0;
        assert!(cfg.validate().is_err());
    }
}
