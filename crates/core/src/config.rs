//! System architecture description (the paper's "Step 1").

use efficsense_blocks::cs_frontend::EncoderImperfections;
use efficsense_cs::basis::Basis;
use efficsense_power::{DesignParams, TechnologyParams};

/// A structured [`SystemConfig`] validation failure.
///
/// Each variant names the violated constraint and carries the offending
/// values, so sweep quarantine records can report *why* a design point is
/// outside the feasible region instead of a flattened string.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The shared Table III design parameters failed their own validation.
    Design(String),
    /// LNA gain must be positive.
    NonPositiveLnaGain {
        /// The offending gain.
        gain: f64,
    },
    /// LNA input-referred noise floor must be positive.
    NonPositiveLnaNoise {
        /// The offending noise floor (V rms).
        noise_floor_vrms: f64,
    },
    /// DAC unit capacitor below the technology minimum.
    UnitCapBelowMinimum {
        /// The requested unit capacitor (F).
        c_u_f: f64,
        /// The technology minimum (F).
        c_u_min_f: f64,
    },
    /// Continuous-time proxy must oversample `f_sample` by at least 2.
    InsufficientOversampling {
        /// The offending oversampling ratio.
        ct_oversample: f64,
    },
    /// Measurement count must satisfy `0 < M <= N_Φ`.
    BadMeasurementCount {
        /// Measurements per frame.
        m: usize,
        /// Frame length.
        n_phi: usize,
    },
    /// Schedule sparsity must satisfy `0 < s <= M`.
    BadScheduleSparsity {
        /// Ones per sensing-matrix column.
        s: usize,
        /// Measurements per frame.
        m: usize,
    },
    /// CS sample/hold capacitors must be positive.
    NonPositiveCsCapacitor {
        /// The requested sample capacitor (F).
        c_sample_f: f64,
        /// The requested hold capacitor (F).
        c_hold_f: f64,
    },
    /// OMP sparsity budget must be in `1..=M`.
    BadOmpSparsity {
        /// The requested sparsity budget.
        omp_sparsity: usize,
        /// Measurements per frame.
        m: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Design(msg) => f.write_str(msg),
            ConfigError::NonPositiveLnaGain { gain } => {
                write!(f, "LNA gain must be positive, got {gain}")
            }
            ConfigError::NonPositiveLnaNoise { noise_floor_vrms } => {
                write!(
                    f,
                    "LNA noise floor must be positive, got {noise_floor_vrms}"
                )
            }
            ConfigError::UnitCapBelowMinimum { c_u_f, c_u_min_f } => {
                write!(
                    f,
                    "DAC unit cap {c_u_f} below technology minimum {c_u_min_f}"
                )
            }
            ConfigError::InsufficientOversampling { ct_oversample } => {
                write!(
                    f,
                    "continuous-time proxy must oversample by at least 2, got {ct_oversample}"
                )
            }
            ConfigError::BadMeasurementCount { m, n_phi } => {
                write!(f, "need 0 < M <= N_Φ, got M={m} N_Φ={n_phi}")
            }
            ConfigError::BadScheduleSparsity { s, m } => {
                write!(f, "need 0 < s <= M, got s={s} M={m}")
            }
            ConfigError::NonPositiveCsCapacitor {
                c_sample_f,
                c_hold_f,
            } => {
                write!(
                    f,
                    "CS capacitors must be positive, got C_sample={c_sample_f} C_hold={c_hold_f}"
                )
            }
            ConfigError::BadOmpSparsity { omp_sparsity, m } => {
                write!(
                    f,
                    "OMP sparsity must be in 1..=M, got {omp_sparsity} (M={m})"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The two system architectures compared by the paper (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Classical chain: LNA → S/H → SAR ADC → transmitter.
    Baseline,
    /// Passive charge-sharing CS chain: LNA → CS encoder → SAR ADC → TX.
    CompressiveSensing,
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::Baseline => f.write_str("baseline"),
            Architecture::CompressiveSensing => f.write_str("cs"),
        }
    }
}

/// LNA design variables.
#[derive(Debug, Clone, PartialEq)]
pub struct LnaConfig {
    /// Closed-loop gain.
    pub gain: f64,
    /// Input-referred noise floor (V rms over the LNA bandwidth) — the
    /// paper's 1–20 µV sweep axis.
    pub noise_floor_vrms: f64,
    /// Third-order nonlinearity coefficient (0 = linear).
    pub k3: f64,
}

impl Default for LnaConfig {
    fn default() -> Self {
        Self {
            gain: 4000.0,
            noise_floor_vrms: 3e-6,
            k3: 0.01,
        }
    }
}

/// SAR ADC design variables.
#[derive(Debug, Clone, PartialEq)]
pub struct AdcConfig {
    /// DAC unit capacitor (F).
    pub c_u_f: f64,
    /// Comparator input-referred noise (V rms per decision).
    pub comparator_noise_v: f64,
    /// Comparator offset (V).
    pub comparator_offset_v: f64,
}

impl Default for AdcConfig {
    fn default() -> Self {
        Self {
            c_u_f: 1e-15,
            comparator_noise_v: 100e-6,
            comparator_offset_v: 0.0,
        }
    }
}

/// Compressive-sensing front-end design variables.
#[derive(Debug, Clone, PartialEq)]
pub struct CsConfig {
    /// Measurements per frame `M` (Table III: 75 / 150 / 192).
    pub m: usize,
    /// Frame length `N_Φ` (Table III: 384).
    pub n_phi: usize,
    /// Ones per sensing-matrix column (s-SRBM `s`).
    pub s: usize,
    /// Sample capacitor (F).
    pub c_sample_f: f64,
    /// Hold capacitor (F).
    pub c_hold_f: f64,
    /// Sparsifying basis used by the decoder.
    pub basis: Basis,
    /// OMP sparsity budget per frame.
    pub omp_sparsity: usize,
    /// Which encoder imperfections to simulate.
    pub imperfections: EncoderImperfections,
}

impl Default for CsConfig {
    fn default() -> Self {
        Self {
            m: 150,
            n_phi: 384,
            s: 2,
            c_sample_f: 0.1e-12,
            c_hold_f: 0.5e-12,
            basis: Basis::Dct,
            omp_sparsity: 48,
            imperfections: EncoderImperfections::realistic(),
        }
    }
}

/// Complete description of one candidate system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Shared Table III design parameters (rates, voltages, resolution).
    pub design: DesignParams,
    /// Extracted technology parameters.
    pub tech: TechnologyParams,
    /// LNA variables.
    pub lna: LnaConfig,
    /// ADC variables.
    pub adc: AdcConfig,
    /// CS front-end variables; `None` selects the baseline architecture.
    pub cs: Option<CsConfig>,
    /// Continuous-time proxy oversampling relative to `f_sample`.
    pub ct_oversample: f64,
    /// Master noise/mismatch seed.
    pub seed: u64,
}

impl SystemConfig {
    /// Paper-default baseline system at the given resolution.
    pub fn baseline(n_bits: u32) -> Self {
        Self {
            design: DesignParams::paper_defaults(n_bits),
            tech: TechnologyParams::gpdk045(),
            lna: LnaConfig::default(),
            adc: AdcConfig::default(),
            cs: None,
            ct_oversample: 8.0,
            seed: 0xEFF1,
        }
    }

    /// Paper-default compressive-sensing system at the given resolution.
    pub fn compressive(n_bits: u32, cs: CsConfig) -> Self {
        Self {
            cs: Some(cs),
            ..Self::baseline(n_bits)
        }
    }

    /// Which architecture this config describes.
    pub fn architecture(&self) -> Architecture {
        if self.cs.is_some() {
            Architecture::CompressiveSensing
        } else {
            Architecture::Baseline
        }
    }

    /// Continuous-time proxy rate (Hz).
    pub fn f_ct_hz(&self) -> f64 {
        self.ct_oversample * self.design.f_sample_hz()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.design.validate().map_err(ConfigError::Design)?;
        if self.lna.gain <= 0.0 {
            return Err(ConfigError::NonPositiveLnaGain {
                gain: self.lna.gain,
            });
        }
        if self.lna.noise_floor_vrms <= 0.0 {
            return Err(ConfigError::NonPositiveLnaNoise {
                noise_floor_vrms: self.lna.noise_floor_vrms,
            });
        }
        if self.adc.c_u_f < self.tech.c_u_min_f {
            return Err(ConfigError::UnitCapBelowMinimum {
                c_u_f: self.adc.c_u_f,
                c_u_min_f: self.tech.c_u_min_f,
            });
        }
        if self.ct_oversample < 2.0 {
            return Err(ConfigError::InsufficientOversampling {
                ct_oversample: self.ct_oversample,
            });
        }
        if let Some(cs) = &self.cs {
            if cs.m == 0 || cs.m > cs.n_phi {
                return Err(ConfigError::BadMeasurementCount {
                    m: cs.m,
                    n_phi: cs.n_phi,
                });
            }
            if cs.s == 0 || cs.s > cs.m {
                return Err(ConfigError::BadScheduleSparsity { s: cs.s, m: cs.m });
            }
            if !(cs.c_sample_f > 0.0 && cs.c_hold_f > 0.0) {
                return Err(ConfigError::NonPositiveCsCapacitor {
                    c_sample_f: cs.c_sample_f,
                    c_hold_f: cs.c_hold_f,
                });
            }
            if cs.omp_sparsity == 0 || cs.omp_sparsity > cs.m {
                return Err(ConfigError::BadOmpSparsity {
                    omp_sparsity: cs.omp_sparsity,
                    m: cs.m,
                });
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_detection() {
        assert_eq!(
            SystemConfig::baseline(8).architecture(),
            Architecture::Baseline
        );
        let cs = SystemConfig::compressive(8, CsConfig::default());
        assert_eq!(cs.architecture(), Architecture::CompressiveSensing);
        assert_eq!(Architecture::Baseline.to_string(), "baseline");
        assert_eq!(Architecture::CompressiveSensing.to_string(), "cs");
    }

    #[test]
    fn defaults_validate() {
        SystemConfig::baseline(6)
            .validate()
            .expect("baseline valid");
        SystemConfig::baseline(8)
            .validate()
            .expect("baseline valid");
        SystemConfig::compressive(8, CsConfig::default())
            .validate()
            .expect("cs valid");
    }

    #[test]
    fn f_ct_is_oversampled() {
        let c = SystemConfig::baseline(8);
        assert!((c.f_ct_hz() - 8.0 * 537.6).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_cs() {
        let mut cfg = SystemConfig::compressive(
            8,
            CsConfig {
                m: 500,
                ..Default::default()
            },
        );
        let err = cfg.validate().unwrap_err();
        assert_eq!(err, ConfigError::BadMeasurementCount { m: 500, n_phi: 384 });
        assert!(err.to_string().contains("M <= N_Φ"));
        cfg = SystemConfig::compressive(
            8,
            CsConfig {
                s: 0,
                ..Default::default()
            },
        );
        assert!(cfg.validate().is_err());
        cfg = SystemConfig::compressive(
            8,
            CsConfig {
                omp_sparsity: 0,
                ..Default::default()
            },
        );
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_lna() {
        let mut cfg = SystemConfig::baseline(8);
        cfg.lna.noise_floor_vrms = 0.0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::NonPositiveLnaNoise {
                noise_floor_vrms: 0.0
            }
        );
    }

    #[test]
    fn config_error_is_a_std_error() {
        let e: Box<dyn std::error::Error> =
            Box::new(ConfigError::BadScheduleSparsity { s: 0, m: 8 });
        assert!(e.to_string().contains("0 < s <= M"));
    }
}
