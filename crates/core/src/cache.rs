//! Content-addressed evaluation cache for design-space product sweeps.
//!
//! A severity × design-space product run re-evaluates the same `(system
//! configuration, fault plan, seeds, dataset)` combination over and over —
//! across severity-0 cells (every clean plan is the same evaluation), across
//! re-runs of an interrupted overnight sweep, and across figure binaries
//! that share a workload. This module makes those evaluations *content
//! addressed*: a [`PointKey`] is a 128-bit FNV-1a hash over the canonical
//! rendering of everything that determines a [`SweepResult`] bit pattern,
//! and a [`SweepCache`] maps keys to results in a sharded concurrent map
//! with optional JSON-lines persistence.
//!
//! ## Key canonicalization
//!
//! The key covers, in order:
//!
//! 1. a format version tag (bumping it invalidates every persisted entry);
//! 2. the full [`SystemConfig`] `Debug` rendering — Rust renders floats in
//!    shortest-round-trip form, so distinct bit patterns render distinctly
//!    (`NaN` collapses and `-0.0`/`0.0` render apart; both err towards
//!    *more* cache misses, never towards false hits);
//! 3. the fault plan via [`FaultPlan::canonical_key`] — every clean plan
//!    (including "no plan") canonicalises to `"clean"` because the
//!    simulator drops clean plans before they can perturb anything;
//! 4. a goal descriptor carrying the metric and, for detection, the
//!    detector seed and epoch length;
//! 5. the [`dataset_fingerprint`] — a 64-bit digest of the dataset
//!    configuration and every sample bit, which also pins the per-record
//!    noise seeds (they derive from record ids).
//!
//! Only *unsalted* (attempt-0) successes are ever cached; salted retry
//! evaluations (see [`crate::sweep::FailurePolicy::Retry`]) intentionally
//! perturb seeds and must not alias the clean key.

use crate::config::{Architecture, SystemConfig};
use crate::detector::SeizureDetector;
use crate::space::DesignPoint;
use crate::sweep::SweepResult;
use efficsense_faults::FaultPlan;
use efficsense_power::{PowerBreakdown, Watts};
use efficsense_signals::EegDataset;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked map shards (bounds worker contention).
const SHARDS: usize = 16;

/// Bump on any change to the key derivation or the persisted line format;
/// every persisted cache entry from older versions then misses harmlessly.
/// v2: [`FaultPlan::canonical_key`] moved from a `Debug` rendering to a
/// structured `plan;…` encoding, and compound plans entered the key space
/// under the disjoint `compound;…` prefix.
const KEY_VERSION: &str = "efficsense-pointkey-v2";

// ---------------------------------------------------------------------------
// PointKey
// ---------------------------------------------------------------------------

/// 128-bit content hash identifying one point evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointKey(u128);

impl PointKey {
    /// Lower-case 32-digit hex form (the persisted representation).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`PointKey::hex`] form; `None` on malformed input.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Self)
    }
}

/// Incremental FNV-1a-128 hasher over byte strings. Shared with the
/// Level-3 prefix store ([`crate::prefix`]), whose keys use the same
/// length-prefixed field discipline under a disjoint version tag.
pub(crate) struct KeyHasher(u128);

impl KeyHasher {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    pub(crate) fn new() -> Self {
        Self(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Writes a length-prefixed field, so adjacent fields cannot alias by
    /// shifting bytes across the boundary.
    pub(crate) fn field(&mut self, tag: &str, value: &str) {
        self.write(tag.as_bytes());
        self.write(&(value.len() as u64).to_le_bytes());
        self.write(value.as_bytes());
    }

    /// Writes a length-prefixed field holding a raw little-endian `u64`
    /// (seeds, lengths, IEEE-754 bit patterns) without a decimal rendering.
    pub(crate) fn field_u64(&mut self, tag: &str, value: u64) {
        self.write(tag.as_bytes());
        self.write(&8u64.to_le_bytes());
        self.write(&value.to_le_bytes());
    }

    pub(crate) fn digest(self) -> u128 {
        self.0
    }

    fn finish(self) -> PointKey {
        PointKey(self.0)
    }
}

/// The sweep-level context a key must capture beyond the per-point
/// configuration and fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalContext {
    /// Canonical goal descriptor from [`goal_descriptor`].
    pub goal: String,
    /// Digest of the evaluation dataset from [`dataset_fingerprint`].
    pub dataset_fingerprint: u64,
}

/// Canonical goal descriptor: `"snr"` for the SNR goal, or
/// `"accuracy/seed=<seed>/epoch=<epoch_s>"` for detection accuracy (the
/// detector seed and epoch length select the trained detector and so the
/// metric values).
#[must_use]
pub fn goal_descriptor(metric: crate::sweep::Metric, detector_seed: u64, epoch_s: f64) -> String {
    match metric {
        crate::sweep::Metric::Snr => "snr".to_string(),
        crate::sweep::Metric::DetectionAccuracy => {
            format!("accuracy/seed={detector_seed}/epoch={epoch_s:?}")
        }
    }
}

/// Derives the content key of one point evaluation.
///
/// `cfg` must be the *instantiated* configuration
/// ([`DesignPoint::to_config`] applied to the sweep template), so every
/// template field — seeds, technology constants, CS imperfection switches —
/// participates in the key.
#[must_use]
pub fn point_key(cfg: &SystemConfig, plan: Option<&FaultPlan>, ctx: &EvalContext) -> PointKey {
    point_key_for_fault(
        cfg,
        &plan.map_or_else(|| "clean".to_string(), FaultPlan::canonical_key),
        ctx,
    )
}

/// Like [`point_key`], but keyed by an explicit canonical fault string —
/// the entry point for plans outside the static [`FaultPlan`] family, such
/// as [`CompoundPlan::canonical_key`](efficsense_faults::CompoundPlan::canonical_key).
/// The two families can never alias: static plans render under the `plan;`
/// prefix, compound plans under `compound;`, and every clean plan of
/// either family canonicalises to `"clean"` (aliasing clean cells is the
/// point — a severity-0 cell is the same evaluation as the clean chain).
#[must_use]
pub fn point_key_for_fault(cfg: &SystemConfig, fault_key: &str, ctx: &EvalContext) -> PointKey {
    let mut h = KeyHasher::new();
    h.field("version", KEY_VERSION);
    h.field("cfg", &format!("{cfg:?}"));
    h.field("plan", fault_key);
    h.field("goal", &ctx.goal);
    h.field("dataset", &format!("{:016x}", ctx.dataset_fingerprint));
    h.finish()
}

/// 64-bit FNV-1a digest of a dataset: its generation config plus, for every
/// record, the id (which seeds the per-record noise streams), class, rate,
/// and the exact bit pattern of every sample.
#[must_use]
pub fn dataset_fingerprint(dataset: &EegDataset) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut acc = OFFSET;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            acc ^= u64::from(b);
            acc = acc.wrapping_mul(PRIME);
        }
    };
    write(format!("{:?}", dataset.config).as_bytes());
    for rec in &dataset.records {
        write(&(rec.id as u64).to_le_bytes());
        write(format!("{:?}", rec.class).as_bytes());
        write(&rec.fs.to_bits().to_le_bytes());
        write(&(rec.samples.len() as u64).to_le_bytes());
        for s in &rec.samples {
            write(&s.to_bits().to_le_bytes());
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// SweepCache
// ---------------------------------------------------------------------------

/// Hit/miss/occupancy counters of a [`SweepCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded concurrent `PointKey → SweepResult` map with hit accounting and
/// JSON-lines persistence. Share one instance across sweeps via
/// [`crate::sweep::Sweep::with_cache`].
#[derive(Debug)]
pub struct SweepCache {
    shards: Vec<Mutex<HashMap<u128, SweepResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SweepCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PointKey) -> &Mutex<HashMap<u128, SweepResult>> {
        // The key is already a high-quality hash; its low bits pick a shard.
        &self.shards[(key.0 as usize) % SHARDS]
    }

    fn lock(
        m: &Mutex<HashMap<u128, SweepResult>>,
    ) -> std::sync::MutexGuard<'_, HashMap<u128, SweepResult>> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a cached result, counting the hit or miss.
    #[must_use]
    pub fn get(&self, key: &PointKey) -> Option<SweepResult> {
        let found = Self::lock(self.shard(key)).get(&key.0).cloned();
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                efficsense_obs::counter!("cache.l1.hit").incr();
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                efficsense_obs::counter!("cache.l1.miss").incr();
                None
            }
        }
    }

    /// Inserts (or overwrites) a result. Evaluation is deterministic per
    /// key, so concurrent inserts under one key write identical values.
    pub fn insert(&self, key: PointKey, result: SweepResult) {
        efficsense_obs::counter!("cache.l1.insert").incr();
        Self::lock(self.shard(&key)).insert(key.0, result);
    }

    /// Number of cached results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// `true` when no results are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Zeroes the hit/miss counters (entries stay cached).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Serialises every entry as JSON lines (sorted by key, so the file is
    /// deterministic for a given content set). Entries containing
    /// non-finite floats — impossible via the sweep engine, which rejects
    /// non-finite results — are skipped rather than emitted as invalid
    /// JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let mut lines: Vec<(u128, String)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (k, r) in Self::lock(shard).iter() {
                if let Some(line) = entry_to_json(PointKey(*k), r) {
                    lines.push((*k, line));
                }
            }
        }
        lines.sort_unstable_by_key(|(k, _)| *k);
        for (_, line) in &lines {
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Parses JSON lines produced by [`SweepCache::write_jsonl`] and merges
    /// them into this cache. Malformed or stale-format lines are skipped,
    /// never fatal — a cache file is an accelerator, not a datastore.
    /// Returns `(loaded, skipped)` line counts.
    pub fn read_jsonl(&self, text: &str) -> (usize, usize) {
        let mut loaded = 0;
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match entry_from_json(line) {
                Some((key, result)) => {
                    self.insert(key, result);
                    loaded += 1;
                }
                None => skipped += 1,
            }
        }
        (loaded, skipped)
    }

    /// Writes the cache to `path` (see [`SweepCache::write_jsonl`]).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let _span = efficsense_obs::span!("cache.l1.save");
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf)?;
        std::fs::write(path, buf)
    }

    /// Merges entries from the file at `path` into this cache. Returns
    /// `(loaded, skipped)`.
    ///
    /// # Errors
    ///
    /// Propagates the read error when the file cannot be opened; malformed
    /// *content* is skipped, not an error.
    pub fn load(&self, path: &std::path::Path) -> std::io::Result<(usize, usize)> {
        let _span = efficsense_obs::span!("cache.l1.load");
        let text = std::fs::read_to_string(path)?;
        Ok(self.read_jsonl(&text))
    }
}

// ---------------------------------------------------------------------------
// JSONL entry codec
// ---------------------------------------------------------------------------

/// `{:?}` renders f64 in shortest-round-trip form, which is also valid JSON
/// for finite values; `None` for NaN/±inf.
fn json_f64(v: f64) -> Option<String> {
    if v.is_finite() {
        Some(format!("{v:?}"))
    } else {
        None
    }
}

fn entry_to_json(key: PointKey, r: &SweepResult) -> Option<String> {
    let p = &r.point;
    let opt_usize = |v: Option<usize>| v.map_or_else(|| "null".to_string(), |v| v.to_string());
    let opt_f64 =
        |v: Option<f64>| -> Option<String> { v.map_or(Some("null".to_string()), json_f64) };
    let mut breakdown = String::from("[");
    for (i, (k, w)) in r.breakdown.iter().enumerate() {
        if i > 0 {
            breakdown.push(',');
        }
        breakdown.push_str(&format!(
            "[\"{}\",{}]",
            crate::report::block_slug(k),
            json_f64(w.value())?
        ));
    }
    breakdown.push(']');
    Some(format!(
        "{{\"key\":\"{}\",\"architecture\":\"{}\",\"lna_noise_vrms\":{},\"n_bits\":{},\
         \"m\":{},\"s\":{},\"c_hold_f\":{},\"metric\":{},\"power_w\":{},\"area_units\":{},\
         \"breakdown\":{}}}",
        key.hex(),
        p.architecture,
        json_f64(p.lna_noise_vrms)?,
        p.n_bits,
        opt_usize(p.m),
        opt_usize(p.s),
        opt_f64(p.c_hold_f)?,
        json_f64(r.metric)?,
        json_f64(r.power_w)?,
        json_f64(r.area_units)?,
        breakdown
    ))
}

fn entry_from_json(line: &str) -> Option<(PointKey, SweepResult)> {
    let v = Json::parse(line)?;
    let obj = v.as_obj()?;
    let get = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let key = PointKey::from_hex(get("key")?.as_str()?)?;
    let architecture = match get("architecture")?.as_str()? {
        "baseline" => Architecture::Baseline,
        "cs" => Architecture::CompressiveSensing,
        _ => return None,
    };
    let finite = |v: f64| if v.is_finite() { Some(v) } else { None };
    let as_usize = |v: &Json| -> Option<usize> {
        let f = v.as_f64()?;
        if f.fract().abs() < f64::EPSILON && (0.0..9.0e15).contains(&f) {
            Some(f as usize)
        } else {
            None
        }
    };
    let point = DesignPoint {
        architecture,
        lna_noise_vrms: finite(get("lna_noise_vrms")?.as_f64()?)?,
        n_bits: as_usize(get("n_bits")?)? as u32,
        m: match get("m")? {
            Json::Null => None,
            v => Some(as_usize(v)?),
        },
        s: match get("s")? {
            Json::Null => None,
            v => Some(as_usize(v)?),
        },
        c_hold_f: match get("c_hold_f")? {
            Json::Null => None,
            v => Some(finite(v.as_f64()?)?),
        },
    };
    // Breakdown entries re-add in persisted (insertion) order, preserving
    // the `PowerBreakdown` equality contract, which is order-sensitive.
    let mut breakdown = PowerBreakdown::new();
    for pair in get("breakdown")?.as_arr()? {
        let pair = pair.as_arr()?;
        if pair.len() != 2 {
            return None;
        }
        let kind = crate::report::block_from_slug(pair[0].as_str()?)?;
        let w = finite(pair[1].as_f64()?)?;
        if w < 0.0 {
            return None;
        }
        breakdown.add(kind, Watts(w));
    }
    Some((
        key,
        SweepResult {
            point,
            metric: finite(get("metric")?.as_f64()?)?,
            power_w: finite(get("power_w")?.as_f64()?)?,
            breakdown,
            area_units: finite(get("area_units")?.as_f64()?)?,
        },
    ))
}

/// Minimal JSON value model — just enough for the cache line format.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Option<Json> {
        let mut p = JsonParser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i == p.b.len() {
            Some(v)
        } else {
            None
        }
    }

    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b'n' => {
                if self.b[self.i..].starts_with(b"null") {
                    self.i += 4;
                    Some(Json::Null)
                } else {
                    None
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Some(Json::Obj(out));
        }
        loop {
            let k = {
                self.skip_ws();
                self.string()?
            };
            self.eat(b':')?;
            let v = self.value()?;
            out.push((k, v));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(Json::Obj(out));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Some(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Some(Json::Arr(out));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.b.get(self.i) != Some(&b'"') {
            return None;
        }
        self.i += 1;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.b.get(self.i)?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        _ => return None, // \u and friends: not in our format
                    }
                }
                _ => out.push(c as char),
            }
        }
        None
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }
}

// ---------------------------------------------------------------------------
// Trained-detector memoization
// ---------------------------------------------------------------------------

type DetectorKey = (u64, u64, u64, u64);

fn detector_store() -> &'static Mutex<HashMap<DetectorKey, Arc<SeizureDetector>>> {
    static STORE: OnceLock<Mutex<HashMap<DetectorKey, Arc<SeizureDetector>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized detector training: one shared [`SeizureDetector`] per
/// `(dataset fingerprint, sample rate, epoch length, seed)`. Training is
/// deterministic in that key, so the memoized detector is bit-identical to
/// a freshly trained one. `epoch_s > 0` trains the epoched variant, `0`
/// the whole-record variant, matching [`crate::sweep::SweepConfig`].
///
/// Each product-sweep cell calls [`crate::sweep::Sweep::run_report`], which
/// used to retrain the same detector per cell; memoizing it here is what
/// lets a *warm* product sweep skip straight to cache lookups.
///
/// # Panics
///
/// Panics when the dataset is empty or `epoch_s` is negative/non-finite
/// (the underlying trainers assert this).
#[must_use]
pub fn trained_detector(
    dataset: &EegDataset,
    fs: f64,
    epoch_s: f64,
    seed: u64,
) -> Arc<SeizureDetector> {
    let key = (
        dataset_fingerprint(dataset),
        fs.to_bits(),
        epoch_s.to_bits(),
        seed,
    );
    let mut map = detector_store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(d) = map.get(&key) {
        efficsense_obs::counter!("memo.detector.hit").incr();
        return Arc::clone(d);
    }
    efficsense_obs::counter!("memo.detector.miss").incr();
    // Train under the lock: callers racing on the same key would otherwise
    // duplicate minutes of training work; distinct-key contention is rare
    // (one training per sweep).
    let _train_span = efficsense_obs::span!("detect.train");
    let detector = if epoch_s > 0.0 {
        SeizureDetector::train_epoched(dataset, fs, epoch_s, seed)
    } else {
        SeizureDetector::train(dataset, fs, seed)
    };
    let detector = Arc::new(detector);
    map.insert(key, Arc::clone(&detector));
    detector
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CsConfig;
    use crate::sweep::Metric;
    use efficsense_faults::FaultKind;
    use efficsense_power::BlockKind;
    use efficsense_signals::DatasetConfig;

    fn ctx() -> EvalContext {
        EvalContext {
            goal: goal_descriptor(Metric::Snr, 0, 2.0),
            dataset_fingerprint: 0xDA7A_F00D,
        }
    }

    fn sample_result() -> SweepResult {
        // Breakdown deliberately in non-display insertion order: the
        // persistence cycle must preserve it for order-sensitive equality.
        let mut b = PowerBreakdown::new();
        b.add(BlockKind::Transmitter, Watts(4.3e-6));
        b.add(BlockKind::Lna, Watts(1e-6));
        SweepResult {
            point: DesignPoint {
                architecture: Architecture::CompressiveSensing,
                lna_noise_vrms: 3.61e-6,
                n_bits: 8,
                m: Some(75),
                s: Some(2),
                c_hold_f: Some(0.5e-12),
            },
            metric: 0.9933,
            power_w: 5.3e-6,
            breakdown: b,
            area_units: 75000.0,
        }
    }

    #[test]
    fn hex_roundtrip() {
        let k = point_key(&SystemConfig::baseline(8), None, &ctx());
        assert_eq!(PointKey::from_hex(&k.hex()), Some(k));
        assert_eq!(PointKey::from_hex("zz"), None);
        assert_eq!(PointKey::from_hex(&"0".repeat(33)), None);
    }

    #[test]
    fn key_is_deterministic() {
        let cfg = SystemConfig::compressive(8, CsConfig::default());
        let plan = FaultPlan::single(FaultKind::CapLeakage, 0.5, 3);
        assert_eq!(
            point_key(&cfg, Some(&plan), &ctx()),
            point_key(&cfg.clone(), Some(&plan.clone()), &ctx())
        );
    }

    #[test]
    fn key_separates_every_config_axis() {
        let base = SystemConfig::compressive(8, CsConfig::default());
        let k0 = point_key(&base, None, &ctx());
        let mutations: Vec<SystemConfig> = vec![
            {
                let mut c = base.clone();
                c.seed ^= 1;
                c
            },
            {
                let mut c = base.clone();
                c.design.n_bits = 7;
                c
            },
            {
                let mut c = base.clone();
                c.lna.noise_floor_vrms *= 1.0 + 1e-12;
                c
            },
            {
                let mut c = base.clone();
                if let Some(cs) = &mut c.cs {
                    cs.m -= 1;
                }
                c
            },
            {
                let mut c = base.clone();
                if let Some(cs) = &mut c.cs {
                    cs.s += 1;
                }
                c
            },
            {
                let mut c = base.clone();
                if let Some(cs) = &mut c.cs {
                    cs.c_hold_f *= 1.0 + 1e-12;
                }
                c
            },
            SystemConfig::baseline(8),
        ];
        for (i, m) in mutations.iter().enumerate() {
            assert_ne!(
                point_key(m, None, &ctx()),
                k0,
                "mutation {i} must change the key"
            );
        }
    }

    #[test]
    fn key_separates_fault_plans_but_collapses_clean_ones() {
        let cfg = SystemConfig::baseline(8);
        let c = ctx();
        let none = point_key(&cfg, None, &c);
        // Clean plans alias "no plan" — the simulator drops them.
        assert_eq!(point_key(&cfg, Some(&FaultPlan::clean(7)), &c), none);
        assert_eq!(
            point_key(
                &cfg,
                Some(&FaultPlan::single(FaultKind::LnaRail, 0.0, 9)),
                &c
            ),
            none
        );
        // Active plans separate by kind, severity and seed.
        let by = |kind, sev, seed| point_key(&cfg, Some(&FaultPlan::single(kind, sev, seed)), &c);
        // Severity separation uses CapLeakage: its mapping is continuous,
        // while e.g. AdcStuckBit quantises severity to a bit index (0.5 and
        // 0.6 pick the same stuck bit and *should* share a key).
        let a = by(FaultKind::CapLeakage, 0.5, 1);
        assert_ne!(a, none);
        assert_ne!(a, by(FaultKind::CapLeakage, 0.6, 1));
        assert_ne!(a, by(FaultKind::CapLeakage, 0.5, 2));
        assert_ne!(a, by(FaultKind::ClockJitter, 0.5, 1));
    }

    #[test]
    fn compound_keys_never_alias_static_plans_or_each_other() {
        use efficsense_faults::{CompoundPlan, SeverityProfile};
        let cfg = SystemConfig::baseline(8);
        let c = ctx();
        let ck = |p: &CompoundPlan| point_key_for_fault(&cfg, &p.canonical_key(), &c);
        let base =
            CompoundPlan::new(7, 1.0).with(FaultKind::CapLeakage, SeverityProfile::Constant(0.5));
        let k = ck(&base);
        assert_eq!(k, ck(&base.clone()), "key must be deterministic");
        // A compound plan must not alias the static plan whose parameters
        // it materialises to at t=0 — the realisations diverge over time.
        assert_ne!(
            k,
            point_key(
                &cfg,
                Some(&FaultPlan::single(FaultKind::CapLeakage, 0.5, 7)),
                &c
            )
        );
        // Seed, update period, membership, profile family, profile
        // parameters, and the profile-to-member assignment all separate.
        assert_ne!(
            k,
            ck(&CompoundPlan::new(8, 1.0)
                .with(FaultKind::CapLeakage, SeverityProfile::Constant(0.5)))
        );
        assert_ne!(
            k,
            ck(&CompoundPlan::new(7, 2.0)
                .with(FaultKind::CapLeakage, SeverityProfile::Constant(0.5)))
        );
        assert_ne!(
            k,
            ck(&base
                .clone()
                .with(FaultKind::ClockJitter, SeverityProfile::Constant(0.3)))
        );
        assert_ne!(
            k,
            ck(&CompoundPlan::new(7, 1.0)
                .with(FaultKind::CapLeakage, SeverityProfile::Constant(0.6)))
        );
        // A constant profile and a flat linear ramp reach the same severity
        // but are distinct plans (the linear one keeps ramping semantics).
        assert_ne!(
            k,
            ck(&CompoundPlan::new(7, 1.0).with(
                FaultKind::CapLeakage,
                SeverityProfile::Linear {
                    start: 0.5,
                    end: 0.5,
                    ramp_s: 1.0
                },
            ))
        );
        // Swapping which member carries which profile must re-key.
        let ab = CompoundPlan::new(7, 1.0)
            .with(FaultKind::CapLeakage, SeverityProfile::Constant(0.2))
            .with(FaultKind::ClockJitter, SeverityProfile::Constant(0.7));
        let ba = CompoundPlan::new(7, 1.0)
            .with(FaultKind::CapLeakage, SeverityProfile::Constant(0.7))
            .with(FaultKind::ClockJitter, SeverityProfile::Constant(0.2));
        assert_ne!(ck(&ab), ck(&ba));
        // Clean compound plans collapse onto the clean key, like clean
        // static plans: a severity-0 cell is the clean evaluation.
        assert_eq!(ck(&CompoundPlan::new(7, 1.0)), point_key(&cfg, None, &c));
    }

    #[test]
    fn key_separates_goal_and_dataset() {
        let cfg = SystemConfig::baseline(8);
        let c0 = ctx();
        let goal2 = EvalContext {
            goal: goal_descriptor(Metric::DetectionAccuracy, 0xD0D0, 2.0),
            ..c0.clone()
        };
        let seed2 = EvalContext {
            goal: goal_descriptor(Metric::DetectionAccuracy, 0xD0D1, 2.0),
            ..c0.clone()
        };
        let epoch2 = EvalContext {
            goal: goal_descriptor(Metric::DetectionAccuracy, 0xD0D0, 0.0),
            ..c0.clone()
        };
        let data2 = EvalContext {
            dataset_fingerprint: c0.dataset_fingerprint ^ 1,
            ..c0.clone()
        };
        let k0 = point_key(&cfg, None, &c0);
        for (what, c) in [
            ("metric", goal2.clone()),
            ("detector seed", seed2),
            ("epoch", epoch2),
            ("dataset", data2),
        ] {
            assert_ne!(point_key(&cfg, None, &c), k0, "{what} must change the key");
        }
        assert_ne!(
            goal_descriptor(Metric::DetectionAccuracy, 0xD0D0, 2.0),
            goal_descriptor(Metric::DetectionAccuracy, 0xD0D0, 0.0)
        );
    }

    #[test]
    fn dataset_fingerprint_tracks_content() {
        let cfg = DatasetConfig {
            records_per_class: 1,
            duration_s: 1.0,
            ..Default::default()
        };
        let a = EegDataset::generate(&cfg);
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&a.clone()));
        let b = EegDataset::generate(&DatasetConfig {
            seed: cfg.seed ^ 1,
            ..cfg.clone()
        });
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        let mut c = a.clone();
        c.records[0].samples[0] += 1e-15;
        assert_ne!(
            dataset_fingerprint(&a),
            dataset_fingerprint(&c),
            "a single sample bit flip must change the fingerprint"
        );
    }

    #[test]
    fn cache_get_insert_and_stats() {
        let cache = SweepCache::new();
        let key = point_key(&SystemConfig::baseline(8), None, &ctx());
        assert!(cache.get(&key).is_none());
        cache.insert(key, sample_result());
        assert_eq!(cache.get(&key), Some(sample_result()));
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        cache.reset_stats();
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn jsonl_roundtrip_is_bit_identical() {
        let cache = SweepCache::new();
        let k1 = point_key(&SystemConfig::baseline(8), None, &ctx());
        let k2 = point_key(&SystemConfig::baseline(7), None, &ctx());
        let mut second = sample_result();
        second.point.architecture = Architecture::Baseline;
        second.point.m = None;
        second.point.s = None;
        second.point.c_hold_f = None;
        second.metric = -12.75;
        cache.insert(k1, sample_result());
        cache.insert(k2, second);
        let mut buf = Vec::new();
        cache.write_jsonl(&mut buf).expect("write to vec");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        let reloaded = SweepCache::new();
        let (loaded, skipped) = reloaded.read_jsonl(&text);
        assert_eq!((loaded, skipped), (2, 0));
        // Bit-identical including breakdown insertion order.
        assert_eq!(reloaded.get(&k1), cache.get(&k1));
        assert_eq!(reloaded.get(&k2), cache.get(&k2));
        // And a second serialisation is byte-identical (deterministic file).
        let mut buf2 = Vec::new();
        reloaded.write_jsonl(&mut buf2).expect("write to vec");
        assert_eq!(text, String::from_utf8(buf2).expect("utf8"));
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let cache = SweepCache::new();
        let good = {
            let c = SweepCache::new();
            c.insert(
                point_key(&SystemConfig::baseline(8), None, &ctx()),
                sample_result(),
            );
            let mut buf = Vec::new();
            c.write_jsonl(&mut buf).expect("write to vec");
            String::from_utf8(buf).expect("utf8")
        };
        let text = format!(
            "not json\n{{\"key\":\"zz\"}}\n{good}\n{{\"key\":\"{}\",\"architecture\":\"martian\"}}\n",
            "0".repeat(32)
        );
        let (loaded, skipped) = cache.read_jsonl(&text);
        assert_eq!(loaded, 1);
        assert_eq!(skipped, 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn save_and_load_roundtrip_via_file() {
        let cache = SweepCache::new();
        let key = point_key(&SystemConfig::baseline(8), None, &ctx());
        cache.insert(key, sample_result());
        let path = std::env::temp_dir().join(format!(
            "efficsense_cache_test_{}.jsonl",
            std::process::id()
        ));
        cache.save(&path).expect("save cache file");
        let fresh = SweepCache::new();
        let (loaded, skipped) = fresh.load(&path).expect("load cache file");
        std::fs::remove_file(&path).ok();
        assert_eq!((loaded, skipped), (1, 0));
        assert_eq!(fresh.get(&key), Some(sample_result()));
    }

    #[test]
    fn detector_memo_shares_and_separates() {
        let dataset = EegDataset::generate(&DatasetConfig {
            records_per_class: 1,
            duration_s: 2.0,
            ..Default::default()
        });
        let fs = 537.6;
        let a = trained_detector(&dataset, fs, 2.0, 0xD0D0);
        let b = trained_detector(&dataset, fs, 2.0, 0xD0D0);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one detector");
        let c = trained_detector(&dataset, fs, 2.0, 0xD0D1);
        assert!(!Arc::ptr_eq(&a, &c), "seed must separate detectors");
        // Memoized training is bit-identical to fresh training.
        let fresh = SeizureDetector::train_epoched(&dataset, fs, 2.0, 0xD0D0);
        assert_eq!(format!("{a:?}"), format!("{fresh:?}"));
    }
}
