//! Result reporting: CSV export and plain-text tables.

use crate::sweep::{PointError, QuarantinedPoint, SweepResult};
use efficsense_power::BlockKind;
use std::io::Write;

/// Writes sweep results as CSV (one row per design point).
///
/// Columns: label, architecture, lna_noise_uvrms, n_bits, m, s, c_hold_pf,
/// metric, power_uw, area_units, then one column per block kind (µW).
///
/// Non-finite metric or power values are written as empty cells; if any
/// occur, a *single* summary warning with the total count goes to stderr
/// (a 96-point sweep with a sick noise model should not scroll 96 warnings
/// past the interesting output).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(mut w: W, results: &[SweepResult]) -> std::io::Result<()> {
    write!(
        w,
        "label,architecture,lna_noise_uvrms,n_bits,m,s,c_hold_pf,metric,power_uw,area_units"
    )?;
    for k in BlockKind::ALL {
        write!(w, ",{}_uw", block_slug(k))?;
    }
    writeln!(w)?;
    let mut blanked = 0usize;
    for r in results {
        let p = &r.point;
        write!(
            w,
            "{},{},{:.4},{},{},{},{},{},{},{:.1}",
            p.label(),
            p.architecture,
            p.lna_noise_vrms * 1e6,
            p.n_bits,
            p.m.map_or(String::new(), |v| v.to_string()),
            p.s.map_or(String::new(), |v| v.to_string()),
            p.c_hold_f
                .map_or(String::new(), |v| format!("{:.2}", v * 1e12)),
            finite_cell(r.metric, 1.0, &mut blanked),
            finite_cell(r.power_w, 1e6, &mut blanked),
            r.area_units
        )?;
        for k in BlockKind::ALL {
            write!(w, ",{:.6}", r.breakdown.get(k).value() * 1e6)?;
        }
        writeln!(w)?;
    }
    if blanked > 0 {
        efficsense_obs::global().warn(
            "report.nonfinite_cells",
            blanked as u64,
            &format!(
                "warning: {blanked} non-finite cell(s) written empty across {} result row(s)",
                results.len()
            ),
        );
    }
    Ok(())
}

/// Formats `value * scale` for a CSV cell, or an empty cell (counted in
/// `blanked`) when the value is NaN or infinite, so downstream plotting
/// tools see a missing sample rather than a poisoned column.
fn finite_cell(value: f64, scale: f64, blanked: &mut usize) -> String {
    if value.is_finite() {
        format!("{:.6}", value * scale)
    } else {
        *blanked += 1;
        String::new()
    }
}

/// Writes a sweep's quarantine as CSV (one row per failed point):
/// `index,label,error_kind,retries,message`, where `error_kind` is the
/// stable discriminant (`config` / `panicked` / `non_finite`) and `message`
/// is the quoted human-readable error. An empty quarantine still writes the
/// header, so a sibling file of the results CSV always exists and parses.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_quarantine_csv<W: Write>(
    mut w: W,
    quarantine: &[QuarantinedPoint],
) -> std::io::Result<()> {
    writeln!(w, "index,label,error_kind,retries,message")?;
    for q in quarantine {
        writeln!(
            w,
            "{},{},{},{},{}",
            q.index,
            q.point.label(),
            error_kind(&q.error),
            q.retries,
            csv_quote(&q.error.to_string())
        )?;
    }
    Ok(())
}

/// Stable machine-readable discriminant of a [`PointError`].
fn error_kind(e: &PointError) -> &'static str {
    match e {
        PointError::Config(_) => "config",
        PointError::Panicked(_) => "panicked",
        PointError::NonFinite(_) => "non_finite",
    }
}

/// Quotes a CSV field (RFC 4180: wrap in quotes, double embedded quotes).
fn csv_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

/// Stable machine-readable name of a power block (CSV headers, cache files).
pub(crate) fn block_slug(k: BlockKind) -> &'static str {
    match k {
        BlockKind::Lna => "lna",
        BlockKind::SampleHold => "sh",
        BlockKind::Comparator => "comparator",
        BlockKind::SarLogic => "sar_logic",
        BlockKind::Dac => "dac",
        BlockKind::Transmitter => "tx",
        BlockKind::CsEncoderLogic => "cs_logic",
        BlockKind::Leakage => "leakage",
    }
}

/// Inverse of [`block_slug`]; `None` for unknown names.
pub(crate) fn block_from_slug(s: &str) -> Option<BlockKind> {
    BlockKind::ALL.into_iter().find(|k| block_slug(*k) == s)
}

/// Formats results as an aligned plain-text table.
pub fn text_table(results: &[SweepResult]) -> String {
    let mut s = format!(
        "{:<28} {:>10} {:>12} {:>12}\n",
        "design point", "metric", "power (µW)", "area (C_u)"
    );
    for r in results {
        s.push_str(&format!(
            "{:<28} {:>10.4} {:>12.4} {:>12.0}\n",
            r.point.label(),
            r.metric,
            r.power_w * 1e6,
            r.area_units
        ));
    }
    s
}

/// Writes a simple two-column CSV series (for single-axis figures).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_series<W: Write>(
    mut w: W,
    x_name: &str,
    y_name: &str,
    series: &[(f64, f64)],
) -> std::io::Result<()> {
    writeln!(w, "{x_name},{y_name}")?;
    for (x, y) in series {
        writeln!(w, "{x:.9},{y:.9}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Architecture;
    use crate::space::DesignPoint;
    use efficsense_power::PowerBreakdown;

    fn sample_result() -> SweepResult {
        let mut b = PowerBreakdown::new();
        b.add(BlockKind::Lna, efficsense_power::Watts(1e-6));
        b.add(BlockKind::Transmitter, efficsense_power::Watts(4.3e-6));
        SweepResult {
            point: DesignPoint {
                architecture: Architecture::CompressiveSensing,
                lna_noise_vrms: 3e-6,
                n_bits: 8,
                m: Some(75),
                s: Some(2),
                c_hold_f: Some(1e-12),
            },
            metric: 0.993,
            power_w: 5.3e-6,
            breakdown: b,
            area_units: 75000.0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &[sample_result()]).expect("write to vec succeeds");
        let s = String::from_utf8(buf).expect("valid utf8");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("label,architecture"));
        assert!(lines[0].contains("lna_uw"));
        assert!(lines[1].contains("cs_n8"));
        assert!(lines[1].contains("0.993"));
    }

    #[test]
    fn csv_block_columns_match_breakdown() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &[sample_result()]).expect("write succeeds");
        let s = String::from_utf8(buf).expect("valid utf8");
        let header: Vec<&str> = s.lines().next().expect("header").split(',').collect();
        let row: Vec<&str> = s.lines().nth(1).expect("row").split(',').collect();
        assert_eq!(header.len(), row.len());
        let lna_idx = header
            .iter()
            .position(|h| *h == "lna_uw")
            .expect("lna column");
        assert!((row[lna_idx].parse::<f64>().expect("number") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn csv_blanks_non_finite_metric_and_power() {
        let mut nan_metric = sample_result();
        nan_metric.metric = f64::NAN;
        let mut inf_power = sample_result();
        inf_power.power_w = f64::INFINITY;
        let mut buf = Vec::new();
        write_csv(&mut buf, &[nan_metric, inf_power]).expect("write succeeds");
        let s = String::from_utf8(buf).expect("valid utf8");
        let header: Vec<&str> = s.lines().next().expect("header").split(',').collect();
        let metric_idx = header.iter().position(|h| *h == "metric").expect("metric");
        let power_idx = header
            .iter()
            .position(|h| *h == "power_uw")
            .expect("power_uw");
        let rows: Vec<Vec<&str>> = s.lines().skip(1).map(|l| l.split(',').collect()).collect();
        // Each row keeps its full column count, with the sick cell empty.
        assert!(rows.iter().all(|r| r.len() == header.len()));
        assert_eq!(rows[0][metric_idx], "");
        assert!(rows[0][power_idx].parse::<f64>().is_ok());
        assert_eq!(rows[1][power_idx], "");
        assert!(rows[1][metric_idx].parse::<f64>().is_ok());
    }

    #[test]
    fn quarantine_csv_has_header_kinds_and_quoted_messages() {
        let q = vec![
            QuarantinedPoint {
                index: 3,
                point: sample_result().point,
                error: PointError::NonFinite("metric NaN, power 5e-6 W".to_string()),
                retries: 2,
            },
            QuarantinedPoint {
                index: 7,
                point: sample_result().point,
                error: PointError::Panicked("said \"no\"".to_string()),
                retries: 0,
            },
        ];
        let mut buf = Vec::new();
        write_quarantine_csv(&mut buf, &q).expect("write to vec succeeds");
        let s = String::from_utf8(buf).expect("valid utf8");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "index,label,error_kind,retries,message");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("3,"));
        assert!(lines[1].contains(",non_finite,2,"));
        assert!(lines[2].contains(",panicked,0,"));
        // Embedded quotes survive as RFC 4180 doubled quotes.
        assert!(lines[2].ends_with("\"model panicked: said \"\"no\"\"\""));
        // Empty quarantine still produces a parseable header-only file.
        let mut empty = Vec::new();
        write_quarantine_csv(&mut empty, &[]).expect("write succeeds");
        assert_eq!(
            String::from_utf8(empty)
                .expect("valid utf8")
                .lines()
                .count(),
            1
        );
    }

    #[test]
    fn text_table_contains_label() {
        let t = text_table(&[sample_result()]);
        assert!(t.contains("cs_n8"));
        assert!(t.contains("metric"));
    }

    #[test]
    fn series_roundtrip() {
        let mut buf = Vec::new();
        write_series(&mut buf, "x", "y", &[(1.0, 2.0), (3.0, 4.0)]).expect("write succeeds");
        let s = String::from_utf8(buf).expect("valid utf8");
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("x,y\n"));
    }
}
