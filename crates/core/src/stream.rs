//! Streaming, bounded-memory simulation of the acquisition chain.
//!
//! [`Simulator::run`](crate::simulate::Simulator::run) evaluates one record
//! held entirely in memory. Long-duration scenarios — a sensor that runs
//! for months while its faults age — need the same chain as a *stream*:
//! input arrives in chunks of any size, every block carries its state
//! (filter tails, hold charge, partial CS frames, link packet accounting)
//! across chunk boundaries, and memory stays bounded no matter how long
//! the stream runs.
//!
//! [`StreamSimulator`] is that pipeline. Its contract has two halves:
//!
//! * **Static plans are bit-identical to the batch path.** For any chunking
//!   of the input, the concatenated output of [`StreamSimulator::push`] +
//!   [`StreamSimulator::finish`] equals [`Simulator::run`] on the whole
//!   record, bit for bit — clean or with any static [`FaultPlan`](efficsense_faults::FaultPlan). This
//!   holds because every random draw happens in the same stream and the
//!   same order as the batch path: values are emitted *eagerly* once their
//!   inputs can no longer change (interior interpolation points), and
//!   end-of-record clamps are resolved only at [`StreamSimulator::finish`].
//! * **Compound plans are chunk-invariant.** A [`CompoundPlan`] threads
//!   time-varying severity through the per-block fault hooks. Parameters
//!   update only at epoch boundaries computed from absolute sample indices
//!   in each block's own sample domain, and every fault keeps its private
//!   RNG stream, so the realisation depends on the plan and the input —
//!   never on how the stream was chunked or how many decode threads run.
//!
//! The streaming path reports progress: a `stream.heartbeat` counter (plus
//! a `stream.progress` trace event when a sink is installed) ticks at
//! fixed output-sample intervals, and each batched decode flush is timed
//! under a `stream.chunk` span. All instrumentation fires at
//! chunk-invariant points so [`LogicalClock`](efficsense_obs::LogicalClock)
//! snapshots stay identical across chunkings.

use crate::config::CsConfig;
use crate::simulate::{
    record_salt, ArchState, SimOutput, Simulator, SALT_CLOCK, SALT_LINK, SALT_LNA,
};
use efficsense_blocks::{ChargeSharingEncoder, Lna, Sampler, SarAdc};
use efficsense_cs::decode::reconstruct_batch;
use efficsense_cs::memo::DictionaryArtifacts;
use efficsense_cs::recon::OmpConfig;
use efficsense_faults::{ClockFault, CompoundPlan, FaultKind, LinkFault, LinkStats, LnaRailFault};
use efficsense_power::{DesignParams, PowerBreakdown, TechnologyParams};
use efficsense_rng::Rng64;
use efficsense_signals::noise::Gaussian;
use std::sync::Arc;

/// Frames digitised before each batched decode flush. Flush boundaries are
/// counted in *frames*, so they are invariant to how the raw input was
/// chunked; each flush runs under a `stream.chunk` span.
const DECODE_BATCH: usize = 16;

/// Output samples between `stream.heartbeat` ticks.
const HEARTBEAT_EVERY: u64 = 8192;

/// Stream-side look-back guard (continuous-time samples) kept behind the
/// consumer position to serve jittered acquisition instants. The largest
/// clock fault jitters by half a sample period — a few CT samples — so
/// 4096 is hundreds of standard deviations of margin.
const CT_GUARD: u64 = 4096;

/// Raw-ring guard (input samples) behind the resampler/reference cursors.
const RAW_GUARD: u64 = 8;

/// A zero-effect railing fault, used to arm the LNA's private fault stream
/// before a severity profile first becomes active.
const NOOP_RAIL: LnaRailFault = LnaRailFault {
    rail_prob: 0.0,
    episode_len: 0,
    v_clip_factor: 1.0,
};

/// A zero-effect clock fault (same role as [`NOOP_RAIL`]).
const NOOP_CLOCK: ClockFault = ClockFault {
    jitter_periods: 0.0,
    drop_prob: 0.0,
};

/// Link parameters in force while a packet-loss profile sits at severity 0:
/// lossless, but with the same packet geometry [`FaultPlan::single`] maps
/// active severities onto, so packet boundaries never move when severity
/// does.
const NOOP_LINK: LinkFault = LinkFault {
    loss_prob: 0.0,
    max_retries: 2,
    packet_words: 16,
};

/// An append-only sample buffer addressed by *absolute* index, with
/// deterministic pruning of the consumed prefix. The first sample is
/// cached so the `t <= 0` edge clamp of
/// [`sample_at`](efficsense_dsp::resample::sample_at) survives pruning.
#[derive(Debug, Clone, Default)]
struct Ring {
    /// Absolute index of `buf[0]`.
    base: u64,
    buf: Vec<f64>,
    /// Value at absolute index 0 (valid once `total > 0`).
    first: f64,
    /// Total samples ever pushed (`base + buf.len()`).
    total: u64,
}

impl Ring {
    fn push(&mut self, v: f64) {
        if self.total == 0 {
            self.first = v;
        }
        self.buf.push(v);
        self.total += 1;
    }

    fn len(&self) -> u64 {
        self.total
    }

    /// Value at absolute index `i`, clamped into the retained window. The
    /// below-`base` clamp is unreachable under the pruning guards; it
    /// exists so the accessor is total.
    fn get_clamped(&self, i: u64) -> f64 {
        if self.buf.is_empty() {
            return self.first;
        }
        let idx = i.saturating_sub(self.base).min(self.buf.len() as u64 - 1);
        self.buf[idx as usize]
    }

    /// Mirrors [`sample_at`](efficsense_dsp::resample::sample_at) bit for
    /// bit on the growing record: returns `None` while the interpolation
    /// neighbourhood could still change (the end clamp is only valid once
    /// `finished`).
    fn interp_at(&self, fs: f64, t: f64, finished: bool) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let pos = t * fs;
        if pos <= 0.0 {
            return Some(self.first);
        }
        let i = pos.floor() as u64;
        if i + 1 >= self.total {
            return finished.then(|| self.get_clamped(self.total - 1));
        }
        let frac = pos - i as f64;
        Some(self.get_clamped(i) * (1.0 - frac) + self.get_clamped(i + 1) * frac)
    }

    /// Drops samples below absolute index `keep_from` (amortised: only
    /// compacts once ≥ 1024 samples are prunable). Always retains at least
    /// one sample so the end clamp stays serviceable.
    fn prune_below(&mut self, keep_from: u64) {
        let keep = keep_from.min(self.total.saturating_sub(1)).max(self.base);
        let n = keep - self.base;
        if n >= 1024 {
            self.buf.drain(..n as usize);
            self.base = keep;
        }
    }
}

/// Which fault hooks a [`CompoundPlan`] can ever activate. Member blocks
/// get their fault state *installed* up front (private streams armed, even
/// at severity 0) so later severity changes never shift any stream.
#[derive(Debug, Clone, Copy, Default)]
struct Members {
    lna: bool,
    adc: bool,
    leakage: bool,
    clock: bool,
    link: bool,
}

fn members_of(plan: &CompoundPlan) -> Members {
    let mut m = Members::default();
    for (kind, profile) in plan.faults() {
        if profile.max_severity() <= 0.0 {
            continue;
        }
        match kind {
            FaultKind::LnaRail => m.lna = true,
            FaultKind::AdcStuckBit => m.adc = true,
            FaultKind::CapLeakage => m.leakage = true,
            FaultKind::ClockJitter | FaultKind::DroppedSamples => m.clock = true,
            FaultKind::PacketLoss => m.link = true,
        }
    }
    m
}

/// Link parameters in force during the epoch containing `t_s`, with the
/// [`NOOP_LINK`] geometry when the profile sits at severity 0.
fn link_params_at(plan: &CompoundPlan, t_s: f64) -> LinkFault {
    plan.materialize(t_s).link.unwrap_or(NOOP_LINK)
}

/// How faults are driven through the stream.
#[derive(Debug, Clone)]
enum FaultMode {
    /// The simulator's own static [`FaultPlan`](efficsense_faults::FaultPlan) snapshot; injection mirrors
    /// the batch path exactly (bit-identical).
    Static,
    /// A compound plan with per-epoch severity updates.
    Compound {
        plan: CompoundPlan,
        members: Members,
    },
}

/// The pair sequence produced by one [`StreamSimulator::push`] (or the
/// final flush): acquired samples referred to the sensor input, and the
/// clean reference resampled to the output rate. Both vectors are always
/// the same length; concatenating every chunk reproduces the
/// [`SimOutput`] vectors of the batch path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamChunk {
    /// Input-referred acquired signal (V) at `f_sample`.
    pub input_referred: Vec<f64>,
    /// Clean input resampled to `f_sample`, aligned with `input_referred`.
    pub reference: Vec<f64>,
}

impl StreamChunk {
    /// Number of sample pairs in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.input_referred.len()
    }

    /// `true` when the chunk carries no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.input_referred.is_empty()
    }
}

/// Whole-stream accounting returned by [`StreamSimulator::finish`] — the
/// scalar half of [`SimOutput`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Output sample rate (Hz).
    pub fs_out: f64,
    /// Per-block power estimate (W). Static plans reproduce the batch
    /// breakdown; compound plans scale the transmitter entry by the
    /// *measured* retry factor of the time-varying link.
    pub power: PowerBreakdown,
    /// Capacitor area in `C_u,min` multiples.
    pub area_units: f64,
    /// Data words handed to the transmitter.
    pub words: u64,
    /// Link accounting when a packet-loss fault was armed.
    pub link: Option<LinkStats>,
    /// Total output samples emitted across every chunk.
    pub out_samples: u64,
}

/// Streaming link state for the baseline chain: words buffer until a
/// packet fills, then one bounded-retry decision is drawn — the same
/// packet boundaries and RNG order as
/// [`LinkFault::apply`] over the whole record.
#[derive(Debug, Clone)]
struct StreamLink {
    rng: Rng64,
    cur: LinkFault,
    /// `true` in static mode: parameters never change mid-stream.
    fixed: bool,
    buf: Vec<f64>,
    held: f64,
    stats: LinkStats,
    /// Absolute index of the first word in `buf`.
    word_index: u64,
}

impl StreamLink {
    fn push_word(
        &mut self,
        w: f64,
        compound: Option<&CompoundPlan>,
        f_s: f64,
        gain: f64,
        out: &mut Vec<f64>,
    ) {
        if self.buf.is_empty() && !self.fixed {
            if let Some(plan) = compound {
                self.cur = link_params_at(plan, self.word_index as f64 / f_s);
            }
        }
        self.buf.push(w);
        if self.buf.len() >= self.cur.packet_words.max(1) {
            self.decide_packet(gain, out);
        }
    }

    /// Draws the bounded-retry outcome for the buffered packet and emits
    /// its words with hold-last-delivered concealment.
    fn decide_packet(&mut self, gain: f64, out: &mut Vec<f64>) {
        if self.buf.is_empty() {
            return;
        }
        let p = self.cur.loss_prob.clamp(0.0, 1.0);
        let len = self.buf.len() as u64;
        self.stats.packets += 1;
        self.stats.data_words += len;
        let mut attempts = 0u64;
        let mut ok = false;
        while attempts <= u64::from(self.cur.max_retries) {
            attempts += 1;
            if !self.rng.chance(p) {
                ok = true;
                break;
            }
        }
        self.stats.tx_words += attempts * len;
        if !ok {
            self.stats.lost_packets += 1;
        }
        for &v in &self.buf {
            if ok {
                self.held = v;
            }
            out.push(self.held / gain);
        }
        self.buf.clear();
        self.word_index += len;
    }
}

/// Baseline (Nyquist) back end: S&H → SAR ADC → link.
#[derive(Debug, Clone)]
struct BaselineBack {
    sampler: Sampler,
    adc: SarAdc,
    /// Next output sample index to decide.
    next_i: u64,
    /// Acquisition instant decided (draws consumed) but awaiting proxy
    /// data that covers it.
    pending_t: Option<f64>,
    held: f64,
    rms_acc: f64,
    rms_n: u64,
    words: u64,
    link: Option<StreamLink>,
    /// Epoch of the last sampler/ADC parameter update (compound mode).
    sample_epoch: u64,
    f_s: f64,
    f_ct: f64,
    v_fs: f64,
    gain: f64,
}

impl BaselineBack {
    fn drain(&mut self, amplified: &Ring, mode: &FaultMode, finished: bool, out: &mut Vec<f64>) {
        let n_out = (amplified.len() as f64 / self.f_ct * self.f_s).floor() as u64;
        loop {
            if self.pending_t.is_none() {
                if self.next_i >= n_out {
                    break;
                }
                let t0 = self.next_i as f64 / self.f_s;
                if let FaultMode::Compound { plan, members } = mode {
                    if (members.clock || members.adc) && plan.epoch_index(t0) != self.sample_epoch {
                        self.sample_epoch = plan.epoch_index(t0);
                        let p = plan.materialize_at_epoch(self.sample_epoch);
                        if members.clock {
                            self.sampler
                                .set_clock_fault_params(p.clock.unwrap_or(NOOP_CLOCK));
                        }
                        if members.adc {
                            self.adc.inject_stuck_bit(p.adc);
                        }
                    }
                }
                match self.sampler.acquisition_instant(self.next_i) {
                    Some(t) => self.pending_t = Some(t),
                    // Dropped conversion: conceal with the held value and
                    // fall through to the common digitising tail.
                    None => {
                        self.convert(self.held, mode, out);
                        continue;
                    }
                }
            }
            if let Some(t) = self.pending_t {
                match amplified.interp_at(self.f_ct, t.max(0.0), finished) {
                    Some(v) => {
                        self.pending_t = None;
                        self.held = self.sampler.acquire(v);
                        self.convert(self.held, mode, out);
                    }
                    None => break,
                }
            }
        }
        if finished {
            if let Some(link) = &mut self.link {
                link.decide_packet(self.gain, out);
            }
        }
    }

    /// Digitises one sampled value: RMS accounting, ADC, link. Mirrors the
    /// batch order (the whole-record RMS sum accumulates left-to-right
    /// before the ADC in the batch path, but the two use disjoint state so
    /// interleaving per sample keeps both bit-identical).
    fn convert(&mut self, v: f64, mode: &FaultMode, out: &mut Vec<f64>) {
        let shifted = v + self.v_fs / 2.0;
        self.rms_acc += shifted * shifted;
        self.rms_n += 1;
        let code = self.adc.process(v);
        self.words += 1;
        let compound = match mode {
            FaultMode::Compound { plan, .. } => Some(plan),
            FaultMode::Static => None,
        };
        match &mut self.link {
            Some(link) => link.push_word(code, compound, self.f_s, self.gain, out),
            None => out.push(code / self.gain),
        }
        self.next_i += 1;
    }

    fn min_ct_needed(&self) -> u64 {
        let pos = self
            .pending_t
            .unwrap_or(self.next_i as f64 / self.f_s)
            .max(0.0)
            * self.f_ct;
        (pos.floor() as u64).saturating_sub(CT_GUARD)
    }
}

/// The CS chain's clock-fault state, mirroring the inline jitter/dropout
/// path of the batch simulator (the encoder's sample caps take the
/// acquisition, so there is no kT/C-noising [`Sampler`] here).
#[derive(Debug, Clone)]
struct CsClock {
    fault: ClockFault,
    jitter_rng: Gaussian,
    drop_rng: Rng64,
}

/// Compressive-sensing back end: frame assembly → charge-sharing encoder →
/// SAR ADC → per-frame link erasures → batched OMP decode.
#[derive(Debug, Clone)]
struct CsBack {
    cs: CsConfig,
    art: Arc<DictionaryArtifacts>,
    encoder: ChargeSharingEncoder,
    adc: SarAdc,
    clock: Option<CsClock>,
    tech: TechnologyParams,
    design: DesignParams,
    next_i: u64,
    pending_t: Option<f64>,
    held: f64,
    frame_buf: Vec<f64>,
    frames: Vec<Vec<f64>>,
    omp_cfgs: Vec<OmpConfig>,
    frames_encoded: u64,
    noise_norm: f64,
    rms_acc: f64,
    rms_n: u64,
    words: u64,
    link: Option<(LinkFault, Rng64)>,
    link_stats: Option<LinkStats>,
    threads: usize,
    /// Epoch of the last clock parameter update (compound mode).
    clock_epoch: u64,
    /// Epoch of the last encoder/ADC/link parameter update (compound mode).
    frame_epoch: u64,
    f_s: f64,
    f_ct: f64,
    v_fs: f64,
    gain: f64,
}

impl CsBack {
    fn drain(&mut self, amplified: &Ring, mode: &FaultMode, finished: bool, out: &mut Vec<f64>) {
        let n_samples = (amplified.len() as f64 / self.f_ct * self.f_s).floor() as u64;
        loop {
            if self.pending_t.is_none() {
                if self.next_i >= n_samples {
                    break;
                }
                let t0 = self.next_i as f64 / self.f_s;
                if let FaultMode::Compound { plan, members } = mode {
                    if members.clock && plan.epoch_index(t0) != self.clock_epoch {
                        self.clock_epoch = plan.epoch_index(t0);
                        let p = plan.materialize_at_epoch(self.clock_epoch);
                        if let Some(c) = &mut self.clock {
                            c.fault = p.clock.unwrap_or(NOOP_CLOCK);
                        }
                    }
                }
                if let Some(c) = &mut self.clock {
                    let mut t = t0;
                    if c.fault.jitter_periods > 0.0 {
                        t += c
                            .jitter_rng
                            .sample_scaled(c.fault.jitter_periods / self.f_s);
                    }
                    if c.drop_rng.chance(c.fault.drop_prob) {
                        // Dropped acquisition: the sample cap keeps its
                        // previous charge.
                        let held = self.held;
                        self.take_sample(held, mode, out);
                        continue;
                    }
                    self.pending_t = Some(t);
                } else {
                    self.pending_t = Some(t0);
                }
            }
            if let Some(t) = self.pending_t {
                match amplified.interp_at(self.f_ct, t.max(0.0), finished) {
                    Some(v) => {
                        self.pending_t = None;
                        self.held = v;
                        self.take_sample(v, mode, out);
                    }
                    None => break,
                }
            }
        }
        if finished {
            // A trailing partial frame never reaches the encoder (the batch
            // path only encodes `chunks_exact(N_Φ)`).
            self.frame_buf.clear();
            self.flush_decode(out);
        }
    }

    fn take_sample(&mut self, v: f64, mode: &FaultMode, out: &mut Vec<f64>) {
        self.frame_buf.push(v);
        self.next_i += 1;
        if self.frame_buf.len() >= self.cs.n_phi {
            self.encode_frame(mode, out);
        }
    }

    fn encode_frame(&mut self, mode: &FaultMode, out: &mut Vec<f64>) {
        if let FaultMode::Compound { plan, members } = mode {
            let t = (self.frames_encoded * self.cs.n_phi as u64) as f64 / self.f_s;
            if (members.leakage || members.adc || members.link)
                && plan.epoch_index(t) != self.frame_epoch
            {
                self.frame_epoch = plan.epoch_index(t);
                let p = plan.materialize_at_epoch(self.frame_epoch);
                if members.leakage {
                    self.encoder
                        .inject_leakage_fault(p.leakage, &self.tech, &self.design);
                }
                if members.adc {
                    self.adc.inject_stuck_bit(p.adc);
                }
                if members.link {
                    if let Some((params, _)) = &mut self.link {
                        *params = p.link.unwrap_or(NOOP_LINK);
                    }
                }
            }
        }
        let measurements = self.encoder.encode_frame(&self.frame_buf);
        let mut digitised: Vec<f64> = measurements.iter().map(|&v| self.adc.process(v)).collect();
        self.words += digitised.len() as u64;
        for &v in &digitised {
            self.rms_acc += (v + self.v_fs / 2.0).powi(2);
            self.rms_n += 1;
        }
        if let Some((params, rng)) = &mut self.link {
            let (delivered, stats) = params.apply(digitised.len(), rng);
            for (v, ok) in digitised.iter_mut().zip(&delivered) {
                if !*ok {
                    *v = 0.0;
                }
            }
            self.link_stats
                .get_or_insert_with(LinkStats::default)
                .accumulate(&stats);
        }
        let y_norm = efficsense_cs::linalg::norm2(&digitised).max(1e-300);
        self.omp_cfgs.push(OmpConfig {
            sparsity: self.cs.omp_sparsity,
            residual_tol: (self.noise_norm / y_norm).clamp(1e-4, 0.9),
        });
        self.frames.push(digitised);
        self.frames_encoded += 1;
        self.frame_buf.clear();
        if self.frames.len() >= DECODE_BATCH {
            self.flush_decode(out);
        }
    }

    /// Decodes the buffered frames in one batched call. The batch decoder
    /// is per-frame independent, so flushing every [`DECODE_BATCH`] frames
    /// is bit-identical to the batch path's single whole-record call.
    fn flush_decode(&mut self, out: &mut Vec<f64>) {
        if self.frames.is_empty() {
            return;
        }
        let _chunk_span = efficsense_obs::span!("stream.chunk");
        let decoded = reconstruct_batch(&self.art, &self.frames, &self.omp_cfgs, self.threads);
        for xh in decoded {
            for v in xh {
                out.push(v / self.gain);
            }
        }
        self.frames.clear();
        self.omp_cfgs.clear();
    }

    fn min_ct_needed(&self) -> u64 {
        let pos = self
            .pending_t
            .unwrap_or(self.next_i as f64 / self.f_s)
            .max(0.0)
            * self.f_ct;
        (pos.floor() as u64).saturating_sub(CT_GUARD)
    }
}

#[derive(Debug, Clone)]
enum BackEnd {
    Baseline(Box<BaselineBack>),
    Cs(Box<CsBack>),
}

impl BackEnd {
    fn drain(&mut self, amplified: &Ring, mode: &FaultMode, finished: bool, out: &mut Vec<f64>) {
        match self {
            BackEnd::Baseline(b) => b.drain(amplified, mode, finished, out),
            BackEnd::Cs(b) => b.drain(amplified, mode, finished, out),
        }
    }

    fn min_ct_needed(&self) -> u64 {
        match self {
            BackEnd::Baseline(b) => b.min_ct_needed(),
            BackEnd::Cs(b) => b.min_ct_needed(),
        }
    }

    /// `(adc_in_rms, words, link_stats)` for the summary.
    fn summary_parts(&self) -> (f64, u64, Option<LinkStats>) {
        let (acc, n, words, link) = match self {
            BackEnd::Baseline(b) => (
                b.rms_acc,
                b.rms_n,
                b.words,
                b.link.as_ref().map(|l| l.stats),
            ),
            BackEnd::Cs(b) => (b.rms_acc, b.rms_n, b.words, b.link_stats),
        };
        let rms = if n > 0 { (acc / n as f64).sqrt() } else { 0.0 };
        (rms, words, link)
    }
}

/// Streaming front for a [`Simulator`]: feed input in chunks of any size
/// with [`StreamSimulator::push`], collect aligned
/// (`input_referred`, `reference`) pairs as they become final, and close
/// the stream with [`StreamSimulator::finish`].
#[derive(Debug, Clone)]
pub struct StreamSimulator {
    sim: Simulator,
    mode: FaultMode,
    fs_in: f64,
    f_ct: f64,
    f_s: f64,
    raw: Ring,
    /// Continuous-time proxy samples emitted so far.
    next_ct: u64,
    lna: Lna,
    /// Epoch of the last LNA parameter update (compound mode).
    lna_epoch: u64,
    amplified: Ring,
    back: BackEnd,
    /// Final input-referred values not yet paired with a reference.
    pending_out: Vec<f64>,
    /// Final reference values not yet paired.
    pending_ref: Vec<f64>,
    /// Total output samples produced (drained or pending).
    out_produced: u64,
    /// Next reference index to interpolate.
    ref_next: u64,
    started_ns: u64,
    last_progress_ns: u64,
}

impl StreamSimulator {
    /// Opens a stream that mirrors `sim`'s batch behaviour — including its
    /// static fault plan, if any — for one record at `fs_in` Hz with the
    /// given `noise_seed`. Concatenated chunk output is bit-identical to
    /// [`Simulator::run`] on the whole record.
    ///
    /// # Panics
    ///
    /// Panics if `fs_in` is not positive.
    #[must_use]
    pub fn new(sim: &Simulator, fs_in: f64, noise_seed: u64) -> Self {
        Self::build(sim, fs_in, noise_seed, FaultMode::Static)
    }

    /// Opens a stream driven by a compound, time-varying fault plan. The
    /// simulator's own static plan is ignored; every member fault of
    /// `plan` is armed up front with its private stream, and parameters
    /// follow the severity profiles on the plan's epoch grid. Output is
    /// invariant to chunk size and decode thread count.
    ///
    /// # Panics
    ///
    /// Panics if `fs_in` is not positive.
    #[must_use]
    pub fn with_compound(
        sim: &Simulator,
        fs_in: f64,
        noise_seed: u64,
        plan: &CompoundPlan,
    ) -> Self {
        let members = members_of(plan);
        Self::build(
            sim,
            fs_in,
            noise_seed,
            FaultMode::Compound {
                plan: plan.clone(),
                members,
            },
        )
    }

    fn build(sim: &Simulator, fs_in: f64, noise_seed: u64, mode: FaultMode) -> Self {
        assert!(fs_in > 0.0, "input rate must be positive");
        let cfg = &sim.cfg;
        let f_ct = cfg.f_ct_hz();
        let f_s = cfg.design.f_sample_hz();
        let mut lna = Lna::from_design(
            &cfg.design,
            cfg.lna.gain,
            cfg.lna.noise_floor_vrms,
            cfg.lna.k3,
            f_ct,
            cfg.seed ^ noise_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        match &mode {
            FaultMode::Static => {
                if let Some(plan) = &sim.plan {
                    lna.inject_rail_fault(plan.lna, plan.stream(record_salt(SALT_LNA, noise_seed)));
                }
            }
            FaultMode::Compound { plan, members } => {
                if members.lna {
                    let epoch0 = plan.materialize_at_epoch(0);
                    lna.install_rail_fault(
                        epoch0.lna.unwrap_or(NOOP_RAIL),
                        epoch0.stream(record_salt(SALT_LNA, noise_seed)),
                    );
                }
            }
        }
        let back = match &sim.arch {
            ArchState::Baseline => BackEnd::Baseline(Box::new(Self::build_baseline(
                sim, noise_seed, &mode, f_ct, f_s,
            ))),
            ArchState::Cs(state) => BackEnd::Cs(Box::new(Self::build_cs(
                sim, state, noise_seed, &mode, f_ct, f_s,
            ))),
        };
        let started_ns = efficsense_obs::global().now_ns();
        Self {
            sim: sim.clone(),
            mode,
            fs_in,
            f_ct,
            f_s,
            raw: Ring::default(),
            next_ct: 0,
            lna,
            lna_epoch: 0,
            amplified: Ring::default(),
            back,
            pending_out: Vec::new(),
            pending_ref: Vec::new(),
            out_produced: 0,
            ref_next: 0,
            started_ns,
            last_progress_ns: started_ns,
        }
    }

    fn build_baseline(
        sim: &Simulator,
        noise_seed: u64,
        mode: &FaultMode,
        f_ct: f64,
        f_s: f64,
    ) -> BaselineBack {
        let cfg = &sim.cfg;
        let mut sampler = Sampler::new(f_s, sim.sh_cap_f(), 0.0, cfg.seed ^ noise_seed ^ 0x5A5A);
        let mut adc = SarAdc::new(
            cfg.design.n_bits,
            cfg.design.v_fs,
            cfg.adc.c_u_f,
            cfg.adc.comparator_noise_v,
            cfg.adc.comparator_offset_v,
            &cfg.tech,
            cfg.seed,
        );
        let mut link = None;
        match mode {
            FaultMode::Static => {
                if let Some(plan) = &sim.plan {
                    sampler.inject_clock_fault(
                        plan.clock,
                        plan.stream(record_salt(SALT_CLOCK, noise_seed)),
                    );
                    adc.inject_stuck_bit(plan.adc);
                    if let Some(l) = plan.link.filter(|l| !l.is_noop()) {
                        link = Some(StreamLink {
                            rng: Rng64::new(plan.stream(record_salt(SALT_LINK, noise_seed))),
                            cur: l,
                            fixed: true,
                            buf: Vec::new(),
                            held: 0.0,
                            stats: LinkStats::default(),
                            word_index: 0,
                        });
                    }
                }
            }
            FaultMode::Compound { plan, members } => {
                let epoch0 = plan.materialize_at_epoch(0);
                if members.clock {
                    sampler.install_clock_fault(
                        epoch0.clock.unwrap_or(NOOP_CLOCK),
                        epoch0.stream(record_salt(SALT_CLOCK, noise_seed)),
                    );
                }
                if members.adc {
                    adc.inject_stuck_bit(epoch0.adc);
                }
                if members.link {
                    link = Some(StreamLink {
                        rng: Rng64::new(epoch0.stream(record_salt(SALT_LINK, noise_seed))),
                        cur: epoch0.link.unwrap_or(NOOP_LINK),
                        fixed: false,
                        buf: Vec::new(),
                        held: 0.0,
                        stats: LinkStats::default(),
                        word_index: 0,
                    });
                }
            }
        }
        BaselineBack {
            sampler,
            adc,
            next_i: 0,
            pending_t: None,
            held: 0.0,
            rms_acc: 0.0,
            rms_n: 0,
            words: 0,
            link,
            sample_epoch: 0,
            f_s,
            f_ct,
            v_fs: cfg.design.v_fs,
            gain: cfg.lna.gain,
        }
    }

    fn build_cs(
        sim: &Simulator,
        state: &crate::simulate::CsState,
        noise_seed: u64,
        mode: &FaultMode,
        f_ct: f64,
        f_s: f64,
    ) -> CsBack {
        let cfg = &sim.cfg;
        let cs = &state.cs;
        let mut encoder = ChargeSharingEncoder::new(
            state.phi.as_ref().clone(),
            cs.c_sample_f,
            cs.c_hold_f,
            1.0 / f_s,
            cs.imperfections,
            &cfg.tech,
            &cfg.design,
            cfg.seed ^ noise_seed.rotate_left(17),
        );
        let mut adc = SarAdc::new(
            cfg.design.n_bits,
            cfg.design.v_fs,
            cfg.adc.c_u_f,
            cfg.adc.comparator_noise_v,
            cfg.adc.comparator_offset_v,
            &cfg.tech,
            cfg.seed,
        );
        let mut clock = None;
        let mut link = None;
        match mode {
            FaultMode::Static => {
                if let Some(plan) = &sim.plan {
                    encoder.inject_leakage_fault(plan.leakage, &cfg.tech, &cfg.design);
                    adc.inject_stuck_bit(plan.adc);
                    if let Some(c) = plan.clock.filter(|c| !c.is_noop()) {
                        let seed = plan.stream(record_salt(SALT_CLOCK, noise_seed));
                        clock = Some(CsClock {
                            fault: c,
                            jitter_rng: Gaussian::new(seed ^ 0x0C10_CC00),
                            drop_rng: Rng64::new(seed ^ 0x0D20_9ED5),
                        });
                    }
                    if let Some(l) = plan.link.filter(|l| !l.is_noop()) {
                        link = Some((
                            l,
                            Rng64::new(plan.stream(record_salt(SALT_LINK, noise_seed))),
                        ));
                    }
                }
            }
            FaultMode::Compound { plan, members } => {
                let epoch0 = plan.materialize_at_epoch(0);
                if members.leakage {
                    encoder.inject_leakage_fault(epoch0.leakage, &cfg.tech, &cfg.design);
                }
                if members.adc {
                    adc.inject_stuck_bit(epoch0.adc);
                }
                if members.clock {
                    let seed = epoch0.stream(record_salt(SALT_CLOCK, noise_seed));
                    clock = Some(CsClock {
                        fault: epoch0.clock.unwrap_or(NOOP_CLOCK),
                        jitter_rng: Gaussian::new(seed ^ 0x0C10_CC00),
                        drop_rng: Rng64::new(seed ^ 0x0D20_9ED5),
                    });
                }
                if members.link {
                    link = Some((
                        epoch0.link.unwrap_or(NOOP_LINK),
                        Rng64::new(epoch0.stream(record_salt(SALT_LINK, noise_seed))),
                    ));
                }
            }
        }
        // Same discrepancy-principle stopping threshold as the batch path.
        let sampled_noise = cfg.lna.noise_floor_vrms * cfg.lna.gain;
        let ktc_var = if cs.imperfections.ktc_noise {
            efficsense_power::kt() / cs.c_sample_f
        } else {
            0.0
        };
        let lsb = cfg.design.lsb();
        let meas_noise_var =
            (sampled_noise * sampled_noise + ktc_var) * state.art.mean_row_w2 + lsb * lsb / 12.0;
        let noise_norm = (meas_noise_var * cs.m as f64).sqrt();
        CsBack {
            cs: cs.clone(),
            art: state.art.clone(),
            encoder,
            adc,
            clock,
            tech: cfg.tech.clone(),
            design: cfg.design.clone(),
            next_i: 0,
            pending_t: None,
            held: 0.0,
            frame_buf: Vec::new(),
            frames: Vec::new(),
            omp_cfgs: Vec::new(),
            frames_encoded: 0,
            noise_norm,
            rms_acc: 0.0,
            rms_n: 0,
            words: 0,
            link,
            link_stats: None,
            threads: sim.decode_threads,
            clock_epoch: 0,
            frame_epoch: 0,
            f_s,
            f_ct,
            v_fs: cfg.design.v_fs,
            gain: cfg.lna.gain,
        }
    }

    /// Feeds the next chunk of raw input (any length, including empty) and
    /// returns every (acquired, reference) pair that became final.
    pub fn push(&mut self, input: &[f64]) -> StreamChunk {
        for &v in input {
            self.raw.push(v);
        }
        self.advance(false);
        self.prune();
        self.take_pairs()
    }

    /// Closes the stream: resolves every end-of-record clamp, flushes the
    /// final link packet and decode batch, and returns the last chunk with
    /// the whole-stream summary.
    pub fn finish(mut self) -> (StreamChunk, StreamSummary) {
        self.advance(true);
        let chunk = self.take_pairs();
        let (adc_in_rms, words, link) = self.back.summary_parts();
        let mut power = {
            let _power_span = efficsense_obs::span!("stage.power");
            self.sim.power_breakdown(adc_in_rms)
        };
        if matches!(self.mode, FaultMode::Compound { .. }) {
            // The static path scales TX analytically from the plan; a
            // time-varying link has no single expected-attempts figure, so
            // use the measured retry inflation instead.
            if let Some(stats) = &link {
                let tx = efficsense_power::BlockKind::Transmitter;
                let extra = power.get(tx) * (stats.retry_factor() - 1.0);
                power.add(tx, extra);
            }
        }
        let summary = StreamSummary {
            fs_out: self.f_s,
            power,
            area_units: self.sim.area_units(),
            words,
            link,
            out_samples: self.out_produced,
        };
        (chunk, summary)
    }

    /// Convenience wrapper proving the contract: runs `input` through the
    /// stream in `chunk_len`-sample pushes and assembles a [`SimOutput`]
    /// directly comparable with [`Simulator::run`]. An empty `input`
    /// yields an empty output (the batch path rejects empty records).
    #[must_use]
    pub fn run_chunked(
        sim: &Simulator,
        input: &[f64],
        fs_in: f64,
        noise_seed: u64,
        chunk_len: usize,
    ) -> SimOutput {
        let mut stream = Self::new(sim, fs_in, noise_seed);
        let mut input_referred = Vec::new();
        let mut reference = Vec::new();
        for chunk in input.chunks(chunk_len.max(1)) {
            let got = stream.push(chunk);
            input_referred.extend(got.input_referred);
            reference.extend(got.reference);
        }
        let (last, summary) = stream.finish();
        input_referred.extend(last.input_referred);
        reference.extend(last.reference);
        SimOutput {
            input_referred,
            reference,
            fs_out: summary.fs_out,
            power: summary.power,
            area_units: summary.area_units,
            words: summary.words,
            link: summary.link,
        }
    }

    /// Total output samples produced so far (drained and pending).
    #[must_use]
    pub fn out_samples(&self) -> u64 {
        self.out_produced
    }

    /// Advances every stage as far as the available data allows.
    fn advance(&mut self, finished: bool) {
        // Stage 1: resample the raw input onto the continuous-time proxy
        // grid and amplify. Eager emission: a proxy sample is final once
        // its interpolation neighbourhood is interior (or the stream has
        // finished and the edge clamp is known).
        let n_ct = (self.raw.len() as f64 / self.fs_in * self.f_ct).round() as u64;
        while self.next_ct < n_ct {
            let t = self.next_ct as f64 / self.f_ct;
            let Some(v) = self.raw.interp_at(self.fs_in, t, finished) else {
                break;
            };
            if let FaultMode::Compound { plan, members } = &self.mode {
                if members.lna && plan.epoch_index(t) != self.lna_epoch {
                    self.lna_epoch = plan.epoch_index(t);
                    let p = plan.materialize_at_epoch(self.lna_epoch);
                    self.lna.set_rail_fault_params(p.lna.unwrap_or(NOOP_RAIL));
                }
            }
            let amplified = self.lna.process(v);
            efficsense_dsp::approx::debug_assert_all_finite(
                std::slice::from_ref(&amplified),
                "stream: LNA output",
            );
            self.amplified.push(amplified);
            self.next_ct += 1;
        }
        // Stage 2: architecture back end.
        let before = self.out_produced;
        let pending_before = self.pending_out.len();
        self.back
            .drain(&self.amplified, &self.mode, finished, &mut self.pending_out);
        self.out_produced += (self.pending_out.len() - pending_before) as u64;
        self.heartbeat(before);
        // Stage 3: the clean reference, one value per produced output.
        while self.ref_next < self.out_produced {
            let t = self.ref_next as f64 / self.f_s;
            let Some(v) = self.raw.interp_at(self.fs_in, t, finished) else {
                break;
            };
            self.pending_ref.push(v);
            self.ref_next += 1;
        }
    }

    fn heartbeat(&mut self, before: u64) {
        let crossings = self.out_produced / HEARTBEAT_EVERY - before / HEARTBEAT_EVERY;
        if crossings == 0 {
            return;
        }
        efficsense_obs::counter!("stream.heartbeat").add(crossings);
        let obs = efficsense_obs::global();
        let now_ns = obs.now_ns();
        if obs.sink_enabled() {
            let ev = efficsense_obs::TraceEvent::new(now_ns, "heartbeat", "stream.progress")
                .field(
                    "out_samples",
                    efficsense_obs::FieldValue::U64(self.out_produced),
                )
                .field(
                    "raw_samples",
                    efficsense_obs::FieldValue::U64(self.raw.len()),
                );
            obs.emit(&ev);
        }
        const PROGRESS_NS: u64 = 10_000_000_000;
        if now_ns.saturating_sub(self.started_ns) > PROGRESS_NS
            && now_ns.saturating_sub(self.last_progress_ns) > PROGRESS_NS
        {
            self.last_progress_ns = now_ns;
            eprintln!(
                "stream: {} output samples ({} raw samples in)",
                self.out_produced,
                self.raw.len()
            );
        }
    }

    /// Hands out the aligned prefix of the two pending queues.
    fn take_pairs(&mut self) -> StreamChunk {
        let n = self.pending_out.len().min(self.pending_ref.len());
        let chunk = StreamChunk {
            input_referred: self.pending_out.drain(..n).collect(),
            reference: self.pending_ref.drain(..n).collect(),
        };
        efficsense_dsp::approx::debug_assert_all_finite(
            &chunk.input_referred,
            "stream: input-referred output",
        );
        chunk
    }

    /// Bounds memory: drops ring prefixes no consumer can revisit.
    fn prune(&mut self) {
        let ct_pos = (self.next_ct as f64 / self.f_ct * self.fs_in).floor() as u64;
        let ref_pos = (self.ref_next as f64 / self.f_s * self.fs_in).floor() as u64;
        self.raw
            .prune_below(ct_pos.min(ref_pos).saturating_sub(RAW_GUARD));
        self.amplified.prune_below(self.back.min_ct_needed());
    }
}
