//! Pareto-front extraction and constrained architecture selection.

use crate::sweep::SweepResult;
use efficsense_dsp::approx::total_eq;

/// Optimisation objective paired with power minimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximise the quality metric while minimising power.
    MaximizeMetric,
}

/// Returns the Pareto-optimal subset: points for which no other point has
/// both lower power and at least as high a metric (with one strictly better).
///
/// The front is sorted by ascending power, so it can be plotted directly as
/// the Fig. 7 trade-off curve; walking it answers "what is the cheapest
/// design achieving at least X?" (see [`optimal_under_constraint`]).
pub fn pareto_front(results: &[SweepResult], _objective: Objective) -> Vec<&SweepResult> {
    let mut front: Vec<&SweepResult> = Vec::new();
    for candidate in results {
        if !candidate.metric.is_finite() {
            continue;
        }
        let dominated = results.iter().any(|other| {
            !std::ptr::eq(other, candidate)
                && other.metric.is_finite()
                && other.power_w <= candidate.power_w
                && other.metric >= candidate.metric
                && (other.power_w < candidate.power_w || other.metric > candidate.metric)
        });
        if !dominated {
            front.push(candidate);
        }
    }
    front.sort_by(|a, b| a.power_w.total_cmp(&b.power_w));
    front.dedup_by(|a, b| total_eq(a.power_w, b.power_w) && total_eq(a.metric, b.metric));
    front
}

/// The minimum-power point meeting `min_metric` (the paper's "optimal design
/// solution": lowest power with accuracy ≥ 98 %).
pub fn optimal_under_constraint(results: &[SweepResult], min_metric: f64) -> Option<&SweepResult> {
    results
        .iter()
        .filter(|r| r.metric >= min_metric)
        .min_by(|a, b| a.power_w.total_cmp(&b.power_w))
}

/// Like [`optimal_under_constraint`] with an additional area cap in
/// `C_u,min` units (the Fig. 10 search).
pub fn optimal_under_area_constraint(
    results: &[SweepResult],
    min_metric: f64,
    max_area_units: f64,
) -> Option<&SweepResult> {
    results
        .iter()
        .filter(|r| r.metric >= min_metric && r.area_units <= max_area_units)
        .min_by(|a, b| a.power_w.total_cmp(&b.power_w))
}

/// Filters results to those within an area cap, preserving order — used to
/// rebuild per-constraint Pareto fronts for Fig. 10.
pub fn within_area(results: &[SweepResult], max_area_units: f64) -> Vec<SweepResult> {
    results
        .iter()
        .filter(|r| r.area_units <= max_area_units)
        .cloned()
        .collect()
}

/// Three-objective Pareto front: minimise power, minimise area, maximise the
/// metric. A point survives unless some other point is at least as good on
/// all three axes and strictly better on one.
///
/// This generalises the paper's Fig. 10 (which re-runs the two-objective
/// search under a ladder of area caps): the 3-D front contains the union of
/// all such constrained fronts.
pub fn pareto_front_3d(results: &[SweepResult]) -> Vec<&SweepResult> {
    let mut front: Vec<&SweepResult> = Vec::new();
    for candidate in results {
        if !candidate.metric.is_finite() {
            continue;
        }
        let dominated = results.iter().any(|other| {
            !std::ptr::eq(other, candidate)
                && other.metric.is_finite()
                && other.power_w <= candidate.power_w
                && other.area_units <= candidate.area_units
                && other.metric >= candidate.metric
                && (other.power_w < candidate.power_w
                    || other.area_units < candidate.area_units
                    || other.metric > candidate.metric)
        });
        if !dominated {
            front.push(candidate);
        }
    }
    front.sort_by(|a, b| a.power_w.total_cmp(&b.power_w));
    front.dedup_by(|a, b| {
        total_eq(a.power_w, b.power_w)
            && total_eq(a.metric, b.metric)
            && total_eq(a.area_units, b.area_units)
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Architecture;
    use crate::space::DesignPoint;
    use efficsense_power::PowerBreakdown;

    fn res(power_uw: f64, metric: f64, area: f64) -> SweepResult {
        SweepResult {
            point: DesignPoint {
                architecture: Architecture::Baseline,
                lna_noise_vrms: 1e-6,
                n_bits: 8,
                m: None,
                s: None,
                c_hold_f: None,
            },
            metric,
            power_w: power_uw * 1e-6,
            breakdown: PowerBreakdown::new(),
            area_units: area,
        }
    }

    #[test]
    fn dominated_points_removed() {
        let results = vec![
            res(1.0, 0.90, 100.0),
            res(2.0, 0.95, 100.0),
            res(3.0, 0.93, 100.0), // dominated by the 2 µW point
            res(4.0, 0.99, 100.0),
        ];
        let front = pareto_front(&results, Objective::MaximizeMetric);
        let powers: Vec<f64> = front.iter().map(|r| r.power_w * 1e6).collect();
        assert_eq!(powers, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn front_sorted_by_power() {
        let results = vec![
            res(5.0, 0.99, 0.0),
            res(1.0, 0.90, 0.0),
            res(3.0, 0.95, 0.0),
        ];
        let front = pareto_front(&results, Objective::MaximizeMetric);
        for w in front.windows(2) {
            assert!(w[0].power_w <= w[1].power_w);
            assert!(w[0].metric <= w[1].metric);
        }
    }

    #[test]
    fn constraint_selects_min_power_feasible() {
        let results = vec![
            res(1.0, 0.90, 100.0),
            res(2.5, 0.981, 100.0),
            res(8.8, 0.995, 100.0),
        ];
        let opt = optimal_under_constraint(&results, 0.98).expect("feasible");
        assert!((opt.power_w * 1e6 - 2.5).abs() < 1e-9);
        assert!(optimal_under_constraint(&results, 0.999).is_none());
    }

    #[test]
    fn area_constraint_excludes_large_designs() {
        let results = vec![res(1.0, 0.99, 1e5), res(5.0, 0.99, 100.0)];
        let opt = optimal_under_area_constraint(&results, 0.98, 1000.0).expect("feasible");
        assert!((opt.power_w * 1e6 - 5.0).abs() < 1e-9);
        let filtered = within_area(&results, 1000.0);
        assert_eq!(filtered.len(), 1);
    }

    #[test]
    fn nan_metric_excluded_from_front() {
        let results = vec![res(1.0, f64::NAN, 0.0), res(2.0, 0.9, 0.0)];
        let front = pareto_front(&results, Objective::MaximizeMetric);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].metric, 0.9);
    }

    #[test]
    fn identical_points_dedup() {
        let results = vec![res(1.0, 0.9, 0.0), res(1.0, 0.9, 0.0)];
        let front = pareto_front(&results, Objective::MaximizeMetric);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn front_3d_keeps_area_tradeoffs() {
        // Same power/metric but one is smaller: the larger is dominated.
        // A point that is worse on power but better on area survives.
        let results = vec![
            res(1.0, 0.9, 100.0),
            res(1.0, 0.9, 50.0),  // dominates the 100-area twin
            res(2.0, 0.9, 10.0),  // more power, much smaller → survives
            res(3.0, 0.95, 10.0), // better metric at same area → survives
        ];
        let front = pareto_front_3d(&results);
        let areas: Vec<f64> = front.iter().map(|r| r.area_units).collect();
        assert_eq!(front.len(), 3);
        assert!(!areas.contains(&100.0), "dominated large-area twin removed");
    }

    #[test]
    fn front_3d_superset_of_2d_front() {
        let results = vec![
            res(1.0, 0.90, 1e5),
            res(2.0, 0.95, 100.0),
            res(3.0, 0.93, 10.0),
            res(4.0, 0.99, 1e5),
        ];
        let f2: Vec<(f64, f64)> = pareto_front(&results, Objective::MaximizeMetric)
            .iter()
            .map(|r| (r.power_w, r.metric))
            .collect();
        let f3: Vec<(f64, f64)> = pareto_front_3d(&results)
            .iter()
            .map(|r| (r.power_w, r.metric))
            .collect();
        for p in &f2 {
            assert!(f3.contains(p), "3-D front must contain the 2-D front");
        }
        // And the area axis rescues the (3.0, 0.93) point that 2-D discards.
        assert!(f3.contains(&(3.0e-6, 0.93)));
    }
}
