//! Design-space definition and enumeration (the sweep axes of Table III).

use crate::config::{Architecture, CsConfig, SystemConfig};

/// One evaluated point of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Which architecture this point instantiates.
    pub architecture: Architecture,
    /// LNA input-referred noise floor (V rms).
    pub lna_noise_vrms: f64,
    /// ADC resolution (bits).
    pub n_bits: u32,
    /// CS only: measurements per frame.
    pub m: Option<usize>,
    /// CS only: sensing-matrix column sparsity.
    pub s: Option<usize>,
    /// CS only: hold capacitor (F).
    pub c_hold_f: Option<f64>,
}

impl DesignPoint {
    /// Instantiates the full system configuration for this point, starting
    /// from `template` (which carries the fixed parameters).
    pub fn to_config(&self, template: &SystemConfig) -> SystemConfig {
        let mut cfg = template.clone();
        cfg.design.n_bits = self.n_bits;
        cfg.lna.noise_floor_vrms = self.lna_noise_vrms;
        cfg.cs = match self.architecture {
            Architecture::Baseline => None,
            Architecture::CompressiveSensing => {
                let base = template.cs.clone().unwrap_or_default();
                let m = self.m.unwrap_or(base.m);
                // OMP is only well-posed for supports well below M; cap the
                // decoder's sparsity budget at 2M/5 (≥ 8) so small-M points
                // don't overfit measurement noise.
                let omp_sparsity = base.omp_sparsity.min((2 * m / 5).max(8));
                Some(CsConfig {
                    m,
                    s: self.s.unwrap_or(base.s),
                    c_hold_f: self.c_hold_f.unwrap_or(base.c_hold_f),
                    omp_sparsity,
                    ..base
                })
            }
        };
        cfg
    }

    /// A short stable label for reports, e.g. `cs_n8_vn3.0u_m150_s2`.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}_n{}_vn{:.1}u",
            self.architecture,
            self.n_bits,
            self.lna_noise_vrms * 1e6
        );
        if let (Some(m), Some(sp)) = (self.m, self.s) {
            s.push_str(&format!("_m{m}_s{sp}"));
        }
        if let Some(ch) = self.c_hold_f {
            s.push_str(&format!("_ch{:.1}p", ch * 1e12));
        }
        s
    }
}

/// A grid design space over both architectures.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// LNA noise floors to sweep (V rms). Table III: 1–20 µV.
    pub lna_noise_vrms: Vec<f64>,
    /// ADC resolutions to sweep. Table III: 6–8 bits.
    pub n_bits: Vec<u32>,
    /// Include baseline points.
    pub include_baseline: bool,
    /// CS measurement counts. Table III: 75, 150, 192 (with N_Φ = 384).
    pub cs_m: Vec<usize>,
    /// CS column sparsities.
    pub cs_s: Vec<usize>,
    /// CS hold capacitors (F).
    pub cs_c_hold_f: Vec<f64>,
    /// Template carrying all non-swept parameters.
    pub template: SystemConfig,
}

impl DesignSpace {
    /// The paper's Table III search space: noise 1–20 µV (log grid),
    /// N ∈ {6, 7, 8}, M ∈ {75, 150, 192}, plus s and C_hold axes.
    pub fn paper_defaults() -> Self {
        Self {
            lna_noise_vrms: log_grid(1e-6, 20e-6, 8),
            n_bits: vec![6, 7, 8],
            include_baseline: true,
            cs_m: vec![75, 150, 192],
            cs_s: vec![2],
            cs_c_hold_f: vec![0.5e-12],
            template: SystemConfig::compressive(8, CsConfig::default()),
        }
    }

    /// A reduced space for fast CI runs (4 noise points, N ∈ {6, 8},
    /// M ∈ {75, 192}).
    pub fn reduced() -> Self {
        Self {
            lna_noise_vrms: log_grid(1e-6, 20e-6, 4),
            n_bits: vec![6, 8],
            cs_m: vec![75, 192],
            ..Self::paper_defaults()
        }
    }

    /// Enumerates every design point (baseline grid first, then CS grid).
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut pts = Vec::new();
        if self.include_baseline {
            for &vn in &self.lna_noise_vrms {
                for &n in &self.n_bits {
                    pts.push(DesignPoint {
                        architecture: Architecture::Baseline,
                        lna_noise_vrms: vn,
                        n_bits: n,
                        m: None,
                        s: None,
                        c_hold_f: None,
                    });
                }
            }
        }
        for &vn in &self.lna_noise_vrms {
            for &n in &self.n_bits {
                for &m in &self.cs_m {
                    for &s in &self.cs_s {
                        for &ch in &self.cs_c_hold_f {
                            pts.push(DesignPoint {
                                architecture: Architecture::CompressiveSensing,
                                lna_noise_vrms: vn,
                                n_bits: n,
                                m: Some(m),
                                s: Some(s),
                                c_hold_f: Some(ch),
                            });
                        }
                    }
                }
            }
        }
        pts
    }

    /// Number of points the grid will enumerate.
    pub fn len(&self) -> usize {
        let base = if self.include_baseline {
            self.lna_noise_vrms.len() * self.n_bits.len()
        } else {
            0
        };
        base + self.lna_noise_vrms.len()
            * self.n_bits.len()
            * self.cs_m.len()
            * self.cs_s.len()
            * self.cs_c_hold_f.len()
    }

    /// `true` when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Logarithmically spaced grid of `n` points from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi` and `n >= 2`.
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
    assert!(n >= 2, "need at least two grid points");
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_grid_endpoints() {
        let g = log_grid(1e-6, 20e-6, 8);
        assert_eq!(g.len(), 8);
        assert!((g[0] - 1e-6).abs() < 1e-12);
        assert!((g[7] - 20e-6).abs() < 1e-10);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn paper_space_point_count() {
        let s = DesignSpace::paper_defaults();
        // 8 noise x 3 bits baseline = 24; 8 x 3 x 3 x 1 x 1 CS = 72.
        assert_eq!(s.len(), 96);
        assert_eq!(s.points().len(), 96);
    }

    #[test]
    fn reduced_space_is_smaller() {
        let r = DesignSpace::reduced();
        assert!(r.len() < DesignSpace::paper_defaults().len());
        assert!(!r.is_empty());
    }

    #[test]
    fn points_instantiate_valid_configs() {
        let s = DesignSpace::reduced();
        for p in s.points() {
            let cfg = p.to_config(&s.template);
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.label()));
            assert_eq!(cfg.architecture(), p.architecture);
            assert_eq!(cfg.design.n_bits, p.n_bits);
            assert_eq!(cfg.lna.noise_floor_vrms, p.lna_noise_vrms);
        }
    }

    #[test]
    fn cs_points_carry_cs_axes() {
        let s = DesignSpace::paper_defaults();
        let cs_points: Vec<_> = s
            .points()
            .into_iter()
            .filter(|p| p.architecture == Architecture::CompressiveSensing)
            .collect();
        assert!(cs_points.iter().all(|p| p.m.is_some() && p.s.is_some()));
        let cfg = cs_points[0].to_config(&s.template);
        assert_eq!(cfg.cs.as_ref().map(|c| c.n_phi), Some(384));
    }

    #[test]
    fn labels_are_unique() {
        let s = DesignSpace::paper_defaults();
        let mut labels: Vec<String> = s.points().iter().map(|p| p.label()).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }

    #[test]
    #[should_panic(expected = "grid points")]
    fn log_grid_rejects_single_point() {
        let _ = log_grid(1.0, 2.0, 1);
    }
}
