//! Parallel design-space sweep engine.

use crate::config::Architecture;
use crate::goal::{DetectionGoal, GoalFunction, SnrGoal};
use crate::simulate::{SimOutput, Simulator};
use crate::space::{DesignPoint, DesignSpace};
use efficsense_power::PowerBreakdown;
use efficsense_signals::EegDataset;

/// Which quality metrics to compute per design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Reference-based SNR (Fig. 7a).
    Snr,
    /// Seizure detection accuracy (Fig. 7b). Trains a detector first.
    DetectionAccuracy,
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Metric to report in [`SweepResult::metric`].
    pub metric: Metric,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Detector training seed (DetectionAccuracy only).
    pub detector_seed: u64,
    /// Detection decision window in seconds (DetectionAccuracy only);
    /// 0 classifies whole records. Default 2 s — the windowed-segment scheme
    /// of the EEG deep-learning literature.
    pub epoch_s: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            metric: Metric::DetectionAccuracy,
            threads: 0,
            detector_seed: 0xD0D0,
            epoch_s: 2.0,
        }
    }
}

/// The evaluation of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The evaluated point.
    pub point: DesignPoint,
    /// Quality metric (higher is better): dB for SNR, fraction for accuracy.
    pub metric: f64,
    /// Total power (W).
    pub power_w: f64,
    /// Per-block power breakdown.
    pub breakdown: PowerBreakdown,
    /// Capacitor area in `C_u,min` units.
    pub area_units: f64,
}

/// Parallel sweep runner.
#[derive(Debug, Clone)]
pub struct Sweep {
    config: SweepConfig,
}

impl Sweep {
    /// Creates a sweep runner.
    pub fn new(config: SweepConfig) -> Self {
        Self { config }
    }

    /// Evaluates every point of `space` over `dataset`, in parallel.
    ///
    /// Each record passes through the simulated front-end; the configured
    /// metric aggregates the outputs. Results keep the enumeration order of
    /// [`DesignSpace::points`].
    ///
    /// # Panics
    ///
    /// Panics if the space or dataset is empty, or a point fails validation.
    pub fn run(&self, space: &DesignSpace, dataset: &EegDataset) -> Vec<SweepResult> {
        assert!(!space.is_empty(), "design space is empty");
        assert!(!dataset.is_empty(), "dataset is empty");
        // Train the detector once (shared across threads, read-only).
        let goal: Box<dyn GoalFunction + Sync> = match self.config.metric {
            Metric::Snr => Box::new(SnrGoal),
            Metric::DetectionAccuracy => {
                let fs = space.template.design.f_sample_hz();
                let detector = if self.config.epoch_s > 0.0 {
                    crate::detector::SeizureDetector::train_epoched(
                        dataset,
                        fs,
                        self.config.epoch_s,
                        self.config.detector_seed,
                    )
                } else {
                    crate::detector::SeizureDetector::train(dataset, fs, self.config.detector_seed)
                };
                Box::new(DetectionGoal::new(detector))
            }
        };
        let points = space.points();
        let n_threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.config.threads
        }
        .min(points.len());
        let next = std::sync::atomic::AtomicUsize::new(0);
        let goal_ref: &(dyn GoalFunction + Sync) = goal.as_ref();
        // Workers claim indices from a shared counter (cheap dynamic load
        // balancing — point costs vary wildly with M and N) and keep their
        // results thread-local; the merge happens once, after the joins.
        let mut indexed: Vec<(usize, SweepResult)> = Vec::with_capacity(points.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= points.len() {
                                break;
                            }
                            local.push((i, evaluate_point(&points[i], space, dataset, goal_ref)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(mut local) => indexed.append(&mut local),
                    // A worker panic is a bug in a model; re-raise it on the
                    // caller thread instead of silently dropping points.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        indexed.sort_by_key(|(i, _)| *i);
        debug_assert_eq!(
            indexed.len(),
            points.len(),
            "every point claimed exactly once"
        );
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// Evaluates a single design point (exposed for targeted experiments).
pub fn evaluate_point(
    point: &DesignPoint,
    space: &DesignSpace,
    dataset: &EegDataset,
    goal: &(dyn GoalFunction + Sync),
) -> SweepResult {
    let cfg = point.to_config(&space.template);
    // An invalid point is a bug in the caller's DesignSpace, not a runtime
    // condition — the documented panic is the API here.
    let sim = match Simulator::new(cfg) {
        Ok(sim) => sim,
        Err(e) => panic!("{}: {e}", point.label()), // lint:allow(no-panic)
    };
    let outputs: Vec<(SimOutput, usize)> = dataset
        .records
        .iter()
        .map(|rec| {
            let out = sim.run(&rec.samples, rec.fs, rec.id as u64 + 1);
            (out, rec.label())
        })
        .collect();
    let metric = goal.evaluate(&outputs);
    let breakdown = outputs[0].0.power.clone();
    let area_units = outputs[0].0.area_units;
    SweepResult {
        point: point.clone(),
        metric,
        power_w: breakdown.total().value(),
        breakdown,
        area_units,
    }
}

/// Splits results by architecture: `(baseline, compressive)`.
pub fn split_by_architecture(results: &[SweepResult]) -> (Vec<&SweepResult>, Vec<&SweepResult>) {
    let base = results
        .iter()
        .filter(|r| r.point.architecture == Architecture::Baseline)
        .collect();
    let cs = results
        .iter()
        .filter(|r| r.point.architecture == Architecture::CompressiveSensing)
        .collect();
    (base, cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_signals::DatasetConfig;

    fn tiny_dataset() -> EegDataset {
        EegDataset::generate(&DatasetConfig {
            records_per_class: 2,
            duration_s: 2.0,
            ..Default::default()
        })
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace {
            lna_noise_vrms: vec![2e-6, 10e-6],
            n_bits: vec![8],
            cs_m: vec![96],
            cs_s: vec![2],
            cs_c_hold_f: vec![1e-12],
            ..DesignSpace::paper_defaults()
        }
    }

    #[test]
    fn snr_sweep_covers_all_points() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let sweep = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        });
        let results = sweep.run(&space, &ds);
        assert_eq!(results.len(), space.len());
        // Order preserved.
        for (r, p) in results.iter().zip(space.points()) {
            assert_eq!(r.point, p);
        }
        assert!(results
            .iter()
            .all(|r| r.power_w > 0.0 && r.metric.is_finite()));
    }

    #[test]
    fn lower_noise_gives_better_snr_and_more_power_baseline() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let sweep = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        });
        let results = sweep.run(&space, &ds);
        let (base, _) = split_by_architecture(&results);
        let quiet = base
            .iter()
            .find(|r| r.point.lna_noise_vrms < 5e-6)
            .expect("quiet point");
        let noisy = base
            .iter()
            .find(|r| r.point.lna_noise_vrms > 5e-6)
            .expect("noisy point");
        assert!(
            quiet.metric > noisy.metric,
            "quiet SNR {} vs {}",
            quiet.metric,
            noisy.metric
        );
        assert!(
            quiet.power_w > noisy.power_w,
            "quiet should cost more power"
        );
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let one = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 1,
            detector_seed: 0,
            ..Default::default()
        })
        .run(&space, &ds);
        let many = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 4,
            detector_seed: 0,
            ..Default::default()
        })
        .run(&space, &ds);
        assert_eq!(one, many);
    }

    #[test]
    fn split_by_architecture_partitions() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let results = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        })
        .run(&space, &ds);
        let (base, cs) = split_by_architecture(&results);
        assert_eq!(base.len() + cs.len(), results.len());
        assert!(base
            .iter()
            .all(|r| r.point.architecture == Architecture::Baseline));
        assert!(cs
            .iter()
            .all(|r| r.point.architecture == Architecture::CompressiveSensing));
    }

    #[test]
    #[should_panic(expected = "dataset is empty")]
    fn rejects_empty_dataset() {
        let ds = EegDataset {
            records: vec![],
            config: DatasetConfig::default(),
        };
        let space = tiny_space();
        let _ = Sweep::new(SweepConfig::default()).run(&space, &ds);
    }
}
