//! Parallel design-space sweep engine with failure quarantine.
//!
//! Large sweeps run unattended for hours; one sick design point must not
//! cost the whole run. Every point is evaluated behind a panic boundary and
//! failures — invalid configurations, panicking models, non-finite metrics —
//! are quarantined in the [`SweepReport`] under a configurable
//! [`FailurePolicy`] instead of aborting the sweep.

use crate::config::{Architecture, ConfigError};
use crate::goal::{DetectionGoal, GoalFunction, SnrGoal};
use crate::simulate::{SimOutput, Simulator};
use crate::space::{DesignPoint, DesignSpace};
use efficsense_faults::FaultPlan;
use efficsense_power::PowerBreakdown;
use efficsense_signals::EegDataset;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which quality metrics to compute per design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Reference-based SNR (Fig. 7a).
    Snr,
    /// Seizure detection accuracy (Fig. 7b). Trains a detector first.
    DetectionAccuracy,
}

/// What the sweep does with a design point that fails to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Re-raise the failure as a panic on the calling thread (the legacy
    /// behaviour, and the right one when a failure means a caller bug).
    #[default]
    Abort,
    /// Quarantine the point in the [`SweepReport`] and keep sweeping.
    Skip,
    /// Re-evaluate up to this many extra times, then quarantine. The models
    /// are deterministic, so this only helps failures injected by the
    /// environment (and records how stubbornly a point failed).
    Retry(u32),
}

/// Why one design point failed to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub enum PointError {
    /// The point's configuration violated a design constraint.
    Config(ConfigError),
    /// A behavioural model panicked while evaluating the point; the payload
    /// message is preserved.
    Panicked(String),
    /// Evaluation completed but produced a non-finite metric or power.
    NonFinite(String),
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointError::Config(e) => write!(f, "invalid configuration: {e}"),
            PointError::Panicked(msg) => write!(f, "model panicked: {msg}"),
            PointError::NonFinite(what) => write!(f, "non-finite evaluation: {what}"),
        }
    }
}

impl std::error::Error for PointError {}

/// One design point the sweep could not evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedPoint {
    /// Index of the point in [`DesignSpace::points`] enumeration order.
    pub index: usize,
    /// The failed point.
    pub point: DesignPoint,
    /// Why it failed (the error of the final attempt).
    pub error: PointError,
    /// Extra evaluation attempts spent under [`FailurePolicy::Retry`].
    pub retries: u32,
}

/// The full outcome of a sweep: healthy results plus the quarantine.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Successfully evaluated points, in enumeration order.
    pub results: Vec<SweepResult>,
    /// Failed points, sorted by enumeration index.
    pub quarantine: Vec<QuarantinedPoint>,
    /// Number of points the design space enumerated.
    pub points_total: usize,
}

impl SweepReport {
    /// `true` when every enumerated point is accounted for, either as a
    /// result or in quarantine. This is the release-mode promotion of the
    /// old `debug_assert_eq!` completeness check: a `false` here means the
    /// sweep engine itself lost points.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.results.len() + self.quarantine.len() == self.points_total
    }

    /// Number of enumerated points that are neither results nor quarantined.
    #[must_use]
    pub fn missing(&self) -> usize {
        self.points_total
            .saturating_sub(self.results.len() + self.quarantine.len())
    }

    /// One-line health summary, e.g. `94/96 ok, 2 quarantined`.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}/{} ok, {} quarantined",
            self.results.len(),
            self.points_total,
            self.quarantine.len()
        );
        if !self.is_complete() {
            s.push_str(&format!(", {} MISSING", self.missing()));
        }
        s
    }
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Metric to report in [`SweepResult::metric`].
    pub metric: Metric,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Detector training seed (DetectionAccuracy only).
    pub detector_seed: u64,
    /// Detection decision window in seconds (DetectionAccuracy only);
    /// 0 classifies whole records. Default 2 s — the windowed-segment scheme
    /// of the EEG deep-learning literature.
    pub epoch_s: f64,
    /// What to do when a point fails to evaluate.
    pub failure_policy: FailurePolicy,
    /// Fault plan injected into every evaluated point (`None` = clean sweep).
    pub fault_plan: Option<FaultPlan>,
    /// Worker threads for the batched per-record OMP decode inside each
    /// point evaluation (`<= 1` decodes inline). Sweeps already parallelise
    /// across points, so the default keeps decode inline; results are
    /// bit-identical for every value.
    pub decode_threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            metric: Metric::DetectionAccuracy,
            threads: 0,
            detector_seed: 0xD0D0,
            epoch_s: 2.0,
            failure_policy: FailurePolicy::Abort,
            fault_plan: None,
            decode_threads: 1,
        }
    }
}

/// The evaluation of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The evaluated point.
    pub point: DesignPoint,
    /// Quality metric (higher is better): dB for SNR, fraction for accuracy.
    pub metric: f64,
    /// Total power (W).
    pub power_w: f64,
    /// Per-block power breakdown.
    pub breakdown: PowerBreakdown,
    /// Capacitor area in `C_u,min` units.
    pub area_units: f64,
}

/// Parallel sweep runner.
#[derive(Debug, Clone)]
pub struct Sweep {
    config: SweepConfig,
    /// Optional content-addressed result cache (see [`crate::cache`]).
    cache: Option<std::sync::Arc<crate::cache::SweepCache>>,
    /// Optional Level-3 prefix store (see [`crate::prefix`]).
    prefix: Option<std::sync::Arc<crate::prefix::PrefixStore>>,
}

impl Sweep {
    /// Creates a sweep runner.
    pub fn new(config: SweepConfig) -> Self {
        Self {
            config,
            cache: None,
            prefix: None,
        }
    }

    /// Attaches a shared result cache. Subsequent runs look every point up
    /// by its content key ([`crate::cache::point_key`]) before evaluating,
    /// and store successful first-attempt evaluations back. Cached results
    /// are bit-identical to fresh ones — evaluation is deterministic in the
    /// key — so attaching a cache never changes sweep output, only cost.
    /// Salted retry successes (see [`FailurePolicy::Retry`]) are *not*
    /// cached: their perturbed seeds are outside the key.
    #[must_use]
    pub fn with_cache(mut self, cache: std::sync::Arc<crate::cache::SweepCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a shared Level-3 prefix store ([`crate::prefix`]): every
    /// point evaluation reuses stage-prefix artifacts (resampled records,
    /// LNA output, reference signals, whole acquired front-ends) built by
    /// any other point — in this sweep or any other sweep sharing the
    /// store. Artifacts are derived deterministically from their keys, so
    /// attaching a store never changes sweep output, only cost.
    #[must_use]
    pub fn with_prefix_store(mut self, store: std::sync::Arc<crate::prefix::PrefixStore>) -> Self {
        self.prefix = Some(store);
        self
    }

    /// Evaluates every point of `space` over `dataset`, in parallel,
    /// returning only the healthy results (enumeration order).
    ///
    /// # Panics
    ///
    /// Panics if the space or dataset is empty, if the sweep engine loses a
    /// point (the completeness check), or — under the default
    /// [`FailurePolicy::Abort`] — if any point fails to evaluate. Use
    /// [`Sweep::run_report`] to inspect failures instead.
    pub fn run(&self, space: &DesignSpace, dataset: &EegDataset) -> Vec<SweepResult> {
        let report = self.run_report(space, dataset);
        assert!(
            report.is_complete(),
            "sweep engine lost {} of {} points",
            report.missing(),
            report.points_total
        );
        report.results
    }

    /// Evaluates every point of `space` over `dataset`, in parallel.
    ///
    /// Each record passes through the simulated front-end; the configured
    /// metric aggregates the outputs. Results keep the enumeration order of
    /// [`DesignSpace::points`]; failed points land in the report's
    /// quarantine according to the configured [`FailurePolicy`]. Every
    /// point is evaluated behind a panic boundary, so one sick model cannot
    /// abort an overnight sweep (unless the policy says so).
    ///
    /// # Panics
    ///
    /// Panics if the space or dataset is empty, or — under
    /// [`FailurePolicy::Abort`] — when a point fails to evaluate.
    pub fn run_report(&self, space: &DesignSpace, dataset: &EegDataset) -> SweepReport {
        assert!(!space.is_empty(), "design space is empty");
        assert!(!dataset.is_empty(), "dataset is empty");
        let _sweep_span = efficsense_obs::span!("sweep.run");
        let fs = space.template.design.f_sample_hz();
        let metric = self.config.metric;
        let detector_seed = self.config.detector_seed;
        let epoch_s = self.config.epoch_s;
        // Goal construction, parameterised by a retry salt. Salt 0 is the
        // canonical goal; salts > 0 re-train the detector under a derived
        // seed so a flaky point gets a genuinely different realisation.
        // Detector training is memoized process-wide, so repeated sweeps
        // over the same dataset (the product-sweep workload) train once.
        let make_goal = |salt: u64| -> Box<dyn GoalFunction + Sync> {
            match metric {
                Metric::Snr => Box::new(SnrGoal),
                Metric::DetectionAccuracy => {
                    let detector = crate::cache::trained_detector(
                        dataset,
                        fs,
                        epoch_s,
                        salted_seed(detector_seed, salt),
                    );
                    Box::new(DetectionGoal::new((*detector).clone()))
                }
            }
        };
        let goal: Box<dyn GoalFunction + Sync> = make_goal(0);
        // The cache context is sweep-invariant; fingerprint the dataset once.
        let ctx = self.cache.as_ref().map(|_| crate::cache::EvalContext {
            goal: crate::cache::goal_descriptor(metric, detector_seed, epoch_s),
            dataset_fingerprint: crate::cache::dataset_fingerprint(dataset),
        });
        let cache = self.cache.as_deref();
        let prefix = self.prefix.as_ref();
        let cache_attached = self.cache.is_some();
        let prefix_attached = self.prefix.is_some();
        let points = space.points();
        let n_threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.config.threads
        }
        .min(points.len());
        let next = std::sync::atomic::AtomicUsize::new(0);
        let goal_ref: &(dyn GoalFunction + Sync) = goal.as_ref();
        let policy = self.config.failure_policy;
        let plan = self.config.fault_plan.as_ref();
        let decode_threads = self.config.decode_threads;
        let max_retries = match policy {
            FailurePolicy::Retry(n) => n,
            _ => 0,
        };
        // Workers claim indices from a shared counter (cheap dynamic load
        // balancing — point costs vary wildly with M and N) and keep their
        // results thread-local; the merge happens once, after the joins.
        type Outcome = Result<SweepResult, (PointError, u32)>;
        let total = points.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let heartbeat_every = (total / 10).max(1);
        let sweep_start_ns = efficsense_obs::global().now_ns();
        let mut indexed: Vec<(usize, Outcome)> = Vec::with_capacity(points.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, Outcome)> = Vec::new();
                        // One scratch pool per worker: steady-state point
                        // evaluation reuses output buffers instead of
                        // allocating per record.
                        let mut scratch = crate::simulate::SimScratch::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= points.len() {
                                break;
                            }
                            let point = &points[i];
                            {
                                let _point_span = efficsense_obs::span!("sweep.point");
                                let key = ctx.as_ref().map(|c| {
                                    crate::cache::point_key(
                                        &point.to_config(&space.template),
                                        plan,
                                        c,
                                    )
                                });
                                let cached = match (cache, &key) {
                                    (Some(cache), Some(key)) => cache.get(key),
                                    _ => None,
                                };
                                let outcome: Outcome = if let Some(mut hit) = cached {
                                    // The stored point is key-equivalent but
                                    // not necessarily this exact point (two
                                    // points can instantiate one config);
                                    // the current point keeps labels honest.
                                    hit.point = point.clone();
                                    Ok(hit)
                                } else {
                                    efficsense_obs::counter!("sweep.evaluations").incr();
                                    if plan.is_some() {
                                        efficsense_obs::counter!("sweep.faulted_points").incr();
                                    }
                                    let mut retries = 0u32;
                                    let outcome = loop {
                                        // Retry attempts re-seed: salt 0 is
                                        // the canonical evaluation, each retry
                                        // derives fresh noise/detector seeds
                                        // from the salt.
                                        let salt = u64::from(retries);
                                        let salted_goal;
                                        let attempt_goal: &(dyn GoalFunction + Sync) = if salt == 0
                                        {
                                            goal_ref
                                        } else {
                                            salted_goal = make_goal(salt);
                                            salted_goal.as_ref()
                                        };
                                        // The panic boundary: a model blowing
                                        // up on one point must not take down
                                        // the sweep.
                                        let attempt = catch_unwind(AssertUnwindSafe(|| {
                                            evaluate_point_prefixed(
                                                point,
                                                space,
                                                dataset,
                                                attempt_goal,
                                                plan,
                                                salt,
                                                decode_threads,
                                                prefix.cloned(),
                                                &mut scratch,
                                            )
                                        }))
                                        .unwrap_or_else(|payload| {
                                            // A panicking point may die with
                                            // buffered trace lines; flush so
                                            // the trace shows the spans that
                                            // led up to the blow-up even if
                                            // the process aborts next.
                                            efficsense_obs::global().flush();
                                            Err(PointError::Panicked(panic_message(
                                                payload.as_ref(),
                                            )))
                                        });
                                        match attempt {
                                            Ok(res) => break Ok(res),
                                            Err(_) if retries < max_retries => {
                                                efficsense_obs::counter!("sweep.retry_attempts")
                                                    .incr();
                                                retries += 1;
                                            }
                                            Err(e) => break Err((e, retries)),
                                        }
                                    };
                                    if let (Some(cache), Some(key), Ok(res)) =
                                        (cache, key, &outcome)
                                    {
                                        // Only the canonical (unsalted)
                                        // evaluation is content-addressed by
                                        // the key.
                                        if retries == 0 {
                                            cache.insert(key, res.clone());
                                        }
                                    }
                                    outcome
                                };
                                if let Err((e, _)) = &outcome {
                                    if policy == FailurePolicy::Abort {
                                        // Legacy semantics: a failing point
                                        // under Abort is a bug in the caller's
                                        // space.
                                        panic!("{}: {e}", point.label()); // lint:allow(no-panic)
                                    }
                                }
                                local.push((i, outcome));
                            }
                            // Heartbeat outside the point span: its clock
                            // reads must not perturb span durations.
                            let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                            if n.is_multiple_of(heartbeat_every) || n == total {
                                progress_heartbeat(
                                    n,
                                    total,
                                    sweep_start_ns,
                                    cache_attached,
                                    prefix_attached,
                                );
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(mut local) => indexed.append(&mut local),
                    // A worker panic escaped the per-point boundary (or the
                    // policy is Abort); re-raise it on the caller thread
                    // instead of silently dropping points.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        indexed.sort_by_key(|(i, _)| *i);
        let points_total = points.len();
        let mut results = Vec::with_capacity(indexed.len());
        let mut quarantine = Vec::new();
        for (index, outcome) in indexed {
            match outcome {
                Ok(r) => results.push(r),
                Err((error, retries)) => quarantine.push(QuarantinedPoint {
                    index,
                    point: points[index].clone(),
                    error,
                    retries,
                }),
            }
        }
        if !quarantine.is_empty() {
            efficsense_obs::counter!("sweep.quarantined").add(quarantine.len() as u64);
        }
        SweepReport {
            results,
            quarantine,
            points_total,
        }
    }
}

/// Emits sweep progress: a heartbeat counter tick, a trace event when a
/// sink is installed, and — only once a sweep has run long enough to be
/// worth watching — a stderr progress line. `cache_attached` gates the
/// `cache_hits` field: a cacheless sweep has no hit count to report, and a
/// hard-coded 0 would read as "cache attached but cold". `prefix_attached`
/// gates the L3 prefix-store fields the same way: `l3_hits`/`l3_misses`
/// sum the per-class prefix counters so a long sweep's heartbeats show
/// the store warming up alongside the L1 line.
fn progress_heartbeat(
    done: usize,
    total: usize,
    sweep_start_ns: u64,
    cache_attached: bool,
    prefix_attached: bool,
) {
    efficsense_obs::counter!("sweep.heartbeat").incr();
    let obs = efficsense_obs::global();
    let now_ns = obs.now_ns();
    let elapsed_ns = now_ns.saturating_sub(sweep_start_ns);
    let eta_ns = if done > 0 {
        (elapsed_ns / done as u64).saturating_mul((total - done) as u64)
    } else {
        0
    };
    if obs.sink_enabled() {
        let mut ev = efficsense_obs::TraceEvent::new(now_ns, "heartbeat", "sweep.progress")
            .field("done", efficsense_obs::FieldValue::U64(done as u64))
            .field("total", efficsense_obs::FieldValue::U64(total as u64))
            .field("elapsed_ns", efficsense_obs::FieldValue::U64(elapsed_ns))
            .field("eta_ns", efficsense_obs::FieldValue::U64(eta_ns));
        if cache_attached {
            let hits = efficsense_obs::counter!("cache.l1.hit").get();
            ev = ev.field("cache_hits", efficsense_obs::FieldValue::U64(hits));
        }
        if prefix_attached {
            let sum = |field: &str| {
                ["ct", "analog", "reference", "sampled", "acquired"]
                    .iter()
                    .map(|class| obs.counter(&format!("memo.{class}.{field}")).get())
                    .fold(0u64, u64::saturating_add)
            };
            ev = ev
                .field("l3_hits", efficsense_obs::FieldValue::U64(sum("hit")))
                .field("l3_misses", efficsense_obs::FieldValue::U64(sum("miss")));
        }
        obs.emit(&ev);
    }
    // Quiet sweeps (tests, smoke runs) stay quiet; overnight runs report.
    if elapsed_ns > 10_000_000_000 {
        eprintln!(
            "sweep progress: {done}/{total} points ({:.0}%), ~{}s remaining",
            done as f64 / total as f64 * 100.0,
            eta_ns / 1_000_000_000
        );
    }
}

/// Best-effort extraction of a panic payload's message (exposed so bench
/// binaries wrapping their own `catch_unwind` boundaries report the same
/// text the sweep engine would).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates a single design point (exposed for targeted experiments).
///
/// `plan` optionally injects a fault plan into the simulated chain.
///
/// # Errors
///
/// Returns [`PointError::Config`] for invalid points and
/// [`PointError::NonFinite`] when the metric or power comes out non-finite.
/// Model panics are *not* caught here — the sweep engine owns the panic
/// boundary.
pub fn evaluate_point(
    point: &DesignPoint,
    space: &DesignSpace,
    dataset: &EegDataset,
    goal: &(dyn GoalFunction + Sync),
    plan: Option<&FaultPlan>,
) -> Result<SweepResult, PointError> {
    evaluate_point_salted(point, space, dataset, goal, plan, 0, 1)
}

/// Derives a retry seed: salt 0 is the identity (the canonical seed), each
/// positive salt applies a SplitMix64-style avalanche so consecutive retry
/// attempts draw decorrelated noise and detector realisations.
#[must_use]
pub fn salted_seed(base: u64, salt: u64) -> u64 {
    if salt == 0 {
        return base;
    }
    let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`evaluate_point`] with an explicit retry salt: `noise_salt` 0 is the
/// canonical evaluation (the only one the result cache stores); positive
/// salts re-derive every per-record noise seed via [`salted_seed`], giving
/// [`FailurePolicy::Retry`] a genuinely fresh realisation per attempt.
/// `decode_threads` sets the per-record OMP decode fan-out (`<= 1` inline);
/// it never changes the result, only the wall clock.
///
/// # Errors
///
/// As [`evaluate_point`].
pub fn evaluate_point_salted(
    point: &DesignPoint,
    space: &DesignSpace,
    dataset: &EegDataset,
    goal: &(dyn GoalFunction + Sync),
    plan: Option<&FaultPlan>,
    noise_salt: u64,
    decode_threads: usize,
) -> Result<SweepResult, PointError> {
    evaluate_point_prefixed(
        point,
        space,
        dataset,
        goal,
        plan,
        noise_salt,
        decode_threads,
        None,
        &mut crate::simulate::SimScratch::new(),
    )
}

/// [`evaluate_point_salted`] with an optional Level-3 prefix store and a
/// caller-held scratch pool (sweep workers keep one per thread and pass it
/// across points). Both are pure cost levers: the store shares front-end
/// artifacts across evaluations and the scratch recycles output buffers,
/// neither changes a single result bit.
///
/// # Errors
///
/// As [`evaluate_point`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_point_prefixed(
    point: &DesignPoint,
    space: &DesignSpace,
    dataset: &EegDataset,
    goal: &(dyn GoalFunction + Sync),
    plan: Option<&FaultPlan>,
    noise_salt: u64,
    decode_threads: usize,
    prefix: Option<std::sync::Arc<crate::prefix::PrefixStore>>,
    scratch: &mut crate::simulate::SimScratch,
) -> Result<SweepResult, PointError> {
    let cfg = point.to_config(&space.template);
    let mut sim = Simulator::new(cfg).map_err(PointError::Config)?;
    sim.set_fault_plan(plan.cloned());
    sim.set_decode_threads(decode_threads);
    sim.set_prefix_store(prefix);
    let outputs: Vec<(SimOutput, usize)> = {
        let _sim_span = efficsense_obs::span!("stage.simulate");
        dataset
            .records
            .iter()
            .map(|rec| {
                let seed = salted_seed(rec.id as u64 + 1, noise_salt);
                let out = sim.run_with_scratch(&rec.samples, rec.fs, seed, scratch);
                (out, rec.label())
            })
            .collect()
    };
    let metric = {
        let _detect_span = efficsense_obs::span!("stage.detect");
        goal.evaluate(&outputs)
    };
    let breakdown = outputs[0].0.power.clone();
    let area_units = outputs[0].0.area_units;
    let power_w = breakdown.total().value();
    // The goal has consumed the outputs; their signal buffers feed the next
    // point's acquisitions instead of the allocator.
    for (out, _) in outputs {
        scratch.reclaim_output(out);
    }
    if !metric.is_finite() || !power_w.is_finite() {
        return Err(PointError::NonFinite(format!(
            "metric {metric}, power {power_w} W"
        )));
    }
    Ok(SweepResult {
        point: point.clone(),
        metric,
        power_w,
        breakdown,
        area_units,
    })
}

/// Splits results by architecture: `(baseline, compressive)`.
pub fn split_by_architecture(results: &[SweepResult]) -> (Vec<&SweepResult>, Vec<&SweepResult>) {
    let base = results
        .iter()
        .filter(|r| r.point.architecture == Architecture::Baseline)
        .collect();
    let cs = results
        .iter()
        .filter(|r| r.point.architecture == Architecture::CompressiveSensing)
        .collect();
    (base, cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_signals::DatasetConfig;

    fn tiny_dataset() -> EegDataset {
        EegDataset::generate(&DatasetConfig {
            records_per_class: 2,
            duration_s: 2.0,
            ..Default::default()
        })
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace {
            lna_noise_vrms: vec![2e-6, 10e-6],
            n_bits: vec![8],
            cs_m: vec![96],
            cs_s: vec![2],
            cs_c_hold_f: vec![1e-12],
            ..DesignSpace::paper_defaults()
        }
    }

    #[test]
    fn snr_sweep_covers_all_points() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let sweep = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        });
        let results = sweep.run(&space, &ds);
        assert_eq!(results.len(), space.len());
        // Order preserved.
        for (r, p) in results.iter().zip(space.points()) {
            assert_eq!(r.point, p);
        }
        assert!(results
            .iter()
            .all(|r| r.power_w > 0.0 && r.metric.is_finite()));
    }

    #[test]
    fn lower_noise_gives_better_snr_and_more_power_baseline() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let sweep = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        });
        let results = sweep.run(&space, &ds);
        let (base, _) = split_by_architecture(&results);
        let quiet = base
            .iter()
            .find(|r| r.point.lna_noise_vrms < 5e-6)
            .expect("quiet point");
        let noisy = base
            .iter()
            .find(|r| r.point.lna_noise_vrms > 5e-6)
            .expect("noisy point");
        assert!(
            quiet.metric > noisy.metric,
            "quiet SNR {} vs {}",
            quiet.metric,
            noisy.metric
        );
        assert!(
            quiet.power_w > noisy.power_w,
            "quiet should cost more power"
        );
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let one = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 1,
            detector_seed: 0,
            ..Default::default()
        })
        .run(&space, &ds);
        let many = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 4,
            detector_seed: 0,
            ..Default::default()
        })
        .run(&space, &ds);
        assert_eq!(one, many);
    }

    #[test]
    fn split_by_architecture_partitions() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let results = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        })
        .run(&space, &ds);
        let (base, cs) = split_by_architecture(&results);
        assert_eq!(base.len() + cs.len(), results.len());
        assert!(base
            .iter()
            .all(|r| r.point.architecture == Architecture::Baseline));
        assert!(cs
            .iter()
            .all(|r| r.point.architecture == Architecture::CompressiveSensing));
    }

    #[test]
    #[should_panic(expected = "dataset is empty")]
    fn rejects_empty_dataset() {
        let ds = EegDataset {
            records: vec![],
            config: DatasetConfig::default(),
        };
        let space = tiny_space();
        let _ = Sweep::new(SweepConfig::default()).run(&space, &ds);
    }

    /// A space with two kinds of sick points: the CS points carry `s = 0`
    /// (rejected by validation → `Config`), and the NaN-noise baseline point
    /// passes validation but trips the LNA constructor's assertion mid-run
    /// (→ `Panicked`, caught at the panic boundary).
    fn sick_space() -> DesignSpace {
        DesignSpace {
            lna_noise_vrms: vec![2e-6, f64::NAN],
            n_bits: vec![8],
            cs_m: vec![96],
            cs_s: vec![0],
            cs_c_hold_f: vec![1e-12],
            ..DesignSpace::paper_defaults()
        }
    }

    fn skip_sweep(threads: usize) -> Sweep {
        Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads,
            detector_seed: 0,
            failure_policy: FailurePolicy::Skip,
            ..Default::default()
        })
    }

    #[test]
    fn quarantine_catches_invalid_and_panicking_points() {
        let ds = tiny_dataset();
        let space = sick_space();
        let report = skip_sweep(2).run_report(&space, &ds);
        let points = space.points();
        assert_eq!(report.points_total, points.len());
        assert!(report.is_complete(), "{}", report.summary());
        assert_eq!(report.missing(), 0);
        // Exactly one healthy point: the finite-noise baseline.
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.quarantine.len(), points.len() - 1);
        // Healthy results keep enumeration order.
        let healthy: Vec<&DesignPoint> = points
            .iter()
            .filter(|p| p.architecture == Architecture::Baseline && p.lna_noise_vrms.is_finite())
            .collect();
        for (r, p) in report.results.iter().zip(&healthy) {
            assert_eq!(&&r.point, p);
        }
        // Quarantine is sorted by enumeration index and carries both causes.
        assert!(report
            .quarantine
            .windows(2)
            .all(|w| w[0].index < w[1].index));
        assert!(report.quarantine.iter().any(|q| matches!(
            &q.error,
            PointError::Config(ConfigError::BadScheduleSparsity { s: 0, .. })
        )));
        assert!(
            report
                .quarantine
                .iter()
                .any(|q| matches!(&q.error, PointError::Panicked(msg) if msg.contains("noise"))),
            "quarantine errors: {:?}",
            report
                .quarantine
                .iter()
                .map(|q| &q.error)
                .collect::<Vec<_>>()
        );
        assert!(report.summary().contains("quarantined"));
    }

    #[test]
    fn quarantine_is_deterministic_across_thread_counts() {
        let ds = tiny_dataset();
        let space = sick_space();
        let one = skip_sweep(1).run_report(&space, &ds);
        let many = skip_sweep(4).run_report(&space, &ds);
        // DesignPoint carries the NaN axis value (NaN != NaN), so compare
        // the index/error/retry triples instead of whole-report equality.
        let digest = |r: &SweepReport| {
            r.quarantine
                .iter()
                .map(|q| (q.index, q.error.clone(), q.retries))
                .collect::<Vec<_>>()
        };
        assert_eq!(one.results, many.results);
        assert_eq!(digest(&one), digest(&many));
        assert_eq!(one.points_total, many.points_total);
    }

    #[test]
    fn retry_policy_records_exhausted_attempts() {
        let ds = tiny_dataset();
        let space = sick_space();
        let report = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            failure_policy: FailurePolicy::Retry(2),
            ..Default::default()
        })
        .run_report(&space, &ds);
        assert!(!report.quarantine.is_empty());
        assert!(
            report.quarantine.iter().all(|q| q.retries == 2),
            "deterministic failures must burn the whole retry budget"
        );
    }

    #[test]
    #[should_panic(expected = "model panicked")]
    fn abort_policy_propagates_failures() {
        let ds = tiny_dataset();
        let space = DesignSpace {
            lna_noise_vrms: vec![f64::NAN],
            n_bits: vec![8],
            cs_m: vec![],
            ..DesignSpace::paper_defaults()
        };
        let _ = Sweep::new(SweepConfig {
            metric: Metric::Snr,
            threads: 1,
            detector_seed: 0,
            ..Default::default()
        })
        .run(&space, &ds);
    }

    #[test]
    fn clean_fault_plan_sweep_matches_unfaulted_sweep() {
        use efficsense_faults::FaultPlan;
        let ds = tiny_dataset();
        let space = tiny_space();
        let base = SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        };
        let plain = Sweep::new(base.clone()).run(&space, &ds);
        let with_clean_plan = Sweep::new(SweepConfig {
            fault_plan: Some(FaultPlan::clean(0xABCD)),
            ..base
        })
        .run(&space, &ds);
        assert_eq!(plain, with_clean_plan);
    }

    #[test]
    fn fault_plan_sweep_degrades_the_mean_metric() {
        use efficsense_faults::{FaultKind, FaultPlan};
        let ds = tiny_dataset();
        let space = tiny_space();
        let base = SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        };
        let mean = |rs: &[SweepResult]| rs.iter().map(|r| r.metric).sum::<f64>() / rs.len() as f64;
        let clean = Sweep::new(base.clone()).run(&space, &ds);
        let faulted = Sweep::new(SweepConfig {
            fault_plan: Some(FaultPlan::single(FaultKind::AdcStuckBit, 1.0, 1)),
            ..base
        })
        .run(&space, &ds);
        assert!(mean(&faulted) < mean(&clean) - 3.0);
    }

    #[test]
    fn cached_sweep_is_bit_identical_across_thread_counts() {
        use crate::cache::SweepCache;
        use std::sync::Arc;
        let ds = tiny_dataset();
        let space = tiny_space();
        let base = SweepConfig {
            metric: Metric::Snr,
            threads: 1,
            detector_seed: 0,
            ..Default::default()
        };
        let fresh = Sweep::new(base.clone()).run(&space, &ds);
        let cache = Arc::new(SweepCache::new());
        // Cold pass fills the cache; every point misses, nothing changes.
        let cold = Sweep::new(SweepConfig {
            threads: 4,
            ..base.clone()
        })
        .with_cache(Arc::clone(&cache))
        .run(&space, &ds);
        assert_eq!(fresh, cold, "cold cached run must match uncached run");
        let cold_stats = cache.stats();
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.misses, space.len() as u64);
        assert_eq!(cold_stats.entries, space.len());
        // Warm passes — whatever the thread count — serve purely from cache.
        for threads in [1, 3] {
            cache.reset_stats();
            let warm = Sweep::new(SweepConfig {
                threads,
                ..base.clone()
            })
            .with_cache(Arc::clone(&cache))
            .run(&space, &ds);
            assert_eq!(fresh, warm, "warm run at {threads} threads must match");
            let s = cache.stats();
            assert_eq!(s.misses, 0, "warm run must not re-evaluate any point");
            assert_eq!(s.hits, space.len() as u64);
        }
    }

    #[test]
    fn cache_persist_reload_cycle_preserves_results() {
        use crate::cache::SweepCache;
        use std::sync::Arc;
        let ds = tiny_dataset();
        let space = tiny_space();
        let base = SweepConfig {
            metric: Metric::Snr,
            threads: 2,
            detector_seed: 0,
            ..Default::default()
        };
        let cache = Arc::new(SweepCache::new());
        let original = Sweep::new(base.clone())
            .with_cache(Arc::clone(&cache))
            .run(&space, &ds);
        let path = std::env::temp_dir().join(format!(
            "efficsense_sweep_cache_test_{}.jsonl",
            std::process::id()
        ));
        cache.save(&path).expect("persist cache");
        let reloaded = Arc::new(SweepCache::new());
        let (loaded, skipped) = reloaded.load(&path).expect("reload cache");
        std::fs::remove_file(&path).ok();
        assert_eq!((loaded, skipped), (space.len(), 0));
        let replay = Sweep::new(base)
            .with_cache(Arc::clone(&reloaded))
            .run(&space, &ds);
        assert_eq!(
            original, replay,
            "reloaded cache must replay bit-identically"
        );
        assert_eq!(reloaded.stats().misses, 0);
    }

    #[test]
    fn salt_zero_is_identity_and_retry_salts_reseed() {
        let ds = tiny_dataset();
        let space = tiny_space();
        let point = &space.points()[0];
        let goal = SnrGoal;
        let canonical =
            evaluate_point(point, &space, &ds, &goal, None).expect("canonical evaluation");
        let salt0 = evaluate_point_salted(point, &space, &ds, &goal, None, 0, 1)
            .expect("salt-0 evaluation");
        assert_eq!(canonical, salt0, "salt 0 must be the canonical evaluation");
        // Decode fan-out is pure mechanism: a different thread count must
        // reproduce the canonical result bit for bit.
        let salt0_mt = evaluate_point_salted(point, &space, &ds, &goal, None, 0, 4)
            .expect("salt-0 evaluation with pooled decode");
        assert_eq!(
            canonical, salt0_mt,
            "decode threads must not change results"
        );
        let salt1 = evaluate_point_salted(point, &space, &ds, &goal, None, 1, 1)
            .expect("salt-1 evaluation");
        assert!(salt1.metric.is_finite());
        assert_ne!(
            canonical.metric.to_bits(),
            salt1.metric.to_bits(),
            "a retry salt must draw a different noise realisation"
        );
        // The seed mix itself: identity at 0, avalanche elsewhere.
        assert_eq!(salted_seed(42, 0), 42);
        assert_ne!(salted_seed(42, 1), 42);
        assert_ne!(salted_seed(42, 1), salted_seed(42, 2));
        assert_ne!(salted_seed(42, 1), salted_seed(43, 1));
    }
}
