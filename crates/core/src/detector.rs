//! The seizure-detection goal function (paper Step 5, accuracy metric).
//!
//! The detector is trained once on the clean dataset (as the paper trains its
//! network on the Bonn corpus) and then applied to front-end outputs: any
//! noise, distortion, quantisation or reconstruction error the architecture
//! introduces shifts the features away from the training distribution and
//! costs accuracy — which is precisely the signal-quality metric the
//! pathfinding loop optimises against power.

use efficsense_ml::features::FeatureExtractor;
use efficsense_ml::metrics::Confusion;
use efficsense_ml::mlp::MlpClassifier;
use efficsense_ml::{Classifier, Scaler, TrainConfig};
use efficsense_signals::{EegDataset, Record};

/// A trained seizure detector (features → scaler → MLP).
#[derive(Debug, Clone)]
pub struct SeizureDetector {
    extractor: FeatureExtractor,
    scaler: Scaler,
    classifier: MlpClassifier,
    /// Sample rate the detector was trained at (Hz).
    pub train_fs: f64,
    /// Decision window in seconds; 0 = classify whole records.
    pub epoch_s: f64,
}

impl SeizureDetector {
    /// Trains a whole-record detector (one decision per record).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(dataset: &EegDataset, target_fs: f64, seed: u64) -> Self {
        Self::train_impl(dataset, target_fs, 0.0, seed)
    }

    /// Trains an *epoched* detector: signals are split into `epoch_s`-second
    /// windows and each window is classified independently (the windowed-
    /// segment scheme of the deep-learning EEG literature, including the
    /// paper's reference detector). Epoch-level decisions are far more
    /// sensitive to front-end quality than whole-record decisions — a 23.6 s
    /// record averages noise out of the features; a 2 s window does not —
    /// and give the accuracy metric a fine-grained scale.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `epoch_s <= 0`.
    pub fn train_epoched(dataset: &EegDataset, target_fs: f64, epoch_s: f64, seed: u64) -> Self {
        assert!(epoch_s > 0.0, "epoch length must be positive");
        Self::train_impl(dataset, target_fs, epoch_s, seed)
    }

    /// Shared training path. Uses *pipeline-aware* augmentation: besides the
    /// clean record, each training example contributes a band-limited
    /// variant, a small-additive-noise variant, and ideally CS-reconstructed
    /// variants (noiseless charge-sharing encode + OMP decode at two
    /// compression ratios). This is the standard robustness recipe for a
    /// detector that will run on acquired (rather than pristine) signals —
    /// without it any front-end imperfection is out-of-distribution and
    /// accuracy collapses instead of degrading smoothly with signal quality.
    fn train_impl(dataset: &EegDataset, target_fs: f64, epoch_s: f64, seed: u64) -> Self {
        assert!(
            !dataset.is_empty(),
            "cannot train a detector on an empty dataset"
        );
        let extractor = FeatureExtractor::default();
        let mut x = Vec::with_capacity(dataset.len() * 8);
        let mut y = Vec::with_capacity(dataset.len() * 8);
        let mut rng = efficsense_signals::noise::Gaussian::new(seed ^ 0xA06);
        let lp = efficsense_dsp::filter::IirFilter::butterworth_lowpass(4, 45.0, target_fs);
        // Ideal CS encode/decode pipelines (the compression artifact
        // teachers): strong and weak compression, nominal capacitors, no
        // noise/mismatch/leakage.
        let base_cfg = crate::config::CsConfig::default();
        let make_pipeline = |m: usize| {
            let cfg = crate::config::CsConfig {
                m,
                ..base_cfg.clone()
            };
            let phi =
                efficsense_cs::matrix::SensingMatrix::srbm(cfg.m, cfg.n_phi, cfg.s, 0x7EAC_4E11);
            let eff =
                efficsense_cs::charge_sharing::effective_matrix(&phi, cfg.c_sample_f, cfg.c_hold_f);
            let dict = eff.matmul(&cfg.basis.matrix(cfg.n_phi));
            // Gram/ridge artifacts route the training decodes through the
            // fast batched OMP kernel (mean_row_w2 is unused here).
            let art =
                efficsense_cs::memo::DictionaryArtifacts::from_dictionary(dict, cfg.basis, 0.0);
            let omp = efficsense_cs::recon::OmpConfig {
                sparsity: 2 * cfg.m / 5,
                residual_tol: 1e-4,
            };
            (cfg, eff, art, omp)
        };
        let pipelines: Vec<_> = [75usize, 150].iter().map(|&m| make_pipeline(m)).collect();
        let cs_recon = |clean: &[f64],
                        p: &(
            crate::config::CsConfig,
            efficsense_cs::Matrix,
            efficsense_cs::memo::DictionaryArtifacts,
            efficsense_cs::recon::OmpConfig,
        )|
         -> Vec<f64> {
            let (cfg, eff, art, omp) = p;
            let frames: Vec<Vec<f64>> = clean
                .chunks_exact(cfg.n_phi)
                .map(|frame| eff.matvec(frame))
                .collect();
            let cfgs = vec![omp.clone(); frames.len()];
            let mut out = Vec::with_capacity(clean.len());
            for xh in efficsense_cs::decode::reconstruct_batch(art, &frames, &cfgs, 1) {
                out.extend(xh);
            }
            out
        };
        for r in &dataset.records {
            let resampled = r.resampled(target_fs);
            let clean = &resampled.samples;
            // Band-limited variant: sparse low-frequency acquisition.
            let banded = lp.filtfilt(clean);
            let mut variants: Vec<Vec<f64>> = vec![clean.clone(), banded.clone()];
            // Small-noise variant (1 µV input-referred) — enough to teach
            // tolerance of a *quiet* front-end without washing out the
            // noise sensitivity that drives the Fig. 7 trade-off.
            variants.push(clean.iter().map(|v| v + rng.sample_scaled(1e-6)).collect());
            // CS-pipeline variants: reconstruction artifacts at strong and
            // weak compression, clean and with a little noise.
            for p in &pipelines {
                let recon = cs_recon(clean, p);
                if !recon.is_empty() {
                    let recon_noisy: Vec<f64> =
                        recon.iter().map(|v| v + rng.sample_scaled(2e-6)).collect();
                    variants.push(recon);
                    variants.push(recon_noisy);
                }
            }
            let epoch_len = if epoch_s > 0.0 {
                ((epoch_s * target_fs) as usize).max(8)
            } else {
                usize::MAX
            };
            for v in variants {
                if epoch_len == usize::MAX || v.len() <= epoch_len {
                    x.push(extractor.extract(&v, target_fs));
                    y.push(r.label());
                } else {
                    for w in v.chunks_exact(epoch_len) {
                        x.push(extractor.extract(w, target_fs));
                        y.push(r.label());
                    }
                }
            }
        }
        let scaler = Scaler::fit(&x);
        let xs = scaler.transform_batch(&x);
        let mut classifier = MlpClassifier::new(xs[0].len(), &[16], 2, seed);
        // Epoched training sets are much larger; fewer epochs suffice.
        let epochs = if epoch_s > 0.0 { 60 } else { 150 };
        classifier.fit(
            &xs,
            &y,
            &TrainConfig {
                epochs,
                learning_rate: 5e-3,
                batch_size: 32,
                weight_decay: 1e-4,
            },
        );
        Self {
            extractor,
            scaler,
            classifier,
            train_fs: target_fs,
            epoch_s,
        }
    }

    /// Splits a signal into this detector's decision windows (the whole
    /// signal when not epoched or too short for one window).
    fn windows<'a>(&self, signal: &'a [f64], fs: f64) -> Vec<&'a [f64]> {
        if self.epoch_s <= 0.0 {
            return vec![signal];
        }
        let n = ((self.epoch_s * fs) as usize).max(8);
        if signal.len() <= n {
            vec![signal]
        } else {
            signal.chunks_exact(n).collect()
        }
    }

    /// Classifies one signal (`1` = seizure). For an epoched detector the
    /// signal's windows vote by majority (ties → seizure).
    pub fn predict(&self, signal: &[f64], fs: f64) -> usize {
        let wins = self.windows(signal, fs);
        let votes: usize = wins.iter().map(|w| self.predict_window(w, fs)).sum();
        usize::from(2 * votes >= wins.len())
    }

    /// Classifies one decision window directly.
    pub fn predict_window(&self, window: &[f64], fs: f64) -> usize {
        let f = self.extractor.extract(window, fs);
        self.classifier.predict(&self.scaler.transform(&f))
    }

    /// Seizure probability of one signal (mean over decision windows).
    pub fn probability(&self, signal: &[f64], fs: f64) -> f64 {
        let wins = self.windows(signal, fs);
        let total: f64 = wins
            .iter()
            .map(|w| {
                let f = self.extractor.extract(w, fs);
                self.classifier.predict_proba(&self.scaler.transform(&f))[1]
            })
            .sum();
        total / wins.len() as f64
    }

    /// Accuracy over `(signal, label)` pairs at rate `fs`.
    ///
    /// For an epoched detector every window of every signal is one decision
    /// (the paper-style per-segment accuracy); otherwise one decision per
    /// signal.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn accuracy(&self, outputs: &[(Vec<f64>, usize)], fs: f64) -> f64 {
        self.confusion(outputs, fs).accuracy()
    }

    /// Full confusion matrix over `(signal, label)` pairs, at window
    /// granularity for an epoched detector.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn confusion(&self, outputs: &[(Vec<f64>, usize)], fs: f64) -> Confusion {
        assert!(!outputs.is_empty(), "cannot score an empty evaluation set");
        let mut truth = Vec::new();
        let mut preds = Vec::new();
        for (s, label) in outputs {
            for w in self.windows(s, fs) {
                truth.push(*label);
                preds.push(self.predict_window(w, fs));
            }
        }
        Confusion::from_labels(&truth, &preds)
    }

    /// Self-test accuracy on the clean (resampled) records of a dataset.
    pub fn clean_accuracy(&self, dataset: &EegDataset) -> f64 {
        let outputs: Vec<(Vec<f64>, usize)> = dataset
            .records
            .iter()
            .map(|r: &Record| (r.resampled(self.train_fs).samples, r.label()))
            .collect();
        self.accuracy(&outputs, self.train_fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_signals::DatasetConfig;

    fn small_dataset() -> EegDataset {
        EegDataset::generate(&DatasetConfig {
            records_per_class: 8,
            duration_s: 6.0,
            ..Default::default()
        })
    }

    #[test]
    fn detector_nails_clean_data() {
        let ds = small_dataset();
        let det = SeizureDetector::train(&ds, 537.6, 1);
        let acc = det.clean_accuracy(&ds);
        assert!(acc >= 0.95, "clean accuracy {acc}");
    }

    #[test]
    fn detector_generalises_to_held_out_records() {
        let train = EegDataset::generate(&DatasetConfig {
            records_per_class: 10,
            duration_s: 6.0,
            seed: 1,
            ..Default::default()
        });
        let test = EegDataset::generate(&DatasetConfig {
            records_per_class: 6,
            duration_s: 6.0,
            seed: 2,
            ..Default::default()
        });
        let det = SeizureDetector::train(&train, 537.6, 1);
        let acc = det.clean_accuracy(&test);
        assert!(acc >= 0.9, "held-out accuracy {acc}");
    }

    #[test]
    fn heavy_noise_costs_accuracy() {
        let ds = small_dataset();
        let det = SeizureDetector::train(&ds, 537.6, 1);
        let mut rng = efficsense_signals::noise::Gaussian::new(9);
        // Massive white noise (200 µV) swamps every feature.
        let outputs: Vec<(Vec<f64>, usize)> = ds
            .records
            .iter()
            .map(|r| {
                let s = r.resampled(537.6);
                let noisy: Vec<f64> = s
                    .samples
                    .iter()
                    .map(|v| v + rng.sample_scaled(200e-6))
                    .collect();
                (noisy, r.label())
            })
            .collect();
        let noisy_acc = det.accuracy(&outputs, 537.6);
        let clean_acc = det.clean_accuracy(&ds);
        assert!(
            noisy_acc < clean_acc - 0.05,
            "noise must cost accuracy: clean {clean_acc}, noisy {noisy_acc}"
        );
    }

    #[test]
    fn probability_in_unit_interval() {
        let ds = small_dataset();
        let det = SeizureDetector::train(&ds, 537.6, 3);
        let r = ds.records[0].resampled(537.6);
        let p = det.probability(&r.samples, 537.6);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn confusion_consistent_with_accuracy() {
        let ds = small_dataset();
        let det = SeizureDetector::train(&ds, 537.6, 5);
        let outputs: Vec<(Vec<f64>, usize)> = ds
            .records
            .iter()
            .map(|r| (r.resampled(537.6).samples, r.label()))
            .collect();
        let acc = det.accuracy(&outputs, 537.6);
        let conf = det.confusion(&outputs, 537.6);
        assert!((conf.accuracy() - acc).abs() < 1e-12);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = small_dataset();
        let a = SeizureDetector::train(&ds, 537.6, 7);
        let b = SeizureDetector::train(&ds, 537.6, 7);
        let r = ds.records[3].resampled(537.6);
        assert_eq!(
            a.probability(&r.samples, 537.6),
            b.probability(&r.samples, 537.6)
        );
    }

    #[test]
    fn epoched_detector_scores_per_window() {
        let ds = small_dataset(); // 6 s records → 3 windows of 2 s
        let det = SeizureDetector::train_epoched(&ds, 537.6, 2.0, 1);
        assert_eq!(det.epoch_s, 2.0);
        let outputs: Vec<(Vec<f64>, usize)> = ds
            .records
            .iter()
            .map(|r| (r.resampled(537.6).samples, r.label()))
            .collect();
        let conf = det.confusion(&outputs, 537.6);
        let decisions = conf.tp + conf.tn + conf.fp + conf.fn_;
        let win = (2.0 * 537.6) as usize;
        let expected: usize = outputs.iter().map(|(s, _)| (s.len() / win).max(1)).sum();
        assert_eq!(decisions, expected, "one decision per full 2-s window");
        assert!(
            decisions > ds.len(),
            "epoching must multiply the decision count"
        );
        assert!(
            conf.accuracy() > 0.9,
            "clean epoched accuracy {}",
            conf.accuracy()
        );
    }

    #[test]
    fn epoched_accuracy_more_noise_sensitive_than_record_level() {
        let ds = small_dataset();
        let rec_det = SeizureDetector::train(&ds, 537.6, 1);
        let ep_det = SeizureDetector::train_epoched(&ds, 537.6, 2.0, 1);
        let mut rng = efficsense_signals::noise::Gaussian::new(5);
        let noisy: Vec<(Vec<f64>, usize)> = ds
            .records
            .iter()
            .map(|r| {
                let s = r.resampled(537.6);
                let v: Vec<f64> = s
                    .samples
                    .iter()
                    .map(|u| u + rng.sample_scaled(12e-6))
                    .collect();
                (v, r.label())
            })
            .collect();
        let rec_acc = rec_det.accuracy(&noisy, 537.6);
        let ep_acc = ep_det.accuracy(&noisy, 537.6);
        // Record-level features average the noise away; windows feel it.
        assert!(
            ep_acc <= rec_acc + 0.02,
            "epoched {ep_acc} should not beat record-level {rec_acc} under noise"
        );
    }

    #[test]
    fn window_vote_matches_window_majority() {
        let ds = small_dataset();
        let det = SeizureDetector::train_epoched(&ds, 537.6, 2.0, 3);
        let r = ds.records[0].resampled(537.6);
        let n = (2.0 * 537.6) as usize;
        let votes: usize = r
            .samples
            .chunks_exact(n)
            .map(|w| det.predict_window(w, 537.6))
            .sum();
        let wins = r.samples.chunks_exact(n).count();
        assert_eq!(
            det.predict(&r.samples, 537.6),
            usize::from(2 * votes >= wins)
        );
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn epoched_rejects_zero_window() {
        let ds = small_dataset();
        let _ = SeizureDetector::train_epoched(&ds, 537.6, 0.0, 1);
    }
}
