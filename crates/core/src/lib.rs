//! # efficsense-core
//!
//! The EffiCSense architectural pathfinding framework (Van Assche et al.,
//! DATE 2022), reimplemented in Rust.
//!
//! EffiCSense couples behavioural mixed-signal models with analytical power
//! models so that a single design-space sweep evaluates signal quality and
//! power consumption simultaneously. This crate assembles the block library
//! of [`efficsense_blocks`] into complete acquisition systems and drives the
//! paper's five-step flow:
//!
//! 1. **Derive high-level model** — [`config::SystemConfig`] describes either
//!    the classical chain (LNA → S/H → SAR ADC → TX) or the passive
//!    charge-sharing compressive-sensing chain (LNA → CS encoder → SAR ADC →
//!    TX), and [`simulate::Simulator`] executes it sample by sample.
//! 2. **Derive power models** — every simulation returns a
//!    [`efficsense_power::PowerBreakdown`] from the Table II models.
//! 3. **Extract technology parameters** — [`efficsense_power::TechnologyParams`].
//! 4. **Insert real sensor data** — [`efficsense_signals::EegDataset`].
//! 5. **Choose goal function** — [`goal::GoalFunction`]: SNR, SNDR or
//!    seizure-detection accuracy, then sweep with [`sweep::Sweep`] and pick
//!    optima with [`pareto`].
//!
//! ```no_run
//! use efficsense_core::prelude::*;
//!
//! let dataset = EegDataset::generate(&DatasetConfig::default());
//! let space = DesignSpace::paper_defaults();
//! let sweep = Sweep::new(SweepConfig::default());
//! let results = sweep.run(&space, &dataset);
//! let front = pareto_front(&results, Objective::MaximizeMetric);
//! for r in front {
//!     println!("{:?} {} µW metric {:.3}", r.point.architecture, r.power_w * 1e6, r.metric);
//! }
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod config;
pub mod detector;
pub mod goal;
pub mod pareto;
pub mod prefix;
pub mod report;
pub mod simulate;
pub mod space;
pub mod stream;
pub mod sweep;

/// Convenience re-exports for framework users.
pub mod prelude {
    pub use crate::cache::{CacheStats, EvalContext, PointKey, SweepCache};
    pub use crate::config::{
        AdcConfig, Architecture, ConfigError, CsConfig, LnaConfig, SystemConfig,
    };
    pub use crate::detector::SeizureDetector;
    pub use crate::goal::GoalFunction;
    pub use crate::pareto::{pareto_front, Objective};
    pub use crate::prefix::{PrefixBudgets, PrefixStats, PrefixStore};
    pub use crate::simulate::{SimOutput, Simulator};
    pub use crate::space::{DesignPoint, DesignSpace};
    pub use crate::stream::{StreamChunk, StreamSimulator, StreamSummary};
    pub use crate::sweep::{
        FailurePolicy, PointError, QuarantinedPoint, Sweep, SweepConfig, SweepReport, SweepResult,
    };
    pub use efficsense_faults::{CompoundPlan, FaultKind, FaultPlan, SeverityProfile};
    pub use efficsense_power::{BlockKind, DesignParams, PowerBreakdown, TechnologyParams};
    pub use efficsense_signals::{DatasetConfig, EegDataset, Record};
}

pub use config::{Architecture, SystemConfig};
pub use simulate::Simulator;
