//! End-to-end system simulation (functional + power, simultaneously).

use crate::config::{ConfigError, CsConfig, SystemConfig};
use crate::prefix::{self, AcquiredPrefix, AnalogParams, PrefixKey, PrefixStore};
use efficsense_blocks::{ChargeSharingEncoder, Lna, Sampler, SarAdc, Transmitter};
use efficsense_cs::decode::reconstruct_batch;
use efficsense_cs::matrix::SensingMatrix;
use efficsense_cs::memo::{self, DictionaryArtifacts, DictionaryParams};
use efficsense_cs::recon::OmpConfig;
use efficsense_dsp::resample::{resample_linear, sample_at};
use efficsense_faults::{FaultPlan, LinkStats};
use efficsense_power::area::AreaModel;
use efficsense_power::models::SampleHoldModel;
use efficsense_power::{PowerBreakdown, PowerModel};
use efficsense_rng::Rng64;
use efficsense_signals::noise::Gaussian;
use std::sync::Arc;

/// Per-block fault-stream salts (see [`FaultPlan::stream`]); spaced so the
/// per-record mix `salt + 256·noise_seed` stays injective.
pub(crate) const SALT_LNA: u64 = 1;
pub(crate) const SALT_CLOCK: u64 = 2;
pub(crate) const SALT_LINK: u64 = 3;

/// Mixes a block salt with the record's noise seed so every record sees a
/// fresh fault realisation while staying reproducible.
pub(crate) fn record_salt(salt: u64, noise_seed: u64) -> u64 {
    salt.wrapping_add(noise_seed.wrapping_mul(256))
}

/// The result of simulating one record through a candidate system.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// The acquired signal referred back to the sensor input (V), at
    /// `f_sample`. For the CS architecture this is the reconstruction.
    pub input_referred: Vec<f64>,
    /// The clean input resampled to `f_sample` and trimmed to the same
    /// length — the reference for SNR-style metrics.
    pub reference: Vec<f64>,
    /// Output sample rate (Hz).
    pub fs_out: f64,
    /// Per-block power estimate of the configuration (W).
    pub power: PowerBreakdown,
    /// Total capacitor count in multiples of `C_u,min` (the Fig. 9 x-axis).
    pub area_units: f64,
    /// Data words sent to the transmitter for this record.
    pub words: u64,
    /// Radio-link accounting when a packet-loss fault is injected; `None`
    /// on the clean path.
    pub link: Option<LinkStats>,
}

impl SimOutput {
    /// Total power (W).
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.power.total().value()
    }
}

/// Executes a [`SystemConfig`] on input records.
///
/// The simulator precomputes everything that is fixed per design point
/// (sensing matrix, effective-matrix dictionary); [`Simulator::run`] then
/// processes one record. Mismatch draws are fixed per simulator (one "chip"),
/// noise streams vary with the `noise_seed` so repeated records see fresh
/// noise.
#[derive(Debug, Clone)]
pub struct Simulator {
    pub(crate) cfg: SystemConfig,
    pub(crate) arch: ArchState,
    /// Injected fault plan; `None` (and clean plans) leave every block's
    /// behaviour bit-identical to the unfaulted simulator.
    pub(crate) plan: Option<FaultPlan>,
    /// Worker threads for the batched per-record OMP decode (`<= 1` decodes
    /// inline). Not part of [`SystemConfig`]: thread count never changes
    /// results (the batch decoder is bit-identical across counts), so it
    /// must not perturb cache keys.
    pub(crate) decode_threads: usize,
    /// Attached Level-3 prefix store ([`crate::prefix`]); `None` runs every
    /// stage from scratch. Like `decode_threads`, the store never changes
    /// results — artifacts are derived from their keys — so it is not part
    /// of any cache key.
    pub(crate) prefix: Option<Arc<PrefixStore>>,
    /// Full configuration rendering, computed once per simulator; the
    /// config axis of the `acquired` prefix key.
    pub(crate) cfg_key: Arc<str>,
    /// Canonical fault-plan rendering (`"clean"` when no active plan); the
    /// plan axis of the `acquired` prefix key. Kept in lockstep with `plan`
    /// by [`Simulator::set_fault_plan`].
    pub(crate) plan_key: Arc<str>,
}

/// Reusable per-thread simulation buffers. A sweep worker holds one scratch
/// for its whole run: [`Simulator::run_with_scratch`] draws output buffers
/// from the pool instead of allocating, and the worker returns them with
/// [`SimScratch::reclaim_output`] once the goal function has consumed the
/// [`SimOutput`]. Purely an allocation-traffic optimisation — every buffer
/// is cleared before reuse, so results are bit-identical with or without
/// scratch reuse.
#[derive(Debug, Default)]
pub struct SimScratch {
    pool: Vec<Vec<f64>>,
}

impl SimScratch {
    /// An empty scratch pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a cleared buffer with at least `capacity` reserved.
    fn take(&mut self, capacity: usize) -> Vec<f64> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.reserve(capacity);
        v
    }

    /// Returns a buffer to the pool for reuse.
    pub fn reclaim(&mut self, v: Vec<f64>) {
        // Cap the pool so a scratch held across heterogeneous workloads
        // cannot accumulate buffers without bound.
        if self.pool.len() < 8 {
            self.pool.push(v);
        }
    }

    /// Returns a consumed output's signal buffers to the pool.
    pub fn reclaim_output(&mut self, out: SimOutput) {
        self.reclaim(out.input_referred);
        self.reclaim(out.reference);
    }
}

/// A signal buffer that is either shared out of the prefix store or owned
/// by this run; both deref to the same slice, keeping the downstream
/// pipeline agnostic of where its input came from.
enum Buf {
    Shared(Arc<Vec<f64>>),
    Owned(Vec<f64>),
}

impl std::ops::Deref for Buf {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        match self {
            Buf::Shared(v) => v,
            Buf::Owned(v) => v,
        }
    }
}

/// Architecture-specific precomputed state. Splitting this out of
/// [`Simulator`] (instead of a trio of `Option`s) lets the CS paths borrow
/// their state without `expect`-style unwrapping.
#[derive(Debug, Clone)]
pub(crate) enum ArchState {
    /// Nyquist baseline: nothing to precompute per design point.
    Baseline,
    /// Compressive sensing: sensing schedule and decoder dictionary.
    Cs(CsState),
}

#[derive(Debug, Clone)]
pub(crate) struct CsState {
    /// The CS design variables (copied out of the config so the CS paths
    /// never have to re-unwrap `cfg.cs`).
    pub(crate) cs: CsConfig,
    /// The sensing schedule, shared process-wide across simulators with the
    /// same `(M, N_Φ, s, seed)` via [`efficsense_cs::memo`].
    pub(crate) phi: Arc<SensingMatrix>,
    /// Decoder dictionary `A = Φ_eff·Ψ`, its OMP column norms, and the
    /// mean row energy of the effective matrix (the per-measurement noise
    /// gain of the discrepancy stopping rule) — likewise memoized.
    pub(crate) art: Arc<DictionaryArtifacts>,
}

impl Simulator {
    /// Builds a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint as a [`ConfigError`].
    pub fn new(cfg: SystemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let arch = if let Some(cs) = &cfg.cs {
            let seed = cfg.seed ^ 0x5EB1;
            let phi = memo::srbm(cs.m, cs.n_phi, cs.s, seed);
            // Leakage-aware decoding: the droop is set by design constants
            // (τ = C_hold·V_ref/I_leak), so the decoder folds it into the
            // effective matrix alongside the Eq. (1) weights. Only the
            // random imperfections (mismatch, kT/C) stay unmodelled.
            let decay = if cs.imperfections.leakage {
                let tau = cs.c_hold_f * cfg.design.v_ref / cfg.tech.i_leak_a;
                (-(1.0 / cfg.design.f_sample_hz()) / tau).exp()
            } else {
                1.0
            };
            // Dictionary, column norms and noise gain are memoized
            // process-wide: every design point sharing this sensing
            // configuration reuses one bit-identical instance.
            let art = memo::dictionary(&DictionaryParams {
                m: cs.m,
                n_phi: cs.n_phi,
                s: cs.s,
                seed,
                c_sample_f: cs.c_sample_f,
                c_hold_f: cs.c_hold_f,
                decay,
                basis: cs.basis,
            });
            ArchState::Cs(CsState {
                cs: cs.clone(),
                phi,
                art,
            })
        } else {
            ArchState::Baseline
        };
        // The full `Debug` rendering covers every configuration field — the
        // same sufficiency argument as the L1 point key — and is computed
        // once here rather than per record.
        let cfg_key = Arc::from(format!("{cfg:?}"));
        Ok(Self {
            cfg,
            arch,
            plan: None,
            decode_threads: 1,
            prefix: None,
            cfg_key,
            plan_key: Arc::from("clean"),
        })
    }

    /// Sets the decode fan-out for subsequent [`Simulator::run`] calls.
    /// Sweeps already parallelise across points, so the default (inline)
    /// is right unless a single point is being evaluated in isolation.
    pub fn set_decode_threads(&mut self, threads: usize) {
        self.decode_threads = threads.max(1);
    }

    /// Builds a simulator with a fault plan injected from the start.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint as a [`ConfigError`].
    pub fn with_fault_plan(cfg: SystemConfig, plan: FaultPlan) -> Result<Self, ConfigError> {
        let mut sim = Self::new(cfg)?;
        sim.set_fault_plan(Some(plan));
        Ok(sim)
    }

    /// Installs (or clears) the fault plan for subsequent [`Simulator::run`]
    /// calls. Clean plans are dropped so the clean path stays bit-identical.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan.filter(|p| !p.is_clean());
        self.plan_key = match &self.plan {
            Some(p) => Arc::from(p.canonical_key()),
            None => Arc::from("clean"),
        };
    }

    /// Attaches (or detaches) a Level-3 prefix store. Attaching a store
    /// never changes any output bit — see [`crate::prefix`] — it only lets
    /// records reuse front-end artifacts built by earlier runs, including
    /// runs of other simulators sharing the same store.
    pub fn set_prefix_store(&mut self, store: Option<Arc<PrefixStore>>) {
        self.prefix = store;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Baseline S&H capacitor (F): the kT/C bound clamped to the technology
    /// minimum — at biomedical resolutions matching, not noise, sets the cap.
    pub(crate) fn sh_cap_f(&self) -> f64 {
        self.cfg
            .design
            .c_sample_bound()
            .value()
            .max(self.cfg.tech.c_u_min_f)
    }

    /// Capacitance loading the LNA: S&H cap (baseline) or `C_hold` (CS).
    pub fn lna_load_f(&self) -> f64 {
        match &self.cfg.cs {
            Some(cs) => cs.c_hold_f,
            None => self.sh_cap_f(),
        }
    }

    /// Simulates one record (`input` at `fs_in` Hz). `noise_seed` decorrelates
    /// the noise streams between records.
    ///
    /// # Panics
    ///
    /// Panics if `input` is empty, `fs_in <= 0`, or (CS only) the record is
    /// shorter than one `N_Φ`-sample frame at `f_sample`.
    pub fn run(&self, input: &[f64], fs_in: f64, noise_seed: u64) -> SimOutput {
        self.run_with_scratch(input, fs_in, noise_seed, &mut SimScratch::new())
    }

    /// [`Simulator::run`] drawing its output buffers from a caller-held
    /// scratch pool; sweep workers keep one per thread so steady-state
    /// evaluation stops allocating per record.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run`].
    pub fn run_with_scratch(
        &self,
        input: &[f64],
        fs_in: f64,
        noise_seed: u64,
        scratch: &mut SimScratch,
    ) -> SimOutput {
        assert!(!input.is_empty(), "cannot simulate an empty record");
        assert!(fs_in > 0.0, "input rate must be positive");
        if let ArchState::Cs(state) = &self.arch {
            let n_samples = (input.len() as f64 / fs_in * self.cfg.design.f_sample_hz()) as usize;
            assert!(
                n_samples >= state.cs.n_phi,
                "record too short for the CS architecture: {n_samples} samples at f_sample \
                 but one frame needs N_Φ = {}",
                state.cs.n_phi
            );
        }
        let cfg = &self.cfg;
        let f_ct = cfg.f_ct_hz();
        let f_s = cfg.design.f_sample_hz();
        // L3: fingerprint the record once per run; every prefix key hangs
        // off it. `None` keeps the store-less path allocation-for-allocation
        // identical to before the store existed.
        let store = self.prefix.as_deref().map(|s| {
            let fp = prefix::record_fingerprint(input);
            (s, fp)
        });
        // Deepest prefix first: a whole acquired front-end output makes the
        // resample/LNA/encode/decode chain unnecessary.
        let acquired_key = store.map(|(s, fp)| {
            (
                s,
                prefix::acquired_key(&self.cfg_key, &self.plan_key, fp, fs_in, noise_seed),
            )
        });
        if let Some((s, key)) = acquired_key {
            if let Some(acq) = s.get_acquired(key) {
                let mut input_referred = scratch.take(acq.input_referred.len());
                input_referred.extend_from_slice(&acq.input_referred);
                let reference =
                    self.reference_signal(input, fs_in, f_s, input_referred.len(), store, scratch);
                let power = {
                    let _power_span = efficsense_obs::span!("stage.power");
                    self.power_breakdown(acq.adc_in_rms)
                };
                return SimOutput {
                    input_referred,
                    reference,
                    fs_out: f_s,
                    power,
                    area_units: self.area_units(),
                    words: acq.words,
                    link: acq.link,
                };
            }
        }
        // Steps 1–2 under their own span so per-stage telemetry separates the
        // analog front end (resample + LNA) from acquisition and decode. The
        // analog key is derived from the exact LNA constructor inputs and
        // fault stream, so two runs sharing a key are bit-identical by
        // construction.
        let lna_seed = cfg.seed ^ noise_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let lna_fault = self.plan.as_ref().and_then(|plan| {
            plan.lna
                .filter(|f| !f.is_noop())
                .map(|f| (f, plan.stream(record_salt(SALT_LNA, noise_seed))))
        });
        let analog_key = store.map(|(s, fp)| {
            (
                s,
                prefix::analog_key(&AnalogParams {
                    record_fp: fp,
                    fs_in,
                    f_ct,
                    gain: cfg.lna.gain,
                    noise_floor_vrms: cfg.lna.noise_floor_vrms,
                    bandwidth_hz: cfg.design.bw_lna_hz(),
                    k3: cfg.lna.k3,
                    v_clip: cfg.design.v_dd / 2.0,
                    lna_seed,
                    fault: lna_fault,
                }),
            )
        });
        let amplified: Buf = {
            let _analog_span = efficsense_obs::span!("sim.analog");
            match analog_key.and_then(|(s, key)| s.get_analog(key)) {
                Some(hit) => Buf::Shared(hit),
                None => {
                    // Priced by the L3 cache-efficacy report: this span is
                    // exactly the work an `memo.analog` hit avoids.
                    let _build_span = efficsense_obs::span!("sim.analog.build");
                    let ct = self.ct_signal(input, fs_in, f_ct, store);
                    // LNA: fresh instance; noise varies with the record.
                    let mut lna = Lna::from_design(
                        &cfg.design,
                        cfg.lna.gain,
                        cfg.lna.noise_floor_vrms,
                        cfg.lna.k3,
                        f_ct,
                        lna_seed,
                    );
                    if let Some((fault, stream_seed)) = lna_fault {
                        lna.inject_rail_fault(Some(fault), stream_seed);
                    }
                    let built = lna.process_buffer(&ct);
                    match analog_key {
                        Some((s, key)) => Buf::Shared(s.insert_analog(key, built)),
                        None => Buf::Owned(built),
                    }
                }
            }
        };
        efficsense_dsp::approx::debug_assert_all_finite(&amplified, "simulate: LNA output");
        // Step 3: architecture-specific acquisition.
        let (acquired, words, adc_in_rms, link) = match &self.arch {
            ArchState::Baseline => self.acquire_baseline(&amplified, f_ct, noise_seed),
            ArchState::Cs(state) => {
                self.acquire_cs(state, &amplified, f_ct, noise_seed, analog_key)
            }
        };
        // Refer back to the sensor input.
        let mut input_referred = scratch.take(acquired.len());
        input_referred.extend(acquired.iter().map(|v| v / cfg.lna.gain));
        efficsense_dsp::approx::debug_assert_all_finite(
            &input_referred,
            "simulate: input-referred output",
        );
        scratch.reclaim(acquired);
        if let Some((s, key)) = acquired_key {
            s.insert_acquired(
                key,
                AcquiredPrefix {
                    input_referred: input_referred.clone(),
                    words,
                    adc_in_rms,
                    link,
                },
            );
        }
        let reference =
            self.reference_signal(input, fs_in, f_s, input_referred.len(), store, scratch);
        let power = {
            let _power_span = efficsense_obs::span!("stage.power");
            self.power_breakdown(adc_in_rms)
        };
        let area_units = self.area_units();
        SimOutput {
            input_referred,
            reference,
            fs_out: f_s,
            power,
            area_units,
            words,
            link,
        }
    }

    /// The resampled continuous-time record — via the prefix store when one
    /// is attached (the artifact is fault-free and config-independent, so it
    /// is shared across every sweep point touching this record).
    fn ct_signal(
        &self,
        input: &[f64],
        fs_in: f64,
        f_ct: f64,
        store: Option<(&PrefixStore, u64)>,
    ) -> Buf {
        match store {
            Some((s, fp)) => {
                let key = prefix::ct_key(fp, fs_in, f_ct);
                match s.get_ct(key) {
                    Some(hit) => Buf::Shared(hit),
                    None => Buf::Shared(s.insert_ct(key, resample_linear(input, fs_in, f_ct))),
                }
            }
            None => Buf::Owned(resample_linear(input, fs_in, f_ct)),
        }
    }

    /// The clean reference signal (input at `f_sample`, exactly `len`
    /// samples), memoized per record when a store is attached. The collect
    /// covers `0..len` exactly, so no trailing truncation is needed.
    fn reference_signal(
        &self,
        input: &[f64],
        fs_in: f64,
        f_s: f64,
        len: usize,
        store: Option<(&PrefixStore, u64)>,
        scratch: &mut SimScratch,
    ) -> Vec<f64> {
        let build = |out: &mut Vec<f64>| {
            // Priced by the L3 cache-efficacy report (memo.reference).
            let _build_span = efficsense_obs::span!("sim.reference.build");
            out.extend((0..len).map(|i| sample_at(input, fs_in, i as f64 / f_s)));
        };
        let mut reference = scratch.take(len);
        match store {
            Some((s, fp)) => {
                let key = prefix::reference_key(fp, fs_in, f_s, len);
                match s.get_reference(key) {
                    Some(hit) => reference.extend_from_slice(&hit),
                    None => {
                        build(&mut reference);
                        s.insert_reference(key, reference.clone());
                    }
                }
            }
            None => build(&mut reference),
        }
        reference
    }

    /// Simulates the lossy link over a word stream, concealing undelivered
    /// words by holding the last delivered value (the receiver's zero-order
    /// concealment). Returns `None` stats when no link fault is active.
    fn apply_link_hold(&self, data: &mut [f64], noise_seed: u64) -> Option<LinkStats> {
        let plan = self.plan.as_ref()?;
        let link = plan.link.filter(|l| !l.is_noop())?;
        let mut rng = Rng64::new(plan.stream(record_salt(SALT_LINK, noise_seed)));
        let (delivered, stats) = link.apply(data.len(), &mut rng);
        let mut held = 0.0;
        for (v, ok) in data.iter_mut().zip(&delivered) {
            if *ok {
                held = *v;
            } else {
                *v = held;
            }
        }
        Some(stats)
    }

    fn acquire_baseline(
        &self,
        amplified: &[f64],
        f_ct: f64,
        noise_seed: u64,
    ) -> (Vec<f64>, u64, f64, Option<LinkStats>) {
        let cfg = &self.cfg;
        let mut sampler = Sampler::new(
            cfg.design.f_sample_hz(),
            self.sh_cap_f(),
            0.0,
            cfg.seed ^ noise_seed ^ 0x5A5A,
        );
        if let Some(plan) = &self.plan {
            sampler
                .inject_clock_fault(plan.clock, plan.stream(record_salt(SALT_CLOCK, noise_seed)));
        }
        let sampled = sampler.sample(amplified, f_ct);
        let mut adc = SarAdc::new(
            cfg.design.n_bits,
            cfg.design.v_fs,
            cfg.adc.c_u_f,
            cfg.adc.comparator_noise_v,
            cfg.adc.comparator_offset_v,
            &cfg.tech,
            cfg.seed,
        );
        if let Some(plan) = &self.plan {
            adc.inject_stuck_bit(plan.adc);
        }
        // Shifted RMS as a running fold — the same sequential square/sum/
        // sqrt order as `dsp::stats::rms` over a shifted copy (bit-identical)
        // without materialising the copy.
        let mut shifted_sq = 0.0;
        for v in &sampled {
            let s = v + cfg.design.v_fs / 2.0;
            shifted_sq += s * s;
        }
        let shifted_rms = if sampled.is_empty() {
            0.0
        } else {
            (shifted_sq / sampled.len() as f64).sqrt()
        };
        let mut out = adc.process_buffer(&sampled);
        let words = out.len() as u64;
        let link = self.apply_link_hold(&mut out, noise_seed);
        (out, words, shifted_rms, link)
    }

    fn acquire_cs(
        &self,
        state: &CsState,
        amplified: &[f64],
        f_ct: f64,
        noise_seed: u64,
        sampled_ctx: Option<(&PrefixStore, PrefixKey)>,
    ) -> (Vec<f64>, u64, f64, Option<LinkStats>) {
        let cfg = &self.cfg;
        let cs = &state.cs;
        let phi = state.phi.as_ref();
        let art = state.art.as_ref();
        let f_s = cfg.design.f_sample_hz();
        // The encoder's own sample caps do the sampling; take ideal instants
        // unless a clock fault jitters/drops them.
        let duration = amplified.len() as f64 / f_ct;
        let n_samples = (duration * f_s).floor() as usize;
        let clock = self
            .plan
            .as_ref()
            .and_then(|p| p.clock.filter(|c| !c.is_noop()));
        let sampled: Buf = if let Some(c) = clock {
            // Mirrors Sampler's fault path: a failed acquisition holds the
            // previous sample-cap charge. (Not memoized: clock faults are a
            // per-plan stream, so sharing would buy nothing.)
            let seed = self
                .plan
                .as_ref()
                .map_or(0, |p| p.stream(record_salt(SALT_CLOCK, noise_seed)));
            let mut jitter_rng = Gaussian::new(seed ^ 0x0C10_CC00);
            let mut drop_rng = Rng64::new(seed ^ 0x0D20_9ED5);
            let mut out = Vec::with_capacity(n_samples);
            let mut held = 0.0;
            for i in 0..n_samples {
                let mut t = i as f64 / f_s;
                if c.jitter_periods > 0.0 {
                    t += jitter_rng.sample_scaled(c.jitter_periods / f_s);
                }
                if drop_rng.chance(c.drop_prob) {
                    out.push(held);
                    continue;
                }
                held = sample_at(amplified, f_ct, t.max(0.0));
                out.push(held);
            }
            Buf::Owned(out)
        } else {
            // Clean-clock sampling is a pure function of the amplified
            // buffer, so its memo key composes the analog key.
            let key =
                sampled_ctx.map(|(s, analog)| (s, prefix::sampled_key(analog, f_s, n_samples)));
            match key.and_then(|(s, k)| s.get_sampled(k)) {
                Some(hit) => Buf::Shared(hit),
                None => {
                    // Priced by the L3 cache-efficacy report (memo.sampled).
                    let _build_span = efficsense_obs::span!("sim.sample.build");
                    let built: Vec<f64> = (0..n_samples)
                        .map(|i| sample_at(amplified, f_ct, i as f64 / f_s))
                        .collect();
                    match key {
                        Some((s, k)) => Buf::Shared(s.insert_sampled(k, built)),
                        None => Buf::Owned(built),
                    }
                }
            }
        };
        let mut encoder = ChargeSharingEncoder::new(
            phi.clone(),
            cs.c_sample_f,
            cs.c_hold_f,
            1.0 / f_s,
            cs.imperfections,
            &cfg.tech,
            &cfg.design,
            cfg.seed ^ noise_seed.rotate_left(17),
        );
        let mut adc = SarAdc::new(
            cfg.design.n_bits,
            cfg.design.v_fs,
            cfg.adc.c_u_f,
            cfg.adc.comparator_noise_v,
            cfg.adc.comparator_offset_v,
            &cfg.tech,
            cfg.seed,
        );
        let mut link_ctx = None;
        if let Some(plan) = &self.plan {
            encoder.inject_leakage_fault(plan.leakage, &cfg.tech, &cfg.design);
            adc.inject_stuck_bit(plan.adc);
            if let Some(l) = plan.link.filter(|l| !l.is_noop()) {
                link_ctx = Some((
                    l,
                    Rng64::new(plan.stream(record_salt(SALT_LINK, noise_seed))),
                ));
            }
        }
        // Discrepancy-principle stopping (Morozov): the designer knows the
        // front-end noise level, so the decoder stops fitting once the
        // residual reaches the expected measurement noise instead of fitting
        // noise into spurious atoms. Per-measurement noise variance:
        //   (vn·gain)²·Σw²  (sampled LNA noise through the weights)
        // + σ_kTC²·Σw²      (per-share sampling noise)
        // + LSB²/12         (measurement quantisation).
        let sampled_noise = cfg.lna.noise_floor_vrms * cfg.lna.gain;
        let ktc_var = if cs.imperfections.ktc_noise {
            efficsense_power::kt() / cs.c_sample_f
        } else {
            0.0
        };
        let lsb = cfg.design.lsb();
        let meas_noise_var =
            (sampled_noise * sampled_noise + ktc_var) * art.mean_row_w2 + lsb * lsb / 12.0;
        let noise_norm = (meas_noise_var * cs.m as f64).sqrt();
        let mut out = Vec::with_capacity(n_samples);
        let mut words = 0u64;
        let mut rms_acc = 0.0;
        let mut rms_n = 0usize;
        let mut link_stats: Option<LinkStats> = None;
        // Front-end pass: encode and digitise every frame first (the encoder
        // and ADC are stateful, so their sample order is unchanged), then
        // hand the whole record to the batched decoder in one call.
        let n_frames = n_samples / cs.n_phi;
        let mut frames: Vec<Vec<f64>> = Vec::with_capacity(n_frames);
        let mut omp_cfgs: Vec<OmpConfig> = Vec::with_capacity(n_frames);
        let encode_span = efficsense_obs::span!("sim.encode");
        for frame in sampled.chunks_exact(cs.n_phi) {
            let measurements = encoder.encode_frame(frame);
            // Digitise the measurements.
            let mut digitised: Vec<f64> = measurements.iter().map(|&v| adc.process(v)).collect();
            words += digitised.len() as u64;
            for &v in &digitised {
                rms_acc += (v + cfg.design.v_fs / 2.0).powi(2);
                rms_n += 1;
            }
            // Measurement words lost on the radio: the decoder knows which
            // packets never arrived, so it treats them as zero-valued
            // measurements (erasure handling) before inverting.
            if let Some((l, rng)) = &mut link_ctx {
                let (delivered, stats) = l.apply(digitised.len(), rng);
                for (v, ok) in digitised.iter_mut().zip(&delivered) {
                    if !*ok {
                        *v = 0.0;
                    }
                }
                link_stats
                    .get_or_insert_with(LinkStats::default)
                    .accumulate(&stats);
            }
            let y_norm = efficsense_cs::linalg::norm2(&digitised).max(1e-300);
            omp_cfgs.push(OmpConfig {
                sparsity: cs.omp_sparsity,
                residual_tol: (noise_norm / y_norm).clamp(1e-4, 0.9),
            });
            frames.push(digitised);
        }
        drop(encode_span);
        // Decode with the nominal dictionary (the decoder does not know the
        // mismatch/kTC realisation). All frames of the record go through the
        // Gram-cached batch decoder in one call.
        {
            let _recon_span = efficsense_obs::span!("stage.reconstruct");
            let decoded = reconstruct_batch(art, &frames, &omp_cfgs, self.decode_threads);
            for xh in decoded {
                out.extend(xh);
            }
        }
        let adc_in_rms = if rms_n > 0 {
            (rms_acc / rms_n as f64).sqrt()
        } else {
            0.0
        };
        (out, words, adc_in_rms, link_stats)
    }

    /// Assembles the Table II power breakdown for this configuration.
    ///
    /// `adc_in_rms` is the measured RMS at the converter input (unipolar
    /// frame), feeding the signal-dependent DAC switching model.
    pub fn power_breakdown(&self, adc_in_rms: f64) -> PowerBreakdown {
        let cfg = &self.cfg;
        let mut b = PowerBreakdown::new();
        // LNA.
        let lna = Lna::from_design(
            &cfg.design,
            cfg.lna.gain,
            cfg.lna.noise_floor_vrms,
            cfg.lna.k3,
            cfg.f_ct_hz(),
            0,
        );
        b.add(
            efficsense_power::BlockKind::Lna,
            lna.power(self.lna_load_f(), &cfg.tech, &cfg.design),
        );
        // ADC (comparator + SAR logic + DAC).
        let adc = SarAdc::new(
            cfg.design.n_bits,
            cfg.design.v_fs,
            cfg.adc.c_u_f,
            cfg.adc.comparator_noise_v,
            cfg.adc.comparator_offset_v,
            &cfg.tech,
            cfg.seed,
        );
        b = b.merged(&adc.power_breakdown(adc_in_rms, &cfg.tech, &cfg.design));
        // A lossy link retransmits: the radio clocks out expected-attempts×
        // the data words, inflating the average TX power by the same factor.
        let retry_factor = self
            .plan
            .as_ref()
            .and_then(|p| p.link.filter(|l| !l.is_noop()))
            .map_or(1.0, |l| l.expected_attempts());
        match &self.arch {
            ArchState::Baseline => {
                // S&H plus Nyquist-rate transmission.
                b.add(
                    efficsense_power::BlockKind::SampleHold,
                    SampleHoldModel.power(&cfg.tech, &cfg.design),
                );
                let tx = Transmitter::baseline(&cfg.design);
                b.add(
                    efficsense_power::BlockKind::Transmitter,
                    tx.power(&cfg.tech, &cfg.design) * retry_factor,
                );
            }
            ArchState::Cs(state) => {
                let cs = &state.cs;
                let enc = ChargeSharingEncoder::new(
                    state.phi.as_ref().clone(),
                    cs.c_sample_f,
                    cs.c_hold_f,
                    1.0 / cfg.design.f_sample_hz(),
                    cs.imperfections,
                    &cfg.tech,
                    &cfg.design,
                    cfg.seed,
                );
                b = b.merged(&enc.power_breakdown(&cfg.tech, &cfg.design));
                let tx = Transmitter::compressive(&cfg.design, cs.m, cs.n_phi);
                b.add(
                    efficsense_power::BlockKind::Transmitter,
                    tx.power(&cfg.tech, &cfg.design) * retry_factor,
                );
            }
        }
        b
    }

    /// A human-readable specification sheet of this design point: the
    /// architecture, its Table III parameters, the estimated per-block power
    /// at a nominal mid-scale input, area, and data rate.
    pub fn spec_sheet(&self) -> String {
        use std::fmt::Write as _;
        let cfg = &self.cfg;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "EffiCSense design point — {} architecture",
            cfg.architecture()
        );
        let _ = writeln!(s, "--------------------------------------------------");
        let _ = writeln!(
            s,
            "ADC: {} bit SAR @ {:.1} Hz (f_clk {:.1} Hz), V_FS {} V",
            cfg.design.n_bits,
            cfg.design.f_sample_hz(),
            cfg.design.f_clk_hz(),
            cfg.design.v_fs
        );
        let _ = writeln!(
            s,
            "LNA: gain {:.0}, noise floor {:.2} µVrms, BW {:.0} Hz",
            cfg.lna.gain,
            cfg.lna.noise_floor_vrms * 1e6,
            cfg.design.bw_lna_hz()
        );
        if let Some(cs) = &cfg.cs {
            let _ = writeln!(
                s,
                "CS encoder: M {} / N_Φ {} (s = {}), C_sample {:.2} pF, C_hold {:.2} pF, basis {}",
                cs.m,
                cs.n_phi,
                cs.s,
                cs.c_sample_f * 1e12,
                cs.c_hold_f * 1e12,
                cs.basis
            );
            let _ = writeln!(
                s,
                "decoder: OMP k = {}, leakage-aware effective matrix",
                cs.omp_sparsity
            );
        }
        let _ = writeln!(s, "area: {:.0} C_u,min", self.area_units());
        let _ = writeln!(s, "power @ mid-scale input:");
        let _ = write!(s, "{}", self.power_breakdown(cfg.design.v_fs / 2.0));
        s
    }

    /// Total capacitor count in `C_u,min` multiples (Fig. 9 x-axis).
    pub fn area_units(&self) -> f64 {
        let cfg = &self.cfg;
        let model = match &cfg.cs {
            None => AreaModel::baseline(&cfg.tech, &cfg.design, cfg.adc.c_u_f),
            Some(cs) => AreaModel::compressive(
                &cfg.tech,
                &cfg.design,
                cfg.adc.c_u_f,
                cs.m,
                cs.s,
                cs.c_hold_f,
                cs.c_sample_f,
            ),
        };
        model.total_units(&cfg.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CsConfig;
    use efficsense_dsp::metrics::snr_fit_db;
    use efficsense_dsp::spectrum::sine;

    fn eeg_like_tone(fs: f64, seconds: f64) -> Vec<f64> {
        // 8 Hz, 100 µV: inside every band of interest.
        sine((fs * seconds) as usize, fs, 8.0, 100e-6, 0.3)
    }

    #[test]
    fn baseline_acquires_tone_with_good_snr() {
        let mut cfg = SystemConfig::baseline(8);
        cfg.lna.noise_floor_vrms = 1e-6;
        let sim = Simulator::new(cfg).expect("valid");
        let x = eeg_like_tone(173.61, 4.0);
        let out = sim.run(&x, 173.61, 1);
        assert_eq!(out.fs_out, 537.6);
        assert_eq!(out.input_referred.len(), out.reference.len());
        let snr = snr_fit_db(&out.reference, &out.input_referred);
        assert!(snr > 20.0, "baseline SNR {snr} dB");
    }

    #[test]
    fn baseline_snr_degrades_with_lna_noise() {
        let x = eeg_like_tone(173.61, 4.0);
        let snr_at = |noise: f64| {
            let mut cfg = SystemConfig::baseline(8);
            cfg.lna.noise_floor_vrms = noise;
            let sim = Simulator::new(cfg).expect("valid");
            let out = sim.run(&x, 173.61, 1);
            snr_fit_db(&out.reference, &out.input_referred)
        };
        let quiet = snr_at(1e-6);
        let noisy = snr_at(20e-6);
        assert!(quiet > noisy + 10.0, "quiet {quiet} vs noisy {noisy}");
    }

    #[test]
    fn cs_reconstructs_tone() {
        let mut cfg = SystemConfig::compressive(8, CsConfig::default());
        cfg.lna.noise_floor_vrms = 2e-6;
        let sim = Simulator::new(cfg).expect("valid");
        let x = eeg_like_tone(173.61, 4.0);
        let out = sim.run(&x, 173.61, 1);
        // 4 s → 2150 samples → 5 full frames of 384.
        assert_eq!(out.input_referred.len(), 5 * 384);
        let snr = snr_fit_db(&out.reference, &out.input_referred);
        assert!(snr > 8.0, "CS reconstruction SNR {snr} dB");
    }

    #[test]
    fn cs_sends_fewer_words_than_baseline() {
        let x = eeg_like_tone(173.61, 4.0);
        let base = Simulator::new(SystemConfig::baseline(8))
            .expect("valid")
            .run(&x, 173.61, 0);
        let cs_cfg = CsConfig {
            m: 75,
            ..Default::default()
        };
        let cs = Simulator::new(SystemConfig::compressive(8, cs_cfg))
            .expect("valid")
            .run(&x, 173.61, 0);
        assert!(
            cs.words * 4 < base.words,
            "cs {} vs baseline {}",
            cs.words,
            base.words
        );
    }

    #[test]
    fn cs_transmitter_power_lower_baseline_logic_higher() {
        let x = eeg_like_tone(173.61, 4.0);
        let base = Simulator::new(SystemConfig::baseline(8))
            .expect("valid")
            .run(&x, 173.61, 0);
        let cs = Simulator::new(SystemConfig::compressive(
            8,
            CsConfig {
                m: 75,
                ..Default::default()
            },
        ))
        .expect("valid")
        .run(&x, 173.61, 0);
        use efficsense_power::BlockKind::*;
        assert!(cs.power.get(Transmitter) < 0.3 * base.power.get(Transmitter));
        assert!(cs.power.get(CsEncoderLogic) > base.power.get(CsEncoderLogic));
    }

    #[test]
    fn cs_area_much_larger() {
        let base = Simulator::new(SystemConfig::baseline(8)).expect("valid");
        let cs = Simulator::new(SystemConfig::compressive(8, CsConfig::default())).expect("valid");
        assert!(cs.area_units() > 10.0 * base.area_units());
    }

    #[test]
    fn deterministic_per_seed() {
        let x = eeg_like_tone(173.61, 2.0);
        let sim = Simulator::new(SystemConfig::baseline(8)).expect("valid");
        assert_eq!(sim.run(&x, 173.61, 7), sim.run(&x, 173.61, 7));
    }

    #[test]
    fn different_noise_seeds_differ() {
        let x = eeg_like_tone(173.61, 2.0);
        let sim = Simulator::new(SystemConfig::baseline(8)).expect("valid");
        assert_ne!(
            sim.run(&x, 173.61, 1).input_referred,
            sim.run(&x, 173.61, 2).input_referred
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = SystemConfig::baseline(8);
        cfg.lna.gain = -1.0;
        assert!(Simulator::new(cfg).is_err());
    }

    #[test]
    #[should_panic(expected = "record too short")]
    fn cs_rejects_sub_frame_records() {
        let sim = Simulator::new(SystemConfig::compressive(8, CsConfig::default())).expect("valid");
        // 0.5 s at 537.6 Hz is only 268 samples < N_Φ = 384.
        let x = eeg_like_tone(173.61, 0.5);
        let _ = sim.run(&x, 173.61, 1);
    }

    #[test]
    fn spec_sheet_mentions_key_parameters() {
        let sim = Simulator::new(SystemConfig::compressive(8, CsConfig::default())).expect("valid");
        let sheet = sim.spec_sheet();
        assert!(sheet.contains("cs architecture"));
        assert!(sheet.contains("8 bit SAR"));
        assert!(sheet.contains("M 150 / N_Φ 384"));
        assert!(sheet.contains("TOTAL"));
        let base = Simulator::new(SystemConfig::baseline(6)).expect("valid");
        let sheet = base.spec_sheet();
        assert!(sheet.contains("baseline architecture"));
        assert!(sheet.contains("6 bit SAR"));
        assert!(!sheet.contains("CS encoder"));
    }

    #[test]
    fn clean_fault_plan_is_bit_identical_for_both_architectures() {
        use efficsense_faults::FaultPlan;
        let x = eeg_like_tone(173.61, 4.0);
        for cfg in [
            SystemConfig::baseline(8),
            SystemConfig::compressive(8, CsConfig::default()),
        ] {
            let clean = Simulator::new(cfg.clone()).expect("valid");
            let faulted = Simulator::with_fault_plan(cfg, FaultPlan::clean(0xFA17)).expect("valid");
            assert_eq!(
                clean.run(&x, 173.61, 3),
                faulted.run(&x, 173.61, 3),
                "a clean plan must not perturb the simulation"
            );
        }
    }

    #[test]
    fn every_fault_kind_degrades_snr_on_its_architecture() {
        use efficsense_faults::{FaultKind, FaultPlan};
        let x = eeg_like_tone(173.61, 4.0);
        let snr_of = |cfg: SystemConfig, plan: Option<FaultPlan>| {
            let mut sim = Simulator::new(cfg).expect("valid");
            sim.set_fault_plan(plan);
            let out = sim.run(&x, 173.61, 1);
            snr_fit_db(&out.reference, &out.input_referred)
        };
        for kind in FaultKind::ALL {
            // CapLeakage only exists in the CS chain; everything else is
            // checked on the cheaper baseline chain.
            let cfg = if kind == FaultKind::CapLeakage {
                SystemConfig::compressive(8, CsConfig::default())
            } else {
                SystemConfig::baseline(8)
            };
            let clean = snr_of(cfg.clone(), None);
            let faulted = snr_of(cfg, Some(FaultPlan::single(kind, 1.0, 0xFA17)));
            assert!(
                faulted < clean - 1.0,
                "{kind} at severity 1: {faulted:.1} dB !< clean {clean:.1} dB"
            );
        }
    }

    #[test]
    fn packet_loss_records_link_stats_and_inflates_tx_power() {
        use efficsense_faults::{FaultKind, FaultPlan};
        let x = eeg_like_tone(173.61, 4.0);
        let cfg = SystemConfig::baseline(8);
        let clean = Simulator::new(cfg.clone())
            .expect("valid")
            .run(&x, 173.61, 1);
        assert_eq!(clean.link, None);
        let plan = FaultPlan::single(FaultKind::PacketLoss, 0.6, 7);
        let lossy = Simulator::with_fault_plan(cfg, plan.clone())
            .expect("valid")
            .run(&x, 173.61, 1);
        let stats = lossy.link.expect("link fault must record stats");
        assert_eq!(stats.data_words, lossy.words);
        assert!(stats.lost_packets > 0, "54% loss must drop packets");
        assert!(
            stats.tx_words > stats.data_words,
            "retries must inflate the clocked-out words"
        );
        use efficsense_power::BlockKind::Transmitter;
        let expected = plan
            .link
            .expect("plan has a link fault")
            .expected_attempts();
        let ratio = lossy.power.get(Transmitter).value() / clean.power.get(Transmitter).value();
        assert!(
            (ratio - expected).abs() < 1e-9,
            "TX power ratio {ratio} vs expected attempts {expected}"
        );
    }

    #[test]
    fn cs_chain_survives_packet_loss_with_reduced_quality() {
        use efficsense_faults::{FaultKind, FaultPlan};
        let x = eeg_like_tone(173.61, 4.0);
        let cfg = SystemConfig::compressive(8, CsConfig::default());
        let clean = Simulator::new(cfg.clone())
            .expect("valid")
            .run(&x, 173.61, 1);
        let lossy =
            Simulator::with_fault_plan(cfg, FaultPlan::single(FaultKind::PacketLoss, 0.5, 3))
                .expect("valid")
                .run(&x, 173.61, 1);
        let snr_clean = snr_fit_db(&clean.reference, &clean.input_referred);
        let snr_lossy = snr_fit_db(&lossy.reference, &lossy.input_referred);
        assert!(snr_lossy < snr_clean, "{snr_lossy} !< {snr_clean}");
        assert!(lossy.link.is_some());
        assert!(snr_lossy.is_finite(), "erasures must not break the decoder");
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use efficsense_faults::{FaultKind, FaultPlan};
        let x = eeg_like_tone(173.61, 2.0);
        let mk = || {
            Simulator::with_fault_plan(
                SystemConfig::baseline(8),
                FaultPlan::single(FaultKind::DroppedSamples, 0.7, 9),
            )
            .expect("valid")
        };
        assert_eq!(mk().run(&x, 173.61, 5), mk().run(&x, 173.61, 5));
        // Different records draw different fault realisations.
        assert_ne!(
            mk().run(&x, 173.61, 5).input_referred,
            mk().run(&x, 173.61, 6).input_referred
        );
    }

    #[test]
    fn power_breakdown_dominated_by_tx_or_lna_baseline() {
        let sim = Simulator::new(SystemConfig::baseline(8)).expect("valid");
        let b = sim.power_breakdown(1.0);
        use efficsense_power::BlockKind::*;
        let dom = b.dominant().expect("non-empty");
        assert!(dom == Transmitter || dom == Lna, "dominant {dom}");
        // Total in the paper's µW regime.
        let total = b.total().value();
        assert!((1e-6..1e-4).contains(&total), "total {total}");
    }
}
