//! Level-3 prefix memoization: shared analog front-end artifacts.
//!
//! A design-space sweep evaluates hundreds of points that differ only
//! *downstream* of the analog front end: every point sharing an LNA noise
//! configuration re-resamples the same records to the continuous-time proxy
//! rate, re-runs the same LNA noise realisation over them, and rebuilds the
//! same clean reference signal — per point, per record. This module is the
//! third cache level closing that redundancy:
//!
//! * **L1** ([`crate::cache::SweepCache`]) — whole point evaluations,
//!   content-addressed by [`crate::cache::point_key`];
//! * **L2** ([`efficsense_cs::memo`]) — sensing matrices and decoder
//!   dictionaries shared per sensing configuration;
//! * **L3** (this module) — *stage-prefix artifacts* of the simulation
//!   pipeline, shared across sweep points whose prefixes coincide.
//!
//! Five artifact classes are stored, from shallowest to deepest prefix:
//!
//! | class       | contents                                   | key axes |
//! |-------------|--------------------------------------------|----------|
//! | `ct`        | record resampled to the proxy rate         | record fingerprint, `fs_in`, `f_ct` |
//! | `analog`    | LNA-amplified proxy buffer                 | `ct` axes + LNA gain/noise/bandwidth/k3/v_clip, mixed LNA seed, canonical LNA-fault params + stream seed |
//! | `reference` | clean input at `f_s`, trimmed to a length  | record fingerprint, `fs_in`, `f_s`, length |
//! | `sampled`   | clean-clock CS sampling of the `analog` buffer | `analog` key, `f_s`, sample count |
//! | `acquired`  | full front-end output (input-referred samples, word count, ADC input RMS, link stats) | full `SystemConfig`, canonical fault plan, record fingerprint, `fs_in`, noise seed |
//!
//! Every artifact is **derived deterministically from its key**, so a
//! memoized artifact is bit-identical to a freshly built one: attaching a
//! store to a [`crate::simulate::Simulator`] (directly or through
//! [`crate::sweep::Sweep::with_prefix_store`]) never changes any
//! `SimOutput` bit, only the wall clock. Keys are 128-bit FNV-1a hashes
//! over length-prefixed fields (the [`crate::cache`] scheme) with float
//! axes compared by IEEE-754 bit pattern.
//!
//! Unlike the unbounded L2 stores, every class here is **capped**: values
//! are whole per-record signal buffers, so a long-running sweep server
//! holding a store open must not grow without bound. Each class carries an
//! element budget (one element ≈ one `f64`); inserts beyond the budget
//! evict the oldest entries first. Eviction only ever costs future hits —
//! rebuilt artifacts are bit-identical by construction.

use crate::cache::KeyHasher;
use efficsense_faults::{LinkStats, LnaRailFault};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Independently locked shards per artifact class (bounds worker
/// contention; the key's low bits pick the shard).
const SHARDS: usize = 16;

/// Bump on any change to prefix-key derivation; disjoint from the L1
/// `efficsense-pointkey-*` tags so the two key families can never alias.
const KEY_VERSION: &str = "efficsense-prefixkey-v1";

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// 128-bit content hash identifying one prefix artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefixKey(u128);

impl PrefixKey {
    /// Lower-case 32-digit hex form (diagnostics only; nothing persists).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// 64-bit content fingerprint of one input record: its length and the
/// exact bit pattern of every sample. Computed per [`Simulator::run`]
/// call when a store is attached — the caller need not carry record
/// identity, and two byte-identical records share artifacts even across
/// datasets.
///
/// [`Simulator::run`]: crate::simulate::Simulator::run
#[must_use]
pub fn record_fingerprint(samples: &[f64]) -> u64 {
    // FNV-1a over 64-bit words (not bytes): one multiply per sample keeps
    // the per-run fingerprint cost far below the work the store amortizes.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut acc = OFFSET ^ (samples.len() as u64).wrapping_mul(PRIME);
    for s in samples {
        acc ^= s.to_bits();
        acc = acc.wrapping_mul(PRIME);
    }
    acc
}

fn hasher(class: &str) -> KeyHasher {
    let mut h = KeyHasher::new();
    h.field("version", KEY_VERSION);
    h.field("class", class);
    h
}

/// Key of the resampled continuous-time record (fully fault-free).
#[must_use]
pub fn ct_key(record_fp: u64, fs_in: f64, f_ct: f64) -> PrefixKey {
    let mut h = hasher("ct");
    h.field_u64("record", record_fp);
    h.field_u64("fs_in", fs_in.to_bits());
    h.field_u64("f_ct", f_ct.to_bits());
    PrefixKey(h.digest())
}

/// Everything the LNA-amplified buffer depends on beyond the CT record:
/// the exact constructor inputs of [`efficsense_blocks::Lna`] plus the
/// canonical parameters of an injected rail fault. Keying the constructor
/// inputs (rather than a curated subset of the design) makes the key
/// sufficient by construction — any configuration axis that reaches the
/// LNA reaches the key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogParams {
    /// [`record_fingerprint`] of the input record.
    pub record_fp: u64,
    /// Input record rate (Hz).
    pub fs_in: f64,
    /// Continuous-time proxy rate (Hz).
    pub f_ct: f64,
    /// Closed-loop LNA gain.
    pub gain: f64,
    /// Input-referred integrated noise (V rms).
    pub noise_floor_vrms: f64,
    /// −3 dB bandwidth (Hz).
    pub bandwidth_hz: f64,
    /// Third-order nonlinearity coefficient.
    pub k3: f64,
    /// Output clipping level (V).
    pub v_clip: f64,
    /// The mixed LNA noise-stream seed (`cfg.seed ^ noise_seed·φ64`).
    pub lna_seed: u64,
    /// Active rail fault and its per-record stream seed; `None` covers
    /// both "no plan" and noop faults (the simulator drops those before
    /// they can perturb the signal, so they must share the clean key).
    pub fault: Option<(LnaRailFault, u64)>,
}

/// Key of the LNA-amplified proxy buffer.
#[must_use]
pub fn analog_key(p: &AnalogParams) -> PrefixKey {
    let mut h = hasher("analog");
    h.field_u64("record", p.record_fp);
    h.field_u64("fs_in", p.fs_in.to_bits());
    h.field_u64("f_ct", p.f_ct.to_bits());
    h.field_u64("gain", p.gain.to_bits());
    h.field_u64("noise", p.noise_floor_vrms.to_bits());
    h.field_u64("bw", p.bandwidth_hz.to_bits());
    h.field_u64("k3", p.k3.to_bits());
    h.field_u64("v_clip", p.v_clip.to_bits());
    h.field_u64("seed", p.lna_seed);
    match p.fault {
        None => h.field("fault", "clean"),
        Some((f, stream_seed)) => {
            h.field("fault", "rail");
            h.field_u64("rail_prob", f.rail_prob.to_bits());
            h.field_u64("episode_len", f.episode_len as u64);
            h.field_u64("v_clip_factor", f.v_clip_factor.to_bits());
            h.field_u64("fault_seed", stream_seed);
        }
    }
    PrefixKey(h.digest())
}

/// Key of the clean reference signal: the input sampled at `f_s`, exactly
/// `len` samples.
#[must_use]
pub fn reference_key(record_fp: u64, fs_in: f64, f_s: f64, len: usize) -> PrefixKey {
    let mut h = hasher("reference");
    h.field_u64("record", record_fp);
    h.field_u64("fs_in", fs_in.to_bits());
    h.field_u64("f_s", f_s.to_bits());
    h.field_u64("len", len as u64);
    PrefixKey(h.digest())
}

/// Key of the clean-clock CS sampling of an amplified buffer (`n` samples
/// at `f_s`). Composes the `analog` key, so every axis the amplified
/// buffer depends on is inherited.
#[must_use]
pub fn sampled_key(analog: PrefixKey, f_s: f64, n: usize) -> PrefixKey {
    let mut h = hasher("sampled");
    h.field("analog", &format!("{:032x}", analog.0));
    h.field_u64("f_s", f_s.to_bits());
    h.field_u64("n", n as u64);
    PrefixKey(h.digest())
}

/// Key of the full acquired front-end output for one record. The deepest
/// prefix: everything up to (and including) reconstruction, just before
/// the goal function. Keyed by the complete configuration rendering and
/// the canonical fault plan — the same canonicalisation discipline as the
/// L1 [`crate::cache::point_key`] — plus the record content and noise
/// seed, so it is sufficient for every block the chain instantiates.
#[must_use]
pub fn acquired_key(
    cfg_key: &str,
    plan_key: &str,
    record_fp: u64,
    fs_in: f64,
    noise_seed: u64,
) -> PrefixKey {
    let mut h = hasher("acquired");
    h.field("cfg", cfg_key);
    h.field("plan", plan_key);
    h.field_u64("record", record_fp);
    h.field_u64("fs_in", fs_in.to_bits());
    h.field_u64("noise_seed", noise_seed);
    PrefixKey(h.digest())
}

// ---------------------------------------------------------------------------
// Artifact values
// ---------------------------------------------------------------------------

/// The acquired front-end output of one record: everything
/// [`crate::simulate::Simulator::run`] derives from the signal path (the
/// power/area models re-derive cheaply from the config and the stored RMS).
#[derive(Debug, Clone, PartialEq)]
pub struct AcquiredPrefix {
    /// Acquired samples referred back to the sensor input (already divided
    /// by the LNA gain, which is part of the key).
    pub input_referred: Vec<f64>,
    /// Data words sent to the transmitter.
    pub words: u64,
    /// Measured RMS at the converter input (feeds the DAC switching model).
    pub adc_in_rms: f64,
    /// Radio-link accounting when a packet-loss fault was active.
    pub link: Option<LinkStats>,
}

/// Approximate size of a value in budget elements (one element ≈ one
/// `f64`); drives eviction.
trait Cost {
    fn cost(&self) -> usize;
}

impl Cost for Vec<f64> {
    fn cost(&self) -> usize {
        self.len()
    }
}

impl Cost for AcquiredPrefix {
    fn cost(&self) -> usize {
        // words/rms/link are a rounding error next to the sample buffer.
        self.input_referred.len() + 8
    }
}

// ---------------------------------------------------------------------------
// Bounded sharded store
// ---------------------------------------------------------------------------

/// Hit/miss/eviction/occupancy counters of one artifact class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that fell through to a fresh build.
    pub misses: u64,
    /// Entries dropped by the capacity cap.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Budget elements currently held (≈ `f64`s).
    pub elements: usize,
}

impl ClassStats {
    /// Fraction of lookups served from the store (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct ShardMap<V> {
    /// `key → (insertion stamp, value)`; the stamp orders FIFO eviction.
    map: HashMap<u128, (u64, Arc<V>)>,
    elements: usize,
}

/// One bounded artifact class: a sharded `PrefixKey → Arc<V>` map with an
/// element budget and oldest-first eviction.
struct Bounded<V> {
    shards: Vec<Mutex<ShardMap<V>>>,
    /// Element budget per shard (total budget / `SHARDS`, at least 1).
    shard_budget: usize,
    stamp: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs_hits: Arc<efficsense_obs::Counter>,
    obs_misses: Arc<efficsense_obs::Counter>,
    obs_evictions: Arc<efficsense_obs::Counter>,
}

impl<V: Cost> Bounded<V> {
    fn new(name: &str, budget_elements: usize) -> Self {
        let obs = efficsense_obs::global();
        Self {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(ShardMap {
                        map: HashMap::new(),
                        elements: 0,
                    })
                })
                .collect(),
            shard_budget: (budget_elements / SHARDS).max(1),
            stamp: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs_hits: obs.counter(&format!("memo.{name}.hit")),
            obs_misses: obs.counter(&format!("memo.{name}.miss")),
            obs_evictions: obs.counter(&format!("memo.{name}.evict")),
        }
    }

    fn shard(&self, key: PrefixKey) -> &Mutex<ShardMap<V>> {
        // The key is already a high-quality hash; its low bits pick a shard.
        &self.shards[(key.0 as usize) % SHARDS]
    }

    fn lock(m: &Mutex<ShardMap<V>>) -> std::sync::MutexGuard<'_, ShardMap<V>> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks the key up, counting the hit or miss. Misses do **not** build
    /// under the lock — artifacts here cost milliseconds, so racing workers
    /// build concurrently and the duplicate insert (bit-identical by
    /// construction) is the cheaper waste.
    fn get(&self, key: PrefixKey) -> Option<Arc<V>> {
        let found = Self::lock(self.shard(key))
            .map
            .get(&key.0)
            .map(|(_, v)| Arc::clone(v));
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.incr();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs_misses.incr();
            }
        }
        found
    }

    /// Inserts a freshly built value, evicting oldest entries while the
    /// shard exceeds its budget (the new entry itself is never evicted —
    /// a single oversized artifact may transiently overshoot the budget,
    /// bounded by one value).
    fn insert(&self, key: PrefixKey, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let cost = value.cost();
        // relaxed: stamp is a monotone insertion counter; only relative
        // order among stamps matters and each is written once under a lock.
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        let mut shard = Self::lock(self.shard(key));
        if let Some((_, existing)) = shard.map.get(&key.0) {
            // A racing worker built the same (bit-identical) value first;
            // keep the established Arc so sharing stays maximal.
            return Arc::clone(existing);
        }
        shard.elements += cost;
        shard.map.insert(key.0, (stamp, Arc::clone(&value)));
        let mut evicted = 0u64;
        if shard.elements > self.shard_budget && shard.map.len() > 1 {
            // Deterministic eviction order: sort candidates by insertion
            // stamp (oldest first), never touching the just-inserted entry.
            let mut order: Vec<(u64, u128)> = shard
                .map
                .iter()
                .filter(|(k, _)| **k != key.0)
                .map(|(k, (s, _))| (*s, *k))
                .collect();
            order.sort_unstable();
            for (_, k) in order {
                if shard.elements <= self.shard_budget {
                    break;
                }
                if let Some((_, v)) = shard.map.remove(&k) {
                    shard.elements -= v.cost().min(shard.elements);
                    evicted += 1;
                }
            }
        }
        drop(shard);
        if evicted > 0 {
            // relaxed: monotone statistics counter, read only for reporting.
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs_evictions.add(evicted);
        }
        value
    }

    fn stats(&self) -> ClassStats {
        let (mut entries, mut elements) = (0, 0);
        for s in &self.shards {
            let s = Self::lock(s);
            entries += s.map.len();
            elements += s.elements;
        }
        ClassStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            // relaxed: statistics counter read for a monitoring snapshot.
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            elements,
        }
    }

    fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        // relaxed: statistics counter; no data is published through it.
        self.evictions.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// PrefixStore
// ---------------------------------------------------------------------------

/// Element budgets (≈ `f64`s) per artifact class; see
/// [`PrefixStore::with_budgets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixBudgets {
    /// Resampled continuous-time records.
    pub ct: usize,
    /// LNA-amplified buffers.
    pub analog: usize,
    /// Clean reference signals.
    pub reference: usize,
    /// Clean-clock CS samplings.
    pub sampled: usize,
    /// Acquired front-end outputs.
    pub acquired: usize,
}

impl Default for PrefixBudgets {
    fn default() -> Self {
        // ~120 MB total at f64 size: comfortably holds a reduced-scale
        // product sweep while bounding a long-running server. The CT and
        // amplified buffers run at the proxy rate (8× oversampled), so they
        // get the larger shares.
        Self {
            ct: 4 << 20,
            analog: 4 << 20,
            reference: 1 << 20,
            sampled: 2 << 20,
            acquired: 4 << 20,
        }
    }
}

/// The Level-3 prefix store: five bounded, sharded, content-addressed
/// artifact classes (see the module docs). Cheap to share: clone an
/// `Arc<PrefixStore>` into every [`crate::sweep::Sweep`] (or attach it to a
/// bare [`crate::simulate::Simulator`]) that should amortize front-end
/// work; attaching it never changes results, only cost.
pub struct PrefixStore {
    ct: Bounded<Vec<f64>>,
    analog: Bounded<Vec<f64>>,
    reference: Bounded<Vec<f64>>,
    sampled: Bounded<Vec<f64>>,
    acquired: Bounded<AcquiredPrefix>,
}

impl std::fmt::Debug for PrefixStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixStore")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for PrefixStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixStore {
    /// A store with the default budgets.
    #[must_use]
    pub fn new() -> Self {
        Self::with_budgets(PrefixBudgets::default())
    }

    /// A store with explicit per-class element budgets (≈ `f64`s each).
    /// Tiny budgets are legal — the store then churns, and churn only costs
    /// rebuilds, never correctness.
    #[must_use]
    pub fn with_budgets(b: PrefixBudgets) -> Self {
        Self {
            ct: Bounded::new("ct", b.ct),
            analog: Bounded::new("analog", b.analog),
            reference: Bounded::new("reference", b.reference),
            sampled: Bounded::new("sampled", b.sampled),
            acquired: Bounded::new("acquired", b.acquired),
        }
    }

    /// Looks up a resampled CT record.
    #[must_use]
    pub fn get_ct(&self, key: PrefixKey) -> Option<Arc<Vec<f64>>> {
        self.ct.get(key)
    }

    /// Stores a freshly resampled CT record, returning the shared handle.
    pub fn insert_ct(&self, key: PrefixKey, v: Vec<f64>) -> Arc<Vec<f64>> {
        efficsense_dsp::approx::debug_assert_all_finite(&v, "prefix: ct artifact");
        self.ct.insert(key, v)
    }

    /// Looks up an LNA-amplified buffer.
    #[must_use]
    pub fn get_analog(&self, key: PrefixKey) -> Option<Arc<Vec<f64>>> {
        self.analog.get(key)
    }

    /// Stores a freshly amplified buffer, returning the shared handle.
    pub fn insert_analog(&self, key: PrefixKey, v: Vec<f64>) -> Arc<Vec<f64>> {
        efficsense_dsp::approx::debug_assert_all_finite(&v, "prefix: analog artifact");
        self.analog.insert(key, v)
    }

    /// Looks up a clean reference signal.
    #[must_use]
    pub fn get_reference(&self, key: PrefixKey) -> Option<Arc<Vec<f64>>> {
        self.reference.get(key)
    }

    /// Stores a freshly built reference signal, returning the shared handle.
    pub fn insert_reference(&self, key: PrefixKey, v: Vec<f64>) -> Arc<Vec<f64>> {
        self.reference.insert(key, v)
    }

    /// Looks up a clean-clock CS sampling.
    #[must_use]
    pub fn get_sampled(&self, key: PrefixKey) -> Option<Arc<Vec<f64>>> {
        self.sampled.get(key)
    }

    /// Stores a freshly built CS sampling, returning the shared handle.
    pub fn insert_sampled(&self, key: PrefixKey, v: Vec<f64>) -> Arc<Vec<f64>> {
        self.sampled.insert(key, v)
    }

    /// Looks up an acquired front-end output.
    #[must_use]
    pub fn get_acquired(&self, key: PrefixKey) -> Option<Arc<AcquiredPrefix>> {
        self.acquired.get(key)
    }

    /// Stores a freshly acquired front-end output, returning the shared
    /// handle.
    pub fn insert_acquired(&self, key: PrefixKey, v: AcquiredPrefix) -> Arc<AcquiredPrefix> {
        efficsense_dsp::approx::debug_assert_all_finite(
            &v.input_referred,
            "prefix: acquired artifact",
        );
        self.acquired.insert(key, v)
    }

    /// Current counters of every class.
    #[must_use]
    pub fn stats(&self) -> PrefixStats {
        PrefixStats {
            ct: self.ct.stats(),
            analog: self.analog.stats(),
            reference: self.reference.stats(),
            sampled: self.sampled.stats(),
            acquired: self.acquired.stats(),
        }
    }

    /// Zeroes the hit/miss/eviction counters (entries stay cached).
    pub fn reset_stats(&self) {
        self.ct.reset_stats();
        self.analog.reset_stats();
        self.reference.reset_stats();
        self.sampled.reset_stats();
        self.acquired.reset_stats();
    }
}

/// Counters of every artifact class of a [`PrefixStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixStats {
    /// Resampled CT records.
    pub ct: ClassStats,
    /// LNA-amplified buffers.
    pub analog: ClassStats,
    /// Clean reference signals.
    pub reference: ClassStats,
    /// Clean-clock CS samplings.
    pub sampled: ClassStats,
    /// Acquired front-end outputs.
    pub acquired: ClassStats,
}

impl PrefixStats {
    /// Total hits across every class.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.ct.hits
            + self.analog.hits
            + self.reference.hits
            + self.sampled.hits
            + self.acquired.hits
    }

    /// Total misses across every class.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.ct.misses
            + self.analog.misses
            + self.reference.misses
            + self.sampled.misses
            + self.acquired.misses
    }

    /// Total evictions across every class.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.ct.evictions
            + self.analog.evictions
            + self.reference.evictions
            + self.sampled.evictions
            + self.acquired.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AnalogParams {
        AnalogParams {
            record_fp: 0xABCD_EF01,
            fs_in: 173.61,
            f_ct: 4300.8,
            gain: 4000.0,
            noise_floor_vrms: 2e-6,
            bandwidth_hz: 768.0,
            k3: 0.01,
            v_clip: 1.0,
            lna_seed: 0xEFF1,
            fault: None,
        }
    }

    // One collision regression per key axis: the 128-bit FNV scheme must
    // separate every axis that can change an artifact bit pattern.

    #[test]
    fn record_axis_separates_keys() {
        let a = record_fingerprint(&[1.0, 2.0, 3.0]);
        let b = record_fingerprint(&[1.0, 2.0, 4.0]);
        assert_ne!(a, b, "sample content must change the fingerprint");
        // Length participates even when the value stream prefix matches.
        assert_ne!(
            record_fingerprint(&[1.0, 2.0]),
            record_fingerprint(&[1.0, 2.0, 0.0])
        );
        assert_ne!(
            ct_key(a, 173.61, 4300.8),
            ct_key(b, 173.61, 4300.8),
            "record axis must separate CT keys"
        );
    }

    #[test]
    fn f_ct_axis_separates_keys() {
        let fp = record_fingerprint(&[0.5; 8]);
        assert_ne!(ct_key(fp, 173.61, 4300.8), ct_key(fp, 173.61, 8601.6));
        assert_ne!(
            analog_key(&params()),
            analog_key(&AnalogParams {
                f_ct: 8601.6,
                ..params()
            })
        );
    }

    #[test]
    fn fs_in_axis_separates_keys() {
        let fp = record_fingerprint(&[0.5; 8]);
        assert_ne!(ct_key(fp, 173.61, 4300.8), ct_key(fp, 256.0, 4300.8));
    }

    #[test]
    fn lna_gain_axis_separates_keys() {
        assert_ne!(
            analog_key(&params()),
            analog_key(&AnalogParams {
                gain: 2000.0,
                ..params()
            })
        );
    }

    #[test]
    fn lna_noise_axis_separates_keys() {
        assert_ne!(
            analog_key(&params()),
            analog_key(&AnalogParams {
                noise_floor_vrms: 4e-6,
                ..params()
            })
        );
    }

    #[test]
    fn lna_k3_axis_separates_keys() {
        assert_ne!(
            analog_key(&params()),
            analog_key(&AnalogParams {
                k3: 0.02,
                ..params()
            })
        );
        // The float axes key by bit pattern: -0.0 and 0.0 key apart (a
        // harmless extra miss, never a false hit).
        assert_ne!(
            analog_key(&AnalogParams {
                k3: 0.0,
                ..params()
            }),
            analog_key(&AnalogParams {
                k3: -0.0,
                ..params()
            })
        );
    }

    #[test]
    fn seed_axis_separates_keys() {
        assert_ne!(
            analog_key(&params()),
            analog_key(&AnalogParams {
                lna_seed: 0xEFF2,
                ..params()
            })
        );
    }

    #[test]
    fn fault_axis_separates_clean_from_active_and_per_parameter() {
        let rail = LnaRailFault {
            rail_prob: 0.01,
            episode_len: 64,
            v_clip_factor: 0.8,
        };
        let clean = analog_key(&params());
        let faulted = analog_key(&AnalogParams {
            fault: Some((rail, 7)),
            ..params()
        });
        assert_ne!(clean, faulted, "fault vs clean must separate");
        // Fault stream seed and each fault parameter separate too.
        assert_ne!(
            faulted,
            analog_key(&AnalogParams {
                fault: Some((rail, 8)),
                ..params()
            })
        );
        assert_ne!(
            faulted,
            analog_key(&AnalogParams {
                fault: Some((
                    LnaRailFault {
                        v_clip_factor: 0.5,
                        ..rail
                    },
                    7
                )),
                ..params()
            })
        );
    }

    #[test]
    fn reference_key_separates_length_and_rate() {
        let fp = record_fingerprint(&[0.25; 16]);
        let k = reference_key(fp, 173.61, 537.6, 4224);
        assert_ne!(k, reference_key(fp, 173.61, 537.6, 4301));
        assert_ne!(k, reference_key(fp, 173.61, 268.8, 4224));
        assert_ne!(k, reference_key(fp ^ 1, 173.61, 537.6, 4224));
    }

    #[test]
    fn sampled_key_inherits_analog_axes() {
        let a = analog_key(&params());
        let b = analog_key(&AnalogParams {
            noise_floor_vrms: 4e-6,
            ..params()
        });
        assert_ne!(sampled_key(a, 537.6, 4301), sampled_key(b, 537.6, 4301));
        assert_ne!(sampled_key(a, 537.6, 4301), sampled_key(a, 537.6, 4300));
    }

    #[test]
    fn acquired_key_separates_config_plan_record_and_seed() {
        let k = acquired_key("cfg-a", "clean", 1, 173.61, 5);
        assert_ne!(k, acquired_key("cfg-b", "clean", 1, 173.61, 5));
        assert_ne!(k, acquired_key("cfg-a", "plan;seed=1;x", 1, 173.61, 5));
        assert_ne!(k, acquired_key("cfg-a", "clean", 2, 173.61, 5));
        assert_ne!(k, acquired_key("cfg-a", "clean", 1, 173.61, 6));
    }

    #[test]
    fn classes_never_alias_even_on_equal_axes() {
        // A CT key and a reference key over identical field values must
        // differ: the class tag is part of every key.
        let fp = record_fingerprint(&[1.0]);
        let ct = ct_key(fp, 100.0, 200.0);
        let reference = reference_key(fp, 100.0, 200.0, 0);
        assert_ne!(ct, reference);
    }

    #[test]
    fn store_hits_after_insert_and_counts() {
        let store = PrefixStore::new();
        let key = ct_key(1, 100.0, 800.0);
        assert!(store.get_ct(key).is_none());
        let v = store.insert_ct(key, vec![1.0, 2.0]);
        let again = store.get_ct(key).expect("inserted entry must hit");
        assert!(Arc::ptr_eq(&v, &again), "same key must share one instance");
        let s = store.stats().ct;
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.elements, 2);
        store.reset_stats();
        assert_eq!(store.stats().ct.hits, 0);
    }

    #[test]
    fn racing_insert_keeps_established_value() {
        let store = PrefixStore::new();
        let key = ct_key(2, 100.0, 800.0);
        let first = store.insert_ct(key, vec![1.0]);
        let second = store.insert_ct(key, vec![1.0]);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.stats().ct.entries, 1);
    }

    #[test]
    fn capped_store_evicts_oldest_first() {
        // Budget 32 elements → 2 per shard; 8-element values force churn.
        let store = PrefixStore::with_budgets(PrefixBudgets {
            ct: 32,
            analog: 32,
            reference: 32,
            sampled: 32,
            acquired: 32,
        });
        let keys: Vec<PrefixKey> = (0..64).map(|i| ct_key(i, 100.0, 800.0)).collect();
        for &k in &keys {
            store.insert_ct(k, vec![0.5; 8]);
        }
        let s = store.stats().ct;
        assert!(s.evictions > 0, "over-budget inserts must evict");
        assert!(
            s.elements <= 16 * 8,
            "held elements must stay near budget (got {})",
            s.elements
        );
        // The newest keys survive; evicted keys miss and can be rebuilt.
        let mut present = 0;
        for &k in &keys {
            if store.get_ct(k).is_some() {
                present += 1;
            }
        }
        assert!(present >= 1, "a capped store must still hold entries");
        assert_eq!(store.stats().ct.entries, present);
    }

    #[test]
    fn oversized_value_still_inserts() {
        let store = PrefixStore::with_budgets(PrefixBudgets {
            ct: 16,
            analog: 16,
            reference: 16,
            sampled: 16,
            acquired: 16,
        });
        let key = ct_key(77, 100.0, 800.0);
        store.insert_ct(key, vec![0.0; 1000]);
        assert!(
            store.get_ct(key).is_some(),
            "a single artifact above budget must still be usable"
        );
    }
}
