//! Telemetry determinism: under the obs logical clock, a sweep's metric
//! snapshot is a pure function of the work done — not of the thread count,
//! the scheduler, or wall time.
//!
//! Both tests drive the process-global [`efficsense_obs`] registry, so they
//! serialize on a local mutex and fully re-configure clock/sink/state at
//! entry. (Integration tests get their own binary, so no other test in the
//! workspace races this registry.)

use efficsense_core::prelude::*;
use efficsense_core::sweep::Metric;
use efficsense_obs::{LogicalClock, TraceEvent};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Serializes access to the global obs registry across the tests in this
/// binary.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn tiny_dataset() -> EegDataset {
    EegDataset::generate(&DatasetConfig {
        records_per_class: 2,
        duration_s: 2.0,
        ..Default::default()
    })
}

fn tiny_space() -> DesignSpace {
    DesignSpace {
        lna_noise_vrms: vec![2e-6, 10e-6],
        n_bits: vec![8],
        cs_m: vec![96],
        cs_s: vec![2],
        cs_c_hold_f: vec![1e-12],
        ..DesignSpace::paper_defaults()
    }
}

fn run_sweep(threads: usize, ds: &EegDataset, space: &DesignSpace) -> Vec<SweepResult> {
    Sweep::new(SweepConfig {
        metric: Metric::Snr,
        threads,
        detector_seed: 0,
        ..Default::default()
    })
    .run(space, ds)
}

#[test]
fn logical_clock_snapshot_is_identical_across_thread_counts() {
    let _guard = obs_lock();
    let obs = efficsense_obs::global();
    let ds = tiny_dataset();
    let space = tiny_space();

    // Warm-up: populate the process-wide memo stores (CS bases, dictionaries)
    // so both measured runs see identical hit/miss traffic.
    run_sweep(1, &ds, &space);

    obs.set_sink(None);
    obs.set_clock(Arc::new(LogicalClock::new(1_000)));

    obs.reset();
    let one = run_sweep(1, &ds, &space);
    let snap_one = obs.snapshot();

    obs.reset();
    let four = run_sweep(4, &ds, &space);
    let snap_four = obs.snapshot();

    obs.set_clock(Arc::new(efficsense_obs::MonotonicClock::default()));

    // The sweep results themselves are bit-identical (pre-existing
    // guarantee), and now so is the telemetry: every counter value and every
    // histogram (counts, buckets, total and self durations) matches exactly.
    assert_eq!(one, four);
    assert_eq!(snap_one, snap_four);

    // Sanity: the snapshot saw real work, not two empty registries agreeing.
    assert_eq!(
        snap_one.counter("sweep.evaluations"),
        Some(space.len() as u64)
    );
    let point = snap_one.span("sweep.point").expect("point span recorded");
    assert_eq!(point.count as usize, space.len());
    assert!(
        point.total_ns > 0,
        "logical clock must advance inside spans"
    );
    assert!(
        snap_one.counter("sweep.heartbeat").unwrap_or(0) > 0,
        "heartbeat fires at least at completion"
    );
}

#[test]
fn decode_pool_snapshot_is_identical_across_thread_counts() {
    use efficsense_cs::basis::Basis;
    use efficsense_cs::decode::reconstruct_batch;
    use efficsense_cs::matrix::SensingMatrix;
    use efficsense_cs::memo::DictionaryArtifacts;
    use efficsense_cs::recon::OmpConfig;

    let _guard = obs_lock();
    let obs = efficsense_obs::global();

    let m = 32;
    let n = 96;
    let phi = SensingMatrix::srbm(m, n, 2, 0xDEC0DE).to_dense();
    let dict = phi.matmul(&Basis::Dct.matrix(n));
    let art = DictionaryArtifacts::from_dictionary(dict, Basis::Dct, 1.0);
    let frames: Vec<Vec<f64>> = (0..10u64)
        .map(|f| {
            let mut s = vec![0.0; n];
            s[(7 * f as usize + 3) % n] = 1.0;
            s[(31 * f as usize + 11) % n] += -0.5;
            let x = Basis::Dct.synthesize(&s);
            art.dictionary.matvec(&x)
        })
        .collect();
    let cfgs = vec![OmpConfig::with_sparsity(5); frames.len()];

    obs.set_sink(None);
    obs.set_clock(Arc::new(LogicalClock::new(1_000)));

    // Inline decode (threads = 1) nests the per-frame spans under the batch
    // span on the caller thread, so its *snapshot* legitimately differs from
    // the pooled runs — only its results take part in the bit-identity check.
    obs.reset();
    let inline = reconstruct_batch(&art, &frames, &cfgs, 1);

    obs.reset();
    let two = reconstruct_batch(&art, &frames, &cfgs, 2);
    let snap_two = obs.snapshot();

    obs.reset();
    let four = reconstruct_batch(&art, &frames, &cfgs, 4);
    let snap_four = obs.snapshot();

    obs.set_clock(Arc::new(efficsense_obs::MonotonicClock::default()));

    // Decoded frames are bit-identical for every fan-out, and under the
    // logical clock the pooled telemetry is a pure function of the work:
    // dynamic work stealing between 2 and 4 workers must not move a single
    // histogram bucket.
    assert_eq!(inline, two);
    assert_eq!(two, four);
    assert_eq!(snap_two, snap_four);

    let batch = snap_two.span("recon.batch").expect("batch span recorded");
    assert_eq!(batch.count, 1);
    let cholup = snap_two.span("recon.cholup").expect("cholup span recorded");
    assert_eq!(cholup.count as usize, frames.len());
    assert!(cholup.total_ns > 0, "logical clock must advance in workers");
}

#[test]
fn jsonl_trace_round_trips_through_the_parser() {
    let _guard = obs_lock();
    let obs = efficsense_obs::global();
    let ds = tiny_dataset();
    let space = tiny_space();

    let dir = std::env::temp_dir().join("efficsense_obs_trace_test");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join("trace.jsonl");

    obs.set_clock(Arc::new(LogicalClock::new(1_000)));
    obs.reset();
    let file = std::fs::File::create(&path).expect("trace file is creatable");
    obs.set_sink(Some(Box::new(std::io::BufWriter::new(file))));
    run_sweep(2, &ds, &space);
    obs.set_sink(None); // flushes and closes the sink
    obs.set_clock(Arc::new(efficsense_obs::MonotonicClock::default()));
    let snap = obs.snapshot();

    let text = std::fs::read_to_string(&path).expect("trace file is readable");
    let mut span_events = 0usize;
    let mut point_events = 0usize;
    for line in text.lines() {
        let event = TraceEvent::parse(line)
            .unwrap_or_else(|| panic!("every trace line parses, got: {line}"));
        // Re-rendering the parsed event reproduces the original line byte for
        // byte — the schema is lossless for everything the sink emits.
        assert_eq!(event.to_json_line(), line);
        if event.kind == "span" {
            span_events += 1;
            if event.name == "sweep.point" {
                point_events += 1;
            }
        }
    }

    // One span event per span closure, one point event per design point.
    let total_span_closures: u64 = snap.spans.iter().map(|(_, h)| h.count).sum();
    assert_eq!(span_events as u64, total_span_closures);
    assert_eq!(point_events, space.len());

    std::fs::remove_file(&path).ok();
}

/// Runs one traced sweep under the logical clock and returns the trace
/// text plus the registry snapshot taken after the sink was detached.
fn traced_sweep(
    threads: usize,
    ds: &EegDataset,
    space: &DesignSpace,
    file_tag: &str,
) -> (String, efficsense_obs::Snapshot) {
    let obs = efficsense_obs::global();
    let dir = std::env::temp_dir().join("efficsense_obs_profile_test");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join(format!("trace_{file_tag}.jsonl"));

    obs.set_clock(Arc::new(LogicalClock::new(1_000)));
    obs.reset();
    let file = std::fs::File::create(&path).expect("trace file is creatable");
    obs.set_sink(Some(Box::new(std::io::BufWriter::new(file))));
    run_sweep(threads, ds, space);
    obs.set_sink(None); // flushes, appends the closing counters event
    obs.set_clock(Arc::new(efficsense_obs::MonotonicClock::default()));
    let snap = obs.snapshot();

    let text = std::fs::read_to_string(&path).expect("trace file is readable");
    std::fs::remove_file(&path).ok();
    (text, snap)
}

#[test]
fn reconstructed_profile_is_identical_across_thread_counts() {
    use efficsense_obs::profile::Profile;

    let _guard = obs_lock();
    let ds = tiny_dataset();
    let space = tiny_space();

    // Warm-up: populate process-wide memo stores so both measured runs see
    // identical hit/miss traffic.
    run_sweep(1, &ds, &space);

    let (text_one, snap_one) = traced_sweep(1, &ds, &space, "1t");
    let (text_four, snap_four) = traced_sweep(4, &ds, &space, "4t");

    let prof_one = Profile::from_trace(&text_one);
    let prof_four = Profile::from_trace(&text_four);

    // Span ids, thread ordinals and timestamps differ between the runs, but
    // the reconstructed profile aggregates over *names* only — under the
    // logical clock it is bit-identical across worker-thread counts.
    assert_eq!(snap_one, snap_four);
    assert_eq!(prof_one, prof_four);
    assert_eq!(prof_one.to_json(), prof_four.to_json());

    // Every parent link resolves and every line parses.
    assert_eq!(prof_one.skipped_lines, 0);
    assert_eq!(prof_one.orphans, 0);

    // The trace-derived per-stage stats agree exactly with the registry
    // histograms (same recorded values, different transport) — well inside
    // the 10% agreement the profiler promises for sampled traces.
    for (name, hist) in &snap_one.spans {
        if hist.count == 0 {
            // Zero-count histograms are warm-up leftovers (reset keeps the
            // entry): they emit no trace events, so no profile stage.
            assert!(!prof_one.stages.contains_key(name), "{name} ghost stage");
            continue;
        }
        let stage = prof_one
            .stages
            .get(name)
            .unwrap_or_else(|| panic!("stage {name} missing from profile"));
        assert_eq!(stage.count, hist.count, "{name} count");
        assert_eq!(stage.total_ns, hist.total_ns, "{name} total");
        assert_eq!(stage.self_ns, hist.self_ns, "{name} self");
        assert!(stage.p50_ns <= stage.p95_ns && stage.p95_ns <= stage.p99_ns);
    }

    // The closing counters event carried the registry counters into the
    // profile, and the forest reconstructed real multi-level call paths.
    for (name, value) in &snap_one.counters {
        assert_eq!(prof_one.counters.get(name), Some(value), "{name}");
    }
    assert!(
        prof_one
            .stacks
            .keys()
            .any(|path| path.starts_with("sweep.point;stage.simulate;")),
        "expected nested stacks under sweep.point, got: {:?}",
        prof_one.stacks.keys().collect::<Vec<_>>()
    );
}

#[test]
fn heartbeats_report_l3_prefix_counters_when_a_store_is_attached() {
    use efficsense_core::prefix::PrefixStore;
    use efficsense_obs::FieldValue;

    let _guard = obs_lock();
    let obs = efficsense_obs::global();
    let ds = tiny_dataset();
    let space = tiny_space();

    let dir = std::env::temp_dir().join("efficsense_obs_profile_test");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join("trace_heartbeat_l3.jsonl");

    obs.set_clock(Arc::new(LogicalClock::new(1_000)));
    obs.reset();
    let file = std::fs::File::create(&path).expect("trace file is creatable");
    obs.set_sink(Some(Box::new(std::io::BufWriter::new(file))));
    Sweep::new(SweepConfig {
        metric: Metric::Snr,
        threads: 2,
        detector_seed: 0,
        ..Default::default()
    })
    .with_prefix_store(Arc::new(PrefixStore::new()))
    .run(&space, &ds);
    obs.set_sink(None);
    obs.set_clock(Arc::new(efficsense_obs::MonotonicClock::default()));

    let text = std::fs::read_to_string(&path).expect("trace file is readable");
    std::fs::remove_file(&path).ok();
    let heartbeats: Vec<TraceEvent> = text
        .lines()
        .filter_map(TraceEvent::parse)
        .filter(|e| e.kind == "heartbeat" && e.name == "sweep.progress")
        .collect();
    assert!(!heartbeats.is_empty(), "sweep completion emits a heartbeat");
    for hb in &heartbeats {
        let l3 = |k: &str| match hb.get(k) {
            Some(FieldValue::U64(v)) => *v,
            other => panic!("heartbeat {k} must be a U64 field, got {other:?}"),
        };
        // The store starts cold: every lookup so far is classified, so the
        // level totals are live by the first heartbeat.
        assert!(
            l3("l3_hits") + l3("l3_misses") > 0,
            "attached prefix store must show L3 traffic"
        );
    }
}

#[test]
fn panicking_point_flushes_the_trace_before_quarantine() {
    let _guard = obs_lock();
    let obs = efficsense_obs::global();
    let ds = tiny_dataset();
    // The NaN-noise baseline point passes validation but trips the LNA
    // constructor's assertion mid-evaluation — a genuine panic, caught at
    // the sweep's per-point boundary.
    let space = DesignSpace {
        lna_noise_vrms: vec![2e-6, f64::NAN],
        n_bits: vec![8],
        cs_m: vec![96],
        cs_s: vec![2],
        cs_c_hold_f: vec![1e-12],
        ..DesignSpace::paper_defaults()
    };

    let dir = std::env::temp_dir().join("efficsense_obs_profile_test");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join("trace_panic_flush.jsonl");

    obs.set_clock(Arc::new(LogicalClock::new(1_000)));
    obs.reset();
    let file = std::fs::File::create(&path).expect("trace file is creatable");
    // A buffer far larger than the whole trace: nothing reaches the file
    // unless something explicitly flushes.
    obs.set_sink(Some(Box::new(std::io::BufWriter::with_capacity(
        1 << 22,
        file,
    ))));
    let report = Sweep::new(SweepConfig {
        metric: Metric::Snr,
        threads: 1,
        detector_seed: 0,
        failure_policy: FailurePolicy::Skip,
        ..Default::default()
    })
    .run_report(&space, &ds);
    assert!(
        report
            .quarantine
            .iter()
            .any(|q| matches!(&q.error, PointError::Panicked(_))),
        "the sick point must panic: {:?}",
        report
            .quarantine
            .iter()
            .map(|q| &q.error)
            .collect::<Vec<_>>()
    );

    // Read the file *before* detaching the sink (detaching flushes too):
    // only the panic-path flush can have pushed the buffered lines out.
    let text = std::fs::read_to_string(&path).expect("trace file is readable");
    assert!(
        !text.trim().is_empty(),
        "panic path must flush buffered trace lines"
    );
    let parsed = text.lines().filter(|l| !l.is_empty()).count();
    let parse_ok = text
        .lines()
        .filter(|l| !l.is_empty())
        .filter_map(TraceEvent::parse)
        .count();
    assert_eq!(parse_ok, parsed, "flushed lines are whole JSONL events");

    obs.set_sink(None);
    obs.set_clock(Arc::new(efficsense_obs::MonotonicClock::default()));
    std::fs::remove_file(&path).ok();
}
