//! Level-3 prefix-store determinism: attaching a `PrefixStore` must never
//! change a single output bit — (a) simulator on/off identity on clean and
//! fully-faulted plans for both architectures, (b) sweep on/off identity
//! across 1/2/4 worker threads, (c) identity under eviction churn with a
//! tiny budget, and (d) the PR-8 streaming path stays pinned to the
//! store-assisted batch path.

use efficsense_core::config::CsConfig;
use efficsense_core::prefix::{PrefixBudgets, PrefixStore};
use efficsense_core::prelude::*;
use efficsense_core::stream::StreamSimulator;
use efficsense_core::sweep::Metric;
use efficsense_dsp::spectrum::sine;
use efficsense_signals::DatasetConfig;
use std::sync::Arc;

const FS_IN: f64 = 173.61;

fn tone(seconds: f64) -> Vec<f64> {
    sine((FS_IN * seconds) as usize, FS_IN, 8.0, 100e-6, 0.3)
}

fn baseline_sim() -> Simulator {
    Simulator::new(SystemConfig::baseline(8)).expect("valid baseline config")
}

fn cs_sim() -> Simulator {
    let mut cfg = SystemConfig::compressive(8, CsConfig::default());
    cfg.lna.noise_floor_vrms = 2e-6;
    Simulator::new(cfg).expect("valid CS config")
}

/// An aggressive static plan exercising every fault hook at once.
fn everything_plan() -> FaultPlan {
    let mut plan = FaultPlan::single(FaultKind::LnaRail, 0.4, 99);
    let jitter = FaultPlan::single(FaultKind::ClockJitter, 0.5, 99);
    let drops = FaultPlan::single(FaultKind::DroppedSamples, 0.3, 99);
    let adc = FaultPlan::single(FaultKind::AdcStuckBit, 0.4, 99);
    let leak = FaultPlan::single(FaultKind::CapLeakage, 0.5, 99);
    let link = FaultPlan::single(FaultKind::PacketLoss, 0.5, 99);
    plan.clock = Some(efficsense_faults::ClockFault {
        jitter_periods: jitter.clock.expect("jitter").jitter_periods,
        drop_prob: drops.clock.expect("drops").drop_prob,
    });
    plan.adc = adc.adc;
    plan.leakage = leak.leakage;
    plan.link = link.link;
    plan
}

fn tiny_dataset() -> EegDataset {
    EegDataset::generate(&DatasetConfig {
        records_per_class: 2,
        duration_s: 2.0,
        ..Default::default()
    })
}

fn tiny_space() -> DesignSpace {
    DesignSpace {
        lna_noise_vrms: vec![2e-6, 10e-6],
        n_bits: vec![8],
        cs_m: vec![96],
        cs_s: vec![2],
        cs_c_hold_f: vec![1e-12],
        ..DesignSpace::paper_defaults()
    }
}

fn sweep_with(
    threads: usize,
    plan: Option<FaultPlan>,
    store: Option<Arc<PrefixStore>>,
) -> Vec<SweepResult> {
    let mut sweep = Sweep::new(SweepConfig {
        metric: Metric::Snr,
        threads,
        detector_seed: 0,
        fault_plan: plan,
        ..Default::default()
    });
    if let Some(store) = store {
        sweep = sweep.with_prefix_store(store);
    }
    sweep.run(&tiny_space(), &tiny_dataset())
}

#[test]
fn simulator_output_is_bit_identical_with_store_on_and_off() {
    let x = tone(4.0);
    for (mut sim, plan) in [
        (baseline_sim(), None),
        (cs_sim(), None),
        (baseline_sim(), Some(everything_plan())),
        (cs_sim(), Some(everything_plan())),
    ] {
        sim.set_fault_plan(plan.clone());
        let off = sim.run(&x, FS_IN, 7);
        let store = Arc::new(PrefixStore::new());
        sim.set_prefix_store(Some(Arc::clone(&store)));
        // Cold store: every artifact is built and inserted on this run.
        let cold = sim.run(&x, FS_IN, 7);
        // Warm store: the acquired-level hit path assembles the output.
        let warm = sim.run(&x, FS_IN, 7);
        assert_eq!(off, cold, "cold store changed output (plan: {plan:?})");
        assert_eq!(off, warm, "warm store changed output (plan: {plan:?})");
        assert!(
            store.stats().acquired.hits > 0,
            "second run must hit the acquired artifact"
        );
    }
}

#[test]
fn noise_seed_still_decorrelates_records_through_the_store() {
    // A store must never leak one record seed's realisation into another.
    let x = tone(3.0);
    let mut sim = cs_sim();
    sim.set_prefix_store(Some(Arc::new(PrefixStore::new())));
    let a = sim.run(&x, FS_IN, 1);
    let b = sim.run(&x, FS_IN, 2);
    assert_ne!(a.input_referred, b.input_referred);
    // Same seed again: served from the store, still the seed-1 output.
    assert_eq!(a, sim.run(&x, FS_IN, 1));
}

#[test]
fn sweep_is_bit_identical_store_on_vs_off_across_thread_counts() {
    for plan in [
        None,
        Some(FaultPlan::single(FaultKind::AdcStuckBit, 1.0, 7)),
    ] {
        let reference = sweep_with(1, plan.clone(), None);
        let store = Arc::new(PrefixStore::new());
        for threads in [1, 2, 4] {
            let off = sweep_with(threads, plan.clone(), None);
            // One shared store across all thread counts: later runs hit
            // artifacts built by earlier ones and must still match.
            let on = sweep_with(threads, plan.clone(), Some(Arc::clone(&store)));
            assert_eq!(reference, off, "store-off drifted at {threads} threads");
            assert_eq!(reference, on, "store-on drifted at {threads} threads");
        }
        let stats = store.stats();
        assert!(
            stats.hits() > 0,
            "shared store saw no hits across the sweep passes: {stats:?}"
        );
    }
}

#[test]
fn capped_store_churns_and_stays_bit_identical() {
    // A budget far below one record's artifacts: every class evicts
    // constantly, and the results must not move.
    let tiny = Arc::new(PrefixStore::with_budgets(PrefixBudgets {
        ct: 256,
        analog: 256,
        reference: 256,
        sampled: 256,
        acquired: 256,
    }));
    let reference = sweep_with(2, None, None);
    let churned = sweep_with(2, None, Some(Arc::clone(&tiny)));
    let churned_again = sweep_with(2, None, Some(Arc::clone(&tiny)));
    assert_eq!(reference, churned);
    assert_eq!(reference, churned_again);
    let stats = tiny.stats();
    assert!(
        stats.evictions() > 0,
        "a 256-element budget must evict under this workload: {stats:?}"
    );
}

#[test]
fn streaming_path_stays_pinned_to_the_store_assisted_batch_path() {
    let x = tone(4.0);
    let plan = everything_plan();
    for (mut sim, plan) in [
        (baseline_sim(), None),
        (cs_sim(), None),
        (baseline_sim(), Some(plan.clone())),
        (cs_sim(), Some(plan)),
    ] {
        sim.set_fault_plan(plan);
        // The streaming simulator never sees the store; the batch run uses
        // it. PR-8's pinning (stream == batch) must survive the store.
        let streamed = StreamSimulator::run_chunked(&sim, &x, FS_IN, 3, 256);
        sim.set_prefix_store(Some(Arc::new(PrefixStore::new())));
        let batch_cold = sim.run(&x, FS_IN, 3);
        let batch_warm = sim.run(&x, FS_IN, 3);
        assert_eq!(batch_cold, streamed);
        assert_eq!(batch_warm, streamed);
    }
}
