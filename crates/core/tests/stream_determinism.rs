//! Streaming-pipeline determinism: the chunked, bounded-memory path must
//! be (a) bit-identical to the whole-record batch path on static plans,
//! (b) invariant to chunk size, (c) invariant to decode thread count under
//! compound faults, and (d) telemetry-identical across chunkings under the
//! obs logical clock.

use efficsense_core::config::CsConfig;
use efficsense_core::prelude::*;
use efficsense_core::stream::StreamSimulator;
use efficsense_dsp::spectrum::sine;
use efficsense_obs::LogicalClock;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Serializes access to the global obs registry across the tests in this
/// binary (integration tests get their own process, so only these tests
/// share the registry).
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

const FS_IN: f64 = 173.61;

fn tone(seconds: f64) -> Vec<f64> {
    sine((FS_IN * seconds) as usize, FS_IN, 8.0, 100e-6, 0.3)
}

fn baseline_sim() -> Simulator {
    Simulator::new(SystemConfig::baseline(8)).expect("valid baseline config")
}

fn cs_sim() -> Simulator {
    let mut cfg = SystemConfig::compressive(8, CsConfig::default());
    cfg.lna.noise_floor_vrms = 2e-6;
    Simulator::new(cfg).expect("valid CS config")
}

/// An aggressive static plan exercising every fault hook at once.
fn everything_plan() -> FaultPlan {
    let mut plan = FaultPlan::single(FaultKind::LnaRail, 0.4, 99);
    let jitter = FaultPlan::single(FaultKind::ClockJitter, 0.5, 99);
    let drops = FaultPlan::single(FaultKind::DroppedSamples, 0.3, 99);
    let adc = FaultPlan::single(FaultKind::AdcStuckBit, 0.4, 99);
    let leak = FaultPlan::single(FaultKind::CapLeakage, 0.5, 99);
    let link = FaultPlan::single(FaultKind::PacketLoss, 0.5, 99);
    plan.clock = Some(efficsense_faults::ClockFault {
        jitter_periods: jitter.clock.expect("jitter").jitter_periods,
        drop_prob: drops.clock.expect("drops").drop_prob,
    });
    plan.adc = adc.adc;
    plan.leakage = leak.leakage;
    plan.link = link.link;
    plan
}

/// A compound plan touching every block with a different severity shape.
fn compound_plan() -> CompoundPlan {
    CompoundPlan::new(0xC0_FFEE, 0.5)
        .with(
            FaultKind::LnaRail,
            SeverityProfile::Linear {
                start: 0.0,
                end: 0.8,
                ramp_s: 3.0,
            },
        )
        .with(
            FaultKind::ClockJitter,
            SeverityProfile::Sinusoid {
                base: 0.2,
                amplitude: 0.2,
                period_s: 1.5,
            },
        )
        .with(
            FaultKind::DroppedSamples,
            SeverityProfile::Step {
                before: 0.0,
                after: 0.4,
                at_s: 2.0,
            },
        )
        .with(FaultKind::AdcStuckBit, SeverityProfile::Constant(0.3))
        .with(
            FaultKind::CapLeakage,
            SeverityProfile::Linear {
                start: 0.1,
                end: 0.6,
                ramp_s: 4.0,
            },
        )
        .with(
            FaultKind::PacketLoss,
            SeverityProfile::Linear {
                start: 0.0,
                end: 0.7,
                ramp_s: 4.0,
            },
        )
}

/// Runs a compound stream in `chunk_len` pushes and returns the
/// concatenated output pairs plus the summary.
fn run_compound(
    sim: &Simulator,
    input: &[f64],
    chunk_len: usize,
    plan: &CompoundPlan,
) -> (Vec<f64>, Vec<f64>, StreamSummary) {
    let mut stream = StreamSimulator::with_compound(sim, FS_IN, 1, plan);
    let mut out = Vec::new();
    let mut reference = Vec::new();
    for chunk in input.chunks(chunk_len) {
        let got = stream.push(chunk);
        out.extend(got.input_referred);
        reference.extend(got.reference);
    }
    let (last, summary) = stream.finish();
    out.extend(last.input_referred);
    reference.extend(last.reference);
    (out, reference, summary)
}

#[test]
fn clean_stream_is_bit_identical_to_batch_on_both_architectures() {
    let x = tone(4.0);
    for sim in [baseline_sim(), cs_sim()] {
        let batch = sim.run(&x, FS_IN, 1);
        for chunk_len in [64, 1024] {
            let streamed = StreamSimulator::run_chunked(&sim, &x, FS_IN, 1, chunk_len);
            assert_eq!(batch, streamed, "chunk_len {chunk_len}");
        }
    }
}

#[test]
fn faulted_static_stream_is_bit_identical_to_batch_on_both_architectures() {
    let x = tone(4.0);
    let plan = everything_plan();
    for cfg in [
        SystemConfig::baseline(8),
        SystemConfig::compressive(8, CsConfig::default()),
    ] {
        let sim = Simulator::with_fault_plan(cfg, plan.clone()).expect("valid faulted config");
        let batch = sim.run(&x, FS_IN, 3);
        for chunk_len in [64, 1024] {
            let streamed = StreamSimulator::run_chunked(&sim, &x, FS_IN, 3, chunk_len);
            assert_eq!(batch, streamed, "chunk_len {chunk_len}");
        }
    }
}

#[test]
fn single_push_equals_many_small_pushes() {
    let x = tone(3.0);
    let sim = cs_sim();
    let whole = StreamSimulator::run_chunked(&sim, &x, FS_IN, 2, x.len().max(1));
    let tiny = StreamSimulator::run_chunked(&sim, &x, FS_IN, 2, 7);
    assert_eq!(whole, tiny);
}

#[test]
fn compound_stream_is_chunk_size_invariant_on_both_architectures() {
    let x = tone(5.0);
    let plan = compound_plan();
    for sim in [baseline_sim(), cs_sim()] {
        let (out_a, ref_a, sum_a) = run_compound(&sim, &x, 64, &plan);
        let (out_b, ref_b, sum_b) = run_compound(&sim, &x, 1024, &plan);
        assert_eq!(out_a, out_b);
        assert_eq!(ref_a, ref_b);
        assert_eq!(sum_a, sum_b);
        assert!(!out_a.is_empty());
    }
}

#[test]
fn compound_stream_actually_degrades_the_output() {
    // Guard against the compound path silently running clean: the faulted
    // stream must differ from the clean stream on the same input.
    let x = tone(4.0);
    let sim = baseline_sim();
    let clean = StreamSimulator::run_chunked(&sim, &x, FS_IN, 1, 256);
    let (faulted, _, _) = run_compound(&sim, &x, 256, &compound_plan());
    assert_ne!(clean.input_referred, faulted);
}

#[test]
fn compound_decode_is_thread_count_invariant() {
    let x = tone(5.0);
    let plan = compound_plan();
    let mut one = cs_sim();
    one.set_decode_threads(1);
    let mut four = cs_sim();
    four.set_decode_threads(4);
    let (out_one, _, sum_one) = run_compound(&one, &x, 512, &plan);
    let (out_four, _, sum_four) = run_compound(&four, &x, 512, &plan);
    assert_eq!(out_one, out_four);
    assert_eq!(sum_one, sum_four);
}

#[test]
fn logical_clock_snapshot_is_identical_across_chunkings() {
    let _guard = obs_lock();
    let obs = efficsense_obs::global();
    let x = tone(5.0);
    let sim = cs_sim();
    let plan = compound_plan();

    // Warm-up so both measured runs see identical memo-store traffic.
    run_compound(&sim, &x, 256, &plan);

    obs.set_sink(None);
    obs.set_clock(Arc::new(LogicalClock::new(1_000)));

    obs.reset();
    let (out_a, _, _) = run_compound(&sim, &x, 64, &plan);
    let snap_a = obs.snapshot();

    obs.reset();
    let (out_b, _, _) = run_compound(&sim, &x, 1024, &plan);
    let snap_b = obs.snapshot();

    obs.set_clock(Arc::new(efficsense_obs::MonotonicClock::default()));

    assert_eq!(out_a, out_b);
    // Heartbeats, chunk spans, and clock reads all fire at chunk-invariant
    // points, so the full telemetry snapshot matches exactly.
    assert_eq!(snap_a, snap_b);
}

#[test]
fn empty_and_trickle_streams_are_graceful() {
    let sim = cs_sim();
    let out = StreamSimulator::run_chunked(&sim, &[], FS_IN, 1, 64);
    assert!(out.input_referred.is_empty());
    assert!(out.reference.is_empty());

    // Fewer samples than one CS frame: no decoded output, but clean
    // accounting and no panic.
    let x = tone(0.05);
    let mut stream = StreamSimulator::with_compound(&sim, FS_IN, 1, &compound_plan());
    let mut n = 0usize;
    for chunk in x.chunks(3) {
        n += stream.push(chunk).len();
    }
    let (last, summary) = stream.finish();
    n += last.len();
    assert_eq!(n as u64, summary.out_samples);
}
