//! Property-style tests for the framework layer (configs, design space,
//! reporting), run as seeded Monte-Carlo loops.

use efficsense_core::config::{Architecture, CsConfig, SystemConfig};
use efficsense_core::report;
use efficsense_core::space::{log_grid, DesignPoint, DesignSpace};
use efficsense_core::sweep::SweepResult;
use efficsense_power::units::Watts;
use efficsense_power::PowerBreakdown;
use efficsense_rng::Rng64;

const CASES: u64 = 96;

#[test]
fn log_grid_is_sorted_and_bounded() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x10C0 + case);
        let lo = 10f64.powf(g.uniform(-7.0, -4.0));
        let hi = lo * 10f64.powf(g.uniform(0.1, 2.0));
        let n = g.range(2, 32);
        let grid = log_grid(lo, hi, n);
        assert_eq!(grid.len(), n, "case {case}");
        assert!((grid[0] - lo).abs() < 1e-12 * lo, "case {case}");
        assert!((grid[n - 1] - hi).abs() < 1e-9 * hi, "case {case}");
        let r0 = grid[1] / grid[0];
        for w in grid.windows(2) {
            assert!(w[1] > w[0], "case {case}");
            // Log spacing: constant ratio.
            assert!((w[1] / w[0] - r0).abs() < 1e-9 * r0, "case {case}");
        }
    }
}

#[test]
fn design_space_point_count_matches_len() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x59AC + case);
        let n_noise = g.range(1, 5);
        let n_bits = g.range(1, 3);
        let n_m = g.range(1, 3);
        let include_baseline = g.flip();
        let space = DesignSpace {
            lna_noise_vrms: (0..n_noise).map(|i| 1e-6 * (i + 1) as f64).collect(),
            n_bits: (0..n_bits).map(|i| 6 + i as u32).collect(),
            include_baseline,
            cs_m: (0..n_m).map(|i| 75 + 50 * i).collect(),
            cs_s: vec![2],
            cs_c_hold_f: vec![0.5e-12],
            template: SystemConfig::compressive(8, CsConfig::default()),
        };
        assert_eq!(space.points().len(), space.len(), "case {case}");
    }
}

#[test]
fn every_point_yields_valid_config() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xC0F6 + case);
        let noise = g.uniform(1e-6, 20e-6);
        let bits = g.range(6, 9) as u32;
        let m = [75, 150, 192][g.index(3)];
        let template = SystemConfig::compressive(8, CsConfig::default());
        for arch in [Architecture::Baseline, Architecture::CompressiveSensing] {
            let p = DesignPoint {
                architecture: arch,
                lna_noise_vrms: noise,
                n_bits: bits,
                m: Some(m),
                s: Some(2),
                c_hold_f: Some(0.5e-12),
            };
            let cfg = p.to_config(&template);
            assert!(
                cfg.validate().is_ok(),
                "case {case} {}: {:?}",
                p.label(),
                cfg.validate()
            );
            assert_eq!(cfg.architecture(), arch, "case {case}");
        }
    }
}

#[test]
fn omp_budget_never_exceeds_m() {
    for case in 0..CASES {
        let m = Rng64::new(0x09B0 + case).range(8, 384);
        let template = SystemConfig::compressive(8, CsConfig::default());
        let p = DesignPoint {
            architecture: Architecture::CompressiveSensing,
            lna_noise_vrms: 2e-6,
            n_bits: 8,
            m: Some(m),
            s: Some(2),
            c_hold_f: Some(0.5e-12),
        };
        let cfg = p.to_config(&template);
        let cs = cfg.cs.expect("cs point");
        assert!(
            cs.omp_sparsity <= cs.m,
            "case {case}: sparsity {} > M {}",
            cs.omp_sparsity,
            cs.m
        );
        assert!(cs.omp_sparsity >= 1, "case {case}");
    }
}

#[test]
fn csv_roundtrip_for_random_results() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xC57A + case);
        let n_rows = g.range(1, 20);
        let results: Vec<SweepResult> = (0..n_rows)
            .map(|i| {
                let noise = g.uniform(1e-7, 1e-4);
                let metric = g.f64();
                let area = g.uniform(0.0, 1e6);
                let bits = g.range(6, 9) as u32;
                let mut b = PowerBreakdown::new();
                b.add(efficsense_power::BlockKind::Lna, Watts(noise * 1e3));
                SweepResult {
                    point: DesignPoint {
                        architecture: if i % 2 == 0 {
                            Architecture::Baseline
                        } else {
                            Architecture::CompressiveSensing
                        },
                        lna_noise_vrms: noise,
                        n_bits: bits,
                        m: (i % 2 == 1).then_some(75),
                        s: (i % 2 == 1).then_some(2),
                        c_hold_f: (i % 2 == 1).then_some(0.5e-12),
                    },
                    metric,
                    power_w: b.total().value(),
                    breakdown: b,
                    area_units: area,
                }
            })
            .collect();
        let mut buf = Vec::new();
        report::write_csv(&mut buf, &results).expect("writes");
        let text = String::from_utf8(buf).expect("utf8");
        // The CSV must have a line per result plus the header.
        assert_eq!(text.lines().count(), results.len() + 1, "case {case}");
        // And every row must have exactly the header's column count.
        let cols = text.lines().next().expect("header").split(',').count();
        for line in text.lines().skip(1) {
            assert_eq!(line.split(',').count(), cols, "case {case}");
        }
    }
}

#[test]
fn labels_injective_over_grid() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x1AB1 + case);
        let noise_a = g.uniform(1.0, 20.0);
        let noise_b = g.uniform(1.0, 20.0);
        let bits_a = g.range(6, 9) as u32;
        let bits_b = g.range(6, 9) as u32;
        let p = |noise: f64, bits: u32| DesignPoint {
            architecture: Architecture::Baseline,
            lna_noise_vrms: noise * 1e-6,
            n_bits: bits,
            m: None,
            s: None,
            c_hold_f: None,
        };
        let a = p(noise_a, bits_a);
        let b = p(noise_b, bits_b);
        // Labels round noise to 0.1 µV — equality below that is acceptable.
        if (noise_a - noise_b).abs() > 0.11 || bits_a != bits_b {
            assert_ne!(a.label(), b.label(), "case {case}");
        }
    }
}
