//! Property-based tests for the framework layer (configs, design space,
//! reporting).

use efficsense_core::config::{Architecture, CsConfig, SystemConfig};
use efficsense_core::report;
use efficsense_core::space::{log_grid, DesignPoint, DesignSpace};
use efficsense_core::sweep::SweepResult;
use efficsense_power::PowerBreakdown;
use proptest::prelude::*;

proptest! {
    #[test]
    fn log_grid_is_sorted_and_bounded(
        lo_exp in -7.0f64..-4.0,
        span in 0.1f64..2.0,
        n in 2usize..32,
    ) {
        let lo = 10f64.powf(lo_exp);
        let hi = lo * 10f64.powf(span);
        let g = log_grid(lo, hi, n);
        prop_assert_eq!(g.len(), n);
        prop_assert!((g[0] - lo).abs() < 1e-12 * lo);
        prop_assert!((g[n - 1] - hi).abs() < 1e-9 * hi);
        for w in g.windows(2) {
            prop_assert!(w[1] > w[0]);
            // Log spacing: constant ratio.
            let r0 = g[1] / g[0];
            prop_assert!((w[1] / w[0] - r0).abs() < 1e-9 * r0);
        }
    }

    #[test]
    fn design_space_point_count_matches_len(
        n_noise in 1usize..5,
        n_bits in 1usize..3,
        n_m in 1usize..3,
        include_baseline in any::<bool>(),
    ) {
        let space = DesignSpace {
            lna_noise_vrms: (0..n_noise).map(|i| 1e-6 * (i + 1) as f64).collect(),
            n_bits: (0..n_bits).map(|i| 6 + i as u32).collect(),
            include_baseline,
            cs_m: (0..n_m).map(|i| 75 + 50 * i).collect(),
            cs_s: vec![2],
            cs_c_hold_f: vec![0.5e-12],
            template: SystemConfig::compressive(8, CsConfig::default()),
        };
        prop_assert_eq!(space.points().len(), space.len());
    }

    #[test]
    fn every_point_yields_valid_config(
        noise in 1e-6f64..20e-6,
        bits in 6u32..9,
        m_idx in 0usize..3,
    ) {
        let m = [75, 150, 192][m_idx];
        let template = SystemConfig::compressive(8, CsConfig::default());
        for arch in [Architecture::Baseline, Architecture::CompressiveSensing] {
            let p = DesignPoint {
                architecture: arch,
                lna_noise_vrms: noise,
                n_bits: bits,
                m: Some(m),
                s: Some(2),
                c_hold_f: Some(0.5e-12),
            };
            let cfg = p.to_config(&template);
            prop_assert!(cfg.validate().is_ok(), "{}: {:?}", p.label(), cfg.validate());
            prop_assert_eq!(cfg.architecture(), arch);
        }
    }

    #[test]
    fn omp_budget_never_exceeds_m(m in 8usize..384) {
        let template = SystemConfig::compressive(8, CsConfig::default());
        let p = DesignPoint {
            architecture: Architecture::CompressiveSensing,
            lna_noise_vrms: 2e-6,
            n_bits: 8,
            m: Some(m),
            s: Some(2),
            c_hold_f: Some(0.5e-12),
        };
        let cfg = p.to_config(&template);
        let cs = cfg.cs.expect("cs point");
        prop_assert!(cs.omp_sparsity <= cs.m, "sparsity {} > M {}", cs.omp_sparsity, cs.m);
        prop_assert!(cs.omp_sparsity >= 1);
    }

    #[test]
    fn csv_roundtrip_for_random_results(
        rows in proptest::collection::vec(
            (1e-7f64..1e-4, 0.0f64..1.0, 0.0f64..1e6, 6u32..9),
            1..20
        )
    ) {
        let results: Vec<SweepResult> = rows
            .iter()
            .enumerate()
            .map(|(i, &(noise, metric, area, bits))| {
                let mut b = PowerBreakdown::new();
                b.add(efficsense_power::BlockKind::Lna, noise * 1e3);
                SweepResult {
                    point: DesignPoint {
                        architecture: if i % 2 == 0 {
                            Architecture::Baseline
                        } else {
                            Architecture::CompressiveSensing
                        },
                        lna_noise_vrms: noise,
                        n_bits: bits,
                        m: (i % 2 == 1).then_some(75),
                        s: (i % 2 == 1).then_some(2),
                        c_hold_f: (i % 2 == 1).then_some(0.5e-12),
                    },
                    metric,
                    power_w: b.total_w(),
                    breakdown: b,
                    area_units: area,
                }
            })
            .collect();
        let mut buf = Vec::new();
        report::write_csv(&mut buf, &results).expect("writes");
        let text = String::from_utf8(buf).expect("utf8");
        // The CSV must have a line per result plus the header.
        prop_assert_eq!(text.lines().count(), results.len() + 1);
        // And every row must have exactly the header's column count.
        let cols = text.lines().next().expect("header").split(',').count();
        for line in text.lines().skip(1) {
            prop_assert_eq!(line.split(',').count(), cols);
        }
    }

    #[test]
    fn labels_injective_over_grid(
        noise_a in 1.0f64..20.0,
        noise_b in 1.0f64..20.0,
        bits_a in 6u32..9,
        bits_b in 6u32..9,
    ) {
        let p = |noise: f64, bits: u32| DesignPoint {
            architecture: Architecture::Baseline,
            lna_noise_vrms: noise * 1e-6,
            n_bits: bits,
            m: None,
            s: None,
            c_hold_f: None,
        };
        let a = p(noise_a, bits_a);
        let b = p(noise_b, bits_b);
        // Labels round noise to 0.1 µV — equality below that is acceptable.
        if (noise_a - noise_b).abs() > 0.11 || bits_a != bits_b {
            prop_assert_ne!(a.label(), b.label());
        }
    }
}
