//! Process-wide memoization of sensing matrices and decoder precomputations.
//!
//! A design-space product sweep instantiates thousands of simulators, but
//! only a handful of *distinct* sensing configurations: every point sharing
//! `(M, N_Φ, s, seed)` uses the same Φ, the same sparsifying basis Ψ, the
//! same effective dictionary `A = Φ_eff·Ψ` and the same OMP column norms.
//! Rebuilding them per point dominated cold-sweep time (the amortization
//! lever of the fast BSBL / CS-telemonitoring literature), so this module
//! caches them once per key in sharded global maps and hands out `Arc`s.
//!
//! Everything here is *derived deterministically from its key*, so memoized
//! artifacts are bit-identical to freshly built ones — callers may switch
//! between [`DictionaryArtifacts::build`] and [`dictionary`] freely without
//! perturbing results. Floating-point key components are compared by their
//! IEEE-754 bit patterns (no epsilon): two keys are "the same configuration"
//! only when they would produce bit-identical artifacts.

use crate::basis::Basis;
use crate::linalg::Matrix;
use crate::matrix::SensingMatrix;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independent locks per store; bounds contention when many sweep
/// workers miss simultaneously on different keys.
const SHARDS: usize = 16;

/// A sharded, hit-counting `key → Arc<value>` map.
///
/// Values are built *under the shard lock*, which serialises builders that
/// race on the same shard but guarantees each key is computed exactly once —
/// the right trade for sweep start-up, where every worker wants the same
/// few dictionaries at the same moment.
struct Shards<K, V> {
    maps: Vec<Mutex<HashMap<K, Arc<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Telemetry mirrors of `hits`/`misses` on the global [`ObsRegistry`]
    /// (`memo.<name>.hit` / `memo.<name>.miss`), resolved once per store.
    ///
    /// [`ObsRegistry`]: efficsense_obs::ObsRegistry
    obs_hits: Arc<efficsense_obs::Counter>,
    obs_misses: Arc<efficsense_obs::Counter>,
}

impl<K: Hash + Eq + Clone, V> Shards<K, V> {
    fn new(name: &str) -> Self {
        let obs = efficsense_obs::global();
        Self {
            maps: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs_hits: obs.counter(&format!("memo.{name}.hit")),
            obs_misses: obs.counter(&format!("memo.{name}.miss")),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<V>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.maps[(h.finish() as usize) % SHARDS]
    }

    fn get_or_insert_with(&self, key: &K, build: impl FnOnce() -> V) -> Arc<V> {
        let mut map = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(v) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs_hits.incr();
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_misses.incr();
        let v = Arc::new(build());
        map.insert(key.clone(), Arc::clone(&v));
        v
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .maps
                .iter()
                .map(|m| {
                    m.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .len()
                })
                .sum(),
        }
    }

    fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn clear(&self) {
        for m in &self.maps {
            m.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
        self.reset_stats();
    }
}

/// Hit/miss/occupancy counters of one memoization store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
    /// Keys currently held.
    pub entries: usize,
}

impl StoreStats {
    /// Fraction of lookups served from the store (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters of every store in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Sensing-matrix store.
    pub srbm: StoreStats,
    /// Sparsifying-basis store.
    pub basis: StoreStats,
    /// Decoder-dictionary store.
    pub dictionary: StoreStats,
}

type SrbmKey = (usize, usize, usize, u64);
type BasisKey = (Basis, usize);
/// `(m, n_phi, s, seed, c_sample bits, c_hold bits, decay bits, basis)`.
type DictKey = (usize, usize, usize, u64, u64, u64, u64, Basis);

fn srbm_store() -> &'static Shards<SrbmKey, SensingMatrix> {
    static STORE: OnceLock<Shards<SrbmKey, SensingMatrix>> = OnceLock::new();
    STORE.get_or_init(|| Shards::new("srbm"))
}

fn basis_store() -> &'static Shards<BasisKey, Matrix> {
    static STORE: OnceLock<Shards<BasisKey, Matrix>> = OnceLock::new();
    STORE.get_or_init(|| Shards::new("basis"))
}

fn dict_store() -> &'static Shards<DictKey, DictionaryArtifacts> {
    static STORE: OnceLock<Shards<DictKey, DictionaryArtifacts>> = OnceLock::new();
    STORE.get_or_init(|| Shards::new("dict"))
}

/// Memoized [`SensingMatrix::srbm`]: one shared instance per
/// `(m, n, s, seed)`.
///
/// # Panics
///
/// Panics on the same invalid-schedule conditions as
/// [`SensingMatrix::srbm`].
pub fn srbm(m: usize, n: usize, s: usize, seed: u64) -> Arc<SensingMatrix> {
    srbm_store().get_or_insert_with(&(m, n, s, seed), || SensingMatrix::srbm(m, n, s, seed))
}

/// Memoized [`Basis::matrix`]: one shared `n × n` synthesis matrix per
/// `(basis, n)`.
pub fn basis_matrix(basis: Basis, n: usize) -> Arc<Matrix> {
    basis_store().get_or_insert_with(&(basis, n), || basis.matrix(n))
}

/// Everything the charge-sharing decoder precomputes per design point:
/// the effective dictionary, its OMP column norms, and the mean row energy
/// of the effective matrix (the discrepancy-rule noise gain).
#[derive(Debug, Clone, PartialEq)]
pub struct DictionaryArtifacts {
    /// Decoder dictionary `A = Φ_eff·Ψ`.
    pub dictionary: Matrix,
    /// `‖A·,j‖₂.max(1e-300)` per column — the normalised-correlation
    /// denominators OMP would otherwise recompute per frame.
    pub col_norms: Vec<f64>,
    /// Gram matrix `G = AᵀA`, built once per design point so the fast OMP
    /// path can update correlations as `Aᵀr = Aᵀy − G[:,S]·x_S` and grow a
    /// support Cholesky factor without ever rebuilding `A_S`.
    pub gram: Matrix,
    /// Ridge added to the support Gram diagonal by the fast decoder, fixed
    /// per dictionary with the same scale rule as
    /// [`least_squares`](crate::linalg::least_squares):
    /// `1e-12·(‖G‖_F / n).max(1e-300)`.
    pub ridge: f64,
    /// Transposed dictionary `Aᵀ` — row `j` is atom `j`, contiguous, so the
    /// fast decoder's `Aᵀy` dots and residual axpys stream cache lines
    /// instead of walking `A` with an `n`-element stride.
    pub dict_t: Matrix,
    /// Transposed synthesis operator `Ψᵀ` — row `k` is basis atom `k`. The
    /// fast decoder synthesizes `x̂ = Σ_k ŝ_k·Ψ[:,k]` over the ≤`k` nonzero
    /// coefficients (O(k·n)) instead of running the dense O(n²) transform
    /// (which for the DCT also pays a `cos()` per matrix element, per frame).
    pub synth_t: Matrix,
    /// Mean over rows of `Σ_j w_rj²` of the effective matrix.
    pub mean_row_w2: f64,
}

/// Identifies one decoder-dictionary configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DictionaryParams {
    /// Measurements per frame.
    pub m: usize,
    /// Frame length `N_Φ`.
    pub n_phi: usize,
    /// Sensing-matrix column sparsity.
    pub s: usize,
    /// Sensing-matrix seed (already mixed by the caller).
    pub seed: u64,
    /// Sampling capacitor (F).
    pub c_sample_f: f64,
    /// Hold capacitor (F).
    pub c_hold_f: f64,
    /// Per-step hold-droop factor folded into the effective matrix.
    pub decay: f64,
    /// Sparsifying basis Ψ.
    pub basis: Basis,
}

impl DictionaryParams {
    fn key(&self) -> DictKey {
        (
            self.m,
            self.n_phi,
            self.s,
            self.seed,
            self.c_sample_f.to_bits(),
            self.c_hold_f.to_bits(),
            self.decay.to_bits(),
            self.basis,
        )
    }
}

impl DictionaryArtifacts {
    /// Builds the artifacts from scratch (no memoization) — the reference
    /// computation that [`dictionary`] caches. Exposed so benchmarks can
    /// measure the per-build cost the memo store amortizes away.
    ///
    /// # Panics
    ///
    /// Panics on invalid sensing-schedule or capacitor parameters, exactly
    /// as the underlying constructors do.
    #[must_use]
    pub fn build(p: &DictionaryParams) -> Self {
        let phi = srbm(p.m, p.n_phi, p.s, p.seed);
        let eff = crate::charge_sharing::effective_matrix_decayed(
            &phi,
            p.c_sample_f,
            p.c_hold_f,
            p.decay,
        );
        let mean_row_w2 = (0..eff.rows())
            .map(|r| eff.row(r).iter().map(|w| w * w).sum::<f64>())
            .sum::<f64>()
            / eff.rows() as f64;
        let psi = basis_matrix(p.basis, p.n_phi);
        let dictionary = eff.matmul(&psi);
        Self::from_dictionary(dictionary, p.basis, mean_row_w2)
    }

    /// Derives the decoder-side precomputations (column norms, Gram matrix,
    /// ridge, transposed operators) for an already-built dictionary. This is
    /// the constructor every fast-decode call site shares — the detector
    /// trainer builds dictionaries outside the memo store and still needs the
    /// same artifacts.
    #[must_use]
    pub fn from_dictionary(dictionary: Matrix, basis: Basis, mean_row_w2: f64) -> Self {
        let col_norms: Vec<f64> = dictionary
            .col_norms()
            .into_iter()
            .map(|n| n.max(1e-300))
            .collect();
        let _gram_span = efficsense_obs::span!("recon.gram");
        let gram = dictionary.gram();
        let ridge = 1e-12 * (gram.frobenius_norm() / gram.rows() as f64).max(1e-300);
        let dict_t = dictionary.transpose();
        let synth_t = basis_matrix(basis, dictionary.cols()).transpose();
        Self {
            dictionary,
            col_norms,
            gram,
            ridge,
            dict_t,
            synth_t,
            mean_row_w2,
        }
    }
}

/// Memoized decoder-dictionary artifacts: one shared instance per
/// [`DictionaryParams`] (keyed by exact float bit patterns).
///
/// # Panics
///
/// Panics on the same invalid parameters as [`DictionaryArtifacts::build`].
pub fn dictionary(p: &DictionaryParams) -> Arc<DictionaryArtifacts> {
    dict_store().get_or_insert_with(&p.key(), || DictionaryArtifacts::build(p))
}

/// Current counters of every store.
#[must_use]
pub fn stats() -> MemoStats {
    MemoStats {
        srbm: srbm_store().stats(),
        basis: basis_store().stats(),
        dictionary: dict_store().stats(),
    }
}

/// Zeroes the hit/miss counters (entries stay cached).
pub fn reset_stats() {
    srbm_store().reset_stats();
    basis_store().reset_stats();
    dict_store().reset_stats();
}

/// Drops every cached artifact and zeroes the counters. Benchmarks call
/// this to measure genuinely cold builds; correctness never depends on it.
pub fn clear() {
    srbm_store().clear();
    basis_store().clear();
    dict_store().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> DictionaryParams {
        DictionaryParams {
            m: 12,
            n_phi: 32,
            s: 2,
            seed,
            c_sample_f: 0.1e-12,
            c_hold_f: 1e-12,
            decay: 0.999,
            basis: Basis::Dct,
        }
    }

    #[test]
    fn srbm_memo_matches_fresh_and_shares_storage() {
        let seed = 0xA110_C8ED_0001;
        let a = srbm(8, 24, 2, seed);
        let b = srbm(8, 24, 2, seed);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one instance");
        assert_eq!(*a, SensingMatrix::srbm(8, 24, 2, seed));
        let c = srbm(8, 24, 2, seed ^ 1);
        assert_ne!(*a, *c, "different seeds must not collide");
    }

    #[test]
    fn basis_memo_matches_fresh() {
        let m = basis_matrix(Basis::Haar, 16);
        assert_eq!(*m, Basis::Haar.matrix(16));
        assert!(Arc::ptr_eq(&m, &basis_matrix(Basis::Haar, 16)));
        assert_ne!(*m, *basis_matrix(Basis::Dct, 16));
    }

    #[test]
    fn dictionary_memo_is_bit_identical_to_fresh_build() {
        let p = params(0xA110_C8ED_0002);
        let memoized = dictionary(&p);
        let fresh = DictionaryArtifacts::build(&p);
        assert_eq!(*memoized, fresh);
        assert_eq!(memoized.dictionary.cols(), memoized.col_norms.len());
        assert!(memoized.mean_row_w2 > 0.0);
        assert!(Arc::ptr_eq(&memoized, &dictionary(&p)));
    }

    #[test]
    fn dictionary_keys_separate_float_parameters() {
        let p = params(0xA110_C8ED_0003);
        let a = dictionary(&p);
        let b = dictionary(&DictionaryParams { decay: 0.998, ..p });
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.dictionary, b.dictionary);
        let c = dictionary(&DictionaryParams {
            c_hold_f: 2e-12,
            ..p
        });
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        // Unique key so parallel tests cannot have inserted it already.
        let p = params(0xA110_C8ED_0004);
        let before = stats().dictionary;
        let _ = dictionary(&p);
        let _ = dictionary(&p);
        let after = stats().dictionary;
        assert!(after.misses > before.misses, "first call must miss");
        assert!(after.hits > before.hits, "second call must hit");
        assert!(after.entries >= 1);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn hit_rate_of_idle_store_is_zero() {
        assert_eq!(StoreStats::default().hit_rate(), 0.0);
    }
}
