//! Sensing matrices.
//!
//! The paper's encoder uses *s-sparse random binary matrices* (s-SRBM): each
//! column of the `M × N` matrix Φ has exactly `s` ones at random rows, so
//! every input sample is added into `s` of the `M` partial sums. Dense
//! Gaussian and Bernoulli(±1) matrices are provided as classical baselines.

use crate::linalg::Matrix;
use efficsense_rng::Rng64;

/// A compressive sensing matrix `Φ ∈ R^{M×N}` with efficient `y = Φx`.
#[derive(Debug, Clone, PartialEq)]
pub enum SensingMatrix {
    /// s-sparse random binary matrix: for each column, the row indices of its
    /// `s` ones.
    SparseBinary {
        /// Number of measurements (rows).
        m: usize,
        /// Frame length (columns).
        n: usize,
        /// Ones per column.
        s: usize,
        /// Destination rows, flattened with stride `s`: column `j` owns
        /// `rows[j*s .. (j+1)*s]`, sorted ascending. One contiguous
        /// allocation keeps the encoder's per-column scatter loops on a
        /// single streamed buffer instead of `n` separate heap blocks.
        rows: Vec<usize>,
    },
    /// Dense matrix (Gaussian or Bernoulli entries).
    Dense(Matrix),
}

impl SensingMatrix {
    /// Generates an `m × n` s-SRBM with exactly `s` ones per column,
    /// deterministically from `seed`.
    ///
    /// ```
    /// use efficsense_cs::matrix::SensingMatrix;
    /// let phi = SensingMatrix::srbm(75, 384, 2, 42);
    /// assert_eq!((phi.m(), phi.n(), phi.sparsity()), (75, 384, Some(2)));
    /// // Every input sample lands in exactly s partial sums:
    /// let y = phi.apply(&vec![1.0; 384]);
    /// assert!((y.iter().sum::<f64>() - 768.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0 < s <= m <= n`.
    pub fn srbm(m: usize, n: usize, s: usize, seed: u64) -> Self {
        assert!(s > 0 && s <= m, "need 0 < s <= m (s={s}, m={m})");
        assert!(m <= n, "compressive sensing requires m <= n (m={m}, n={n})");
        let mut rng = Rng64::new(seed);
        let mut rows: Vec<usize> = Vec::with_capacity(n * s);
        for _ in 0..n {
            // Sample s distinct rows (reservoir-free: m is small).
            let start = rows.len();
            while rows.len() < start + s {
                let r = rng.index(m);
                if !rows[start..].contains(&r) {
                    rows.push(r);
                }
            }
            rows[start..].sort_unstable();
        }
        Self::SparseBinary { m, n, s, rows }
    }

    /// Generates a dense `m × n` matrix with i.i.d. `N(0, 1/m)` entries.
    pub fn gaussian(m: usize, n: usize, seed: u64) -> Self {
        assert!(m > 0 && n > 0, "dimensions must be positive");
        let mut rng = Rng64::new(seed);
        let sigma = 1.0 / (m as f64).sqrt();
        let mut mat = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                mat[(r, c)] = rng.normal() * sigma;
            }
        }
        Self::Dense(mat)
    }

    /// Generates a dense `m × n` Bernoulli(±1/√m) matrix.
    pub fn bernoulli(m: usize, n: usize, seed: u64) -> Self {
        assert!(m > 0 && n > 0, "dimensions must be positive");
        let mut rng = Rng64::new(seed);
        let v = 1.0 / (m as f64).sqrt();
        let mut mat = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                mat[(r, c)] = if rng.flip() { v } else { -v };
            }
        }
        Self::Dense(mat)
    }

    /// Number of measurements `M`.
    pub fn m(&self) -> usize {
        match self {
            Self::SparseBinary { m, .. } => *m,
            Self::Dense(mat) => mat.rows(),
        }
    }

    /// Frame length `N`.
    pub fn n(&self) -> usize {
        match self {
            Self::SparseBinary { n, .. } => *n,
            Self::Dense(mat) => mat.cols(),
        }
    }

    /// Ones per column for an s-SRBM, `None` for dense matrices.
    pub fn sparsity(&self) -> Option<usize> {
        match self {
            Self::SparseBinary { s, .. } => Some(*s),
            Self::Dense(_) => None,
        }
    }

    /// For an s-SRBM, the destination rows of column `j`.
    ///
    /// # Panics
    ///
    /// Panics for dense matrices or `j >= n`.
    pub fn column_rows(&self, j: usize) -> &[usize] {
        match self {
            Self::SparseBinary { s, rows, .. } => &rows[j * s..(j + 1) * s],
            // lint:allow(no-panic) — documented API precondition, like index out of bounds.
            Self::Dense(_) => panic!("column_rows is only defined for sparse binary matrices"),
        }
    }

    /// Measurement `y = Φ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n(), "input frame length must equal N");
        match self {
            Self::SparseBinary { m, s, rows, .. } => {
                let mut y = vec![0.0; *m];
                for (chunk, &xj) in rows.chunks_exact(*s).zip(x) {
                    for &r in chunk {
                        y[r] += xj;
                    }
                }
                y
            }
            Self::Dense(mat) => mat.matvec(x),
        }
    }

    /// Dense `M × N` representation.
    pub fn to_dense(&self) -> Matrix {
        match self {
            Self::SparseBinary { m, n, s, rows } => {
                let mut mat = Matrix::zeros(*m, *n);
                for (j, chunk) in rows.chunks_exact(*s).enumerate() {
                    for &r in chunk {
                        mat[(r, j)] = 1.0;
                    }
                }
                mat
            }
            Self::Dense(mat) => mat.clone(),
        }
    }

    /// Number of ones (sparse) or entries (dense) — a proxy for switch count
    /// in the encoder hardware.
    pub fn nnz(&self) -> usize {
        match self {
            Self::SparseBinary { n, s, .. } => n * s,
            Self::Dense(mat) => mat.rows() * mat.cols(),
        }
    }

    /// Compression ratio `M / N`.
    pub fn compression_ratio(&self) -> f64 {
        self.m() as f64 / self.n() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srbm_columns_have_exactly_s_ones() {
        let phi = SensingMatrix::srbm(75, 384, 2, 1);
        let d = phi.to_dense();
        for c in 0..384 {
            let ones = (0..75)
                .filter(|&r| efficsense_dsp::approx::total_eq(d[(r, c)], 1.0))
                .count();
            assert_eq!(ones, 2, "column {c}");
        }
        assert_eq!(phi.nnz(), 768);
    }

    #[test]
    fn srbm_apply_matches_dense() {
        let phi = SensingMatrix::srbm(20, 60, 3, 7);
        let x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.17).sin()).collect();
        let fast = phi.apply(&x);
        let dense = phi.to_dense().matvec(&x);
        for (a, b) in fast.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn srbm_deterministic_in_seed() {
        assert_eq!(
            SensingMatrix::srbm(10, 30, 2, 5),
            SensingMatrix::srbm(10, 30, 2, 5)
        );
        assert_ne!(
            SensingMatrix::srbm(10, 30, 2, 5),
            SensingMatrix::srbm(10, 30, 2, 6)
        );
    }

    #[test]
    fn srbm_rows_within_bounds_and_distinct() {
        let phi = SensingMatrix::srbm(12, 40, 4, 9);
        for j in 0..40 {
            let rows = phi.column_rows(j);
            assert_eq!(rows.len(), 4);
            assert!(rows.iter().all(|&r| r < 12));
            let mut sorted = rows.to_vec();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate rows in column {j}");
        }
    }

    #[test]
    fn gaussian_statistics() {
        let phi = SensingMatrix::gaussian(64, 256, 3);
        let d = phi.to_dense();
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let count = (64 * 256) as f64;
        for r in 0..64 {
            for c in 0..256 {
                sum += d[(r, c)];
                sumsq += d[(r, c)] * d[(r, c)];
            }
        }
        let mean = sum / count;
        let var = sumsq / count - mean * mean;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 64.0).abs() < 0.002, "var {var}");
    }

    #[test]
    fn bernoulli_entries_are_pm() {
        let phi = SensingMatrix::bernoulli(16, 32, 11);
        let d = phi.to_dense();
        let v = 0.25; // 1/sqrt(16)
        for r in 0..16 {
            for c in 0..32 {
                assert!((d[(r, c)].abs() - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shape_accessors() {
        let phi = SensingMatrix::srbm(75, 384, 2, 0);
        assert_eq!((phi.m(), phi.n()), (75, 384));
        assert_eq!(phi.sparsity(), Some(2));
        assert!((phi.compression_ratio() - 75.0 / 384.0).abs() < 1e-12);
        let g = SensingMatrix::gaussian(4, 8, 0);
        assert_eq!(g.sparsity(), None);
    }

    #[test]
    fn energy_preserved_on_average() {
        // For unit-norm-ish rows, ||Φx||² should be within a few x of ||x||²·s·m/n scaling.
        let phi = SensingMatrix::srbm(150, 384, 2, 2);
        let x = vec![1.0; 384];
        let y = phi.apply(&x);
        let total: f64 = y.iter().sum();
        // Each sample contributes to s=2 sums: total output mass = 2·384.
        assert!((total - 768.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "m <= n")]
    fn srbm_rejects_m_greater_than_n() {
        let _ = SensingMatrix::srbm(100, 50, 2, 0);
    }

    #[test]
    #[should_panic(expected = "frame length")]
    fn apply_rejects_wrong_length() {
        let phi = SensingMatrix::srbm(10, 20, 2, 0);
        let _ = phi.apply(&[0.0; 19]);
    }
}
