//! Passive charge-sharing multiply-accumulate mathematics (paper Eq. (1)).
//!
//! Charging `C₁` to an input voltage and then sharing its charge with `C₂`
//! realises `v₂' = a·v₁ + b·v₂` with `a = C₁/(C₁+C₂)`, `b = C₂/(C₁+C₂)`.
//! Repeating the sample/share cycle builds the geometrically weighted sum of
//! Eq. (1):
//!
//! `V_sum = Σ_{j=1..N} V_j · C₁/(C₁+C₂) · (C₂/(C₁+C₂))^(N−j)`
//!
//! The passive encoder therefore does *not* compute an exact binary
//! matrix-vector product; the decaying weights are known, so reconstruction
//! folds them into an *effective* sensing matrix ([`effective_matrix`]).

use crate::linalg::Matrix;
use crate::matrix::SensingMatrix;

/// Voltage on both capacitors after sharing charge between `C₁` (at `v1`)
/// and `C₂` (at `v2`).
///
/// # Panics
///
/// Panics unless both capacitances are positive.
#[inline]
pub fn share(v1: f64, c1: f64, v2: f64, c2: f64) -> f64 {
    assert!(c1 > 0.0 && c2 > 0.0, "capacitances must be positive");
    (c1 * v1 + c2 * v2) / (c1 + c2)
}

/// The per-step gains of a sample/share cycle:
/// `a = C₁/(C₁+C₂)` applied to the new sample and `b = C₂/(C₁+C₂)` applied to
/// the held value.
#[inline]
pub fn share_gains(c1: f64, c2: f64) -> (f64, f64) {
    assert!(c1 > 0.0 && c2 > 0.0, "capacitances must be positive");
    let t = c1 + c2;
    (c1 / t, c2 / t)
}

/// The Eq. (1) weight of sample `j` (1-based) out of `n` accumulated samples:
/// `C₁/(C₁+C₂) · (C₂/(C₁+C₂))^(n−j)`.
pub fn eq1_weight(j: usize, n: usize, c1: f64, c2: f64) -> f64 {
    assert!(j >= 1 && j <= n, "sample index {j} out of 1..={n}");
    let (a, b) = share_gains(c1, c2);
    a * b.powi((n - j) as i32)
}

/// All `n` Eq. (1) weights in sample order.
pub fn eq1_weights(n: usize, c1: f64, c2: f64) -> Vec<f64> {
    (1..=n).map(|j| eq1_weight(j, n, c1, c2)).collect()
}

/// A single hold capacitor accumulating charge-shared samples.
///
/// ```
/// use efficsense_cs::charge_sharing::{Accumulator, eq1_weights};
/// let mut acc = Accumulator::new(0.2e-12, 1.0e-12);
/// let inputs = [1.0, -0.5, 0.25];
/// for v in inputs {
///     acc.accumulate(v);
/// }
/// let w = eq1_weights(3, 0.2e-12, 1.0e-12);
/// let expect: f64 = inputs.iter().zip(&w).map(|(v, w)| v * w).sum();
/// assert!((acc.voltage() - expect).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accumulator {
    c_sample: f64,
    c_hold: f64,
    v: f64,
}

impl Accumulator {
    /// Creates a discharged accumulator with sample capacitor `c_sample` and
    /// hold capacitor `c_hold` (farads).
    pub fn new(c_sample: f64, c_hold: f64) -> Self {
        assert!(
            c_sample > 0.0 && c_hold > 0.0,
            "capacitances must be positive"
        );
        Self {
            c_sample,
            c_hold,
            v: 0.0,
        }
    }

    /// One sample/share cycle with input voltage `v_in`.
    pub fn accumulate(&mut self, v_in: f64) {
        self.v = share(v_in, self.c_sample, self.v, self.c_hold);
    }

    /// Current hold voltage.
    #[inline]
    pub fn voltage(&self) -> f64 {
        self.v
    }

    /// Overrides the hold voltage (used for reset and leakage modelling).
    pub fn set_voltage(&mut self, v: f64) {
        self.v = v;
    }

    /// Discharges the hold capacitor.
    pub fn reset(&mut self) {
        self.v = 0.0;
    }

    /// The sample capacitor value (F).
    pub fn c_sample(&self) -> f64 {
        self.c_sample
    }

    /// The hold capacitor value (F).
    pub fn c_hold(&self) -> f64 {
        self.c_hold
    }
}

/// Folds the charge-sharing weights into an s-SRBM, producing the *effective*
/// dense sensing matrix the decoder must invert.
///
/// Each row of Φ receives its marked samples in temporal order; a sample that
/// is the `l`-th of `k` contributions to a row carries weight
/// `a·b^(k−l)` (Eq. (1)).
///
/// # Panics
///
/// Panics if `phi` is not sparse-binary or capacitances are not positive.
pub fn effective_matrix(phi: &SensingMatrix, c_sample: f64, c_hold: f64) -> Matrix {
    effective_matrix_decayed(phi, c_sample, c_hold, 1.0)
}

/// Like [`effective_matrix`] but additionally folds a deterministic held-
/// charge decay of `decay_per_step` (≤ 1) per sample period — the
/// leakage-aware decoder model. A contribution made at sample `j` of an
/// `N`-sample frame is read out after `N−1−j` further periods, so its weight
/// gains a factor `decay^(N−1−j)`.
///
/// Switch leakage is set by design constants (`τ = C·V_ref/I_leak`), so a
/// designer folds it into the decode matrix just like the Eq. (1) weights;
/// only the *random* imperfections (mismatch, kT/C noise) remain unmodelled.
///
/// # Panics
///
/// Panics if `phi` is not sparse-binary, capacitances are not positive, or
/// `decay_per_step` is outside `(0, 1]`.
pub fn effective_matrix_decayed(
    phi: &SensingMatrix,
    c_sample: f64,
    c_hold: f64,
    decay_per_step: f64,
) -> Matrix {
    assert!(
        decay_per_step > 0.0 && decay_per_step <= 1.0,
        "decay per step must be in (0, 1], got {decay_per_step}"
    );
    let (a, b) = share_gains(c_sample, c_hold);
    let (m, n) = (phi.m(), phi.n());
    let mut counts = vec![0usize; m]; // contributions per row, in order
    let mut order: Vec<Vec<(usize, usize)>> = vec![Vec::new(); m]; // (col, index)
    for j in 0..n {
        for &r in phi.column_rows(j) {
            order[r].push((j, counts[r]));
            counts[r] += 1;
        }
    }
    let mut eff = Matrix::zeros(m, n);
    for (r, contribs) in order.iter().enumerate() {
        let k = contribs.len();
        for &(j, l) in contribs {
            // l is 0-based: the (l+1)-th of k contributions.
            eff[(r, j)] = a * b.powi((k - 1 - l) as i32) * decay_per_step.powi((n - 1 - j) as i32);
        }
    }
    eff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_conserves_charge() {
        let c1 = 0.3e-12;
        let c2 = 0.9e-12;
        let (v1, v2) = (1.2, -0.4);
        let v = share(v1, c1, v2, c2);
        let q_before = c1 * v1 + c2 * v2;
        let q_after = (c1 + c2) * v;
        assert!((q_before - q_after).abs() < 1e-24);
    }

    #[test]
    fn share_equal_caps_averages() {
        assert!((share(1.0, 1e-12, 0.0, 1e-12) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn gains_sum_to_one() {
        let (a, b) = share_gains(0.2e-12, 1.0e-12);
        assert!((a + b - 1.0).abs() < 1e-15);
        assert!((a - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_weights_match_iterated_sharing() {
        let c1 = 0.15e-12;
        let c2 = 0.85e-12;
        let inputs = [0.9, -0.3, 0.5, 0.1, -0.7];
        let mut acc = Accumulator::new(c1, c2);
        for v in inputs {
            acc.accumulate(v);
        }
        let w = eq1_weights(inputs.len(), c1, c2);
        let expect: f64 = inputs.iter().zip(&w).map(|(v, w)| v * w).sum();
        assert!((acc.voltage() - expect).abs() < 1e-15);
    }

    #[test]
    fn weights_decay_geometrically_backwards() {
        let w = eq1_weights(6, 0.2e-12, 1.0e-12);
        // Later samples (higher j) carry more weight.
        for k in 1..w.len() {
            assert!(w[k] > w[k - 1]);
            assert!((w[k - 1] / w[k] - 1.0 / 1.2).abs() < 1e-12); // ratio b
        }
    }

    #[test]
    fn weights_sum_bounded_by_one() {
        // Total weight = a·(1+b+…+b^{n−1}) = 1 − bⁿ < 1.
        let w = eq1_weights(50, 0.2e-12, 1.0e-12);
        let total: f64 = w.iter().sum();
        let b: f64 = 1.0 / 1.2;
        assert!((total - (1.0 - b.powi(50))).abs() < 1e-12);
        assert!(total < 1.0);
    }

    #[test]
    fn dc_input_converges_to_input() {
        // Accumulating a constant converges to that constant (unity DC gain).
        let mut acc = Accumulator::new(0.5e-12, 1.0e-12);
        for _ in 0..200 {
            acc.accumulate(0.7);
        }
        assert!((acc.voltage() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn reset_and_set() {
        let mut acc = Accumulator::new(1e-12, 1e-12);
        acc.accumulate(1.0);
        assert!(!efficsense_dsp::approx::is_zero(acc.voltage()));
        acc.reset();
        assert_eq!(acc.voltage(), 0.0);
        acc.set_voltage(0.3);
        assert_eq!(acc.voltage(), 0.3);
    }

    #[test]
    fn effective_matrix_reproduces_behavioural_sums() {
        let phi = SensingMatrix::srbm(8, 32, 2, 3);
        let c_s = 0.2e-12;
        let c_h = 1.0e-12;
        let x: Vec<f64> = (0..32).map(|i| ((i * 7 % 13) as f64 - 6.0) / 6.0).collect();
        // Behavioural: m accumulators, samples pushed in temporal order.
        let mut accs = [Accumulator::new(c_s, c_h); 8];
        for (j, &v) in x.iter().enumerate() {
            for &r in phi.column_rows(j) {
                accs[r].accumulate(v);
            }
        }
        let behavioural: Vec<f64> = accs.iter().map(|a| a.voltage()).collect();
        let eff = effective_matrix(&phi, c_s, c_h);
        let algebraic = eff.matvec(&x);
        for (b, a) in behavioural.iter().zip(&algebraic) {
            assert!((b - a).abs() < 1e-12, "{b} vs {a}");
        }
    }

    #[test]
    fn effective_matrix_support_matches_phi() {
        let phi = SensingMatrix::srbm(10, 40, 3, 5);
        let eff = effective_matrix(&phi, 0.2e-12, 1e-12);
        let dense = phi.to_dense();
        for r in 0..10 {
            for c in 0..40 {
                let (e, d) = (eff[(r, c)], dense[(r, c)]);
                assert_eq!(
                    !efficsense_dsp::approx::is_zero(e),
                    !efficsense_dsp::approx::is_zero(d),
                    "support mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn large_hold_cap_approaches_uniform_weights() {
        // C_hold >> C_sample: b → 1, weights nearly equal.
        let w = eq1_weights(10, 1e-15, 1e-9);
        let ratio = w[0] / w[9];
        assert!((ratio - 1.0).abs() < 1e-4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cap() {
        let _ = share(1.0, 0.0, 0.0, 1e-12);
    }
}
