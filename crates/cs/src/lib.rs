//! # efficsense-cs
//!
//! Compressive sensing substrate for EffiCSense: sensing matrices (including
//! the paper's s-sparse random binary matrices), the passive charge-sharing
//! multiply-accumulate mathematics of Eq. (1), sparsifying bases (DCT,
//! Haar/Daubechies wavelets), and sparse reconstruction (OMP and ISTA) on a
//! small from-scratch dense linear algebra kernel.
//!
//! ```
//! use efficsense_cs::{matrix::SensingMatrix, recon::{OmpConfig, reconstruct}, basis::Basis};
//!
//! let n = 64;
//! let phi = SensingMatrix::srbm(24, n, 2, 42);
//! // A signal that is sparse in the DCT domain.
//! let x: Vec<f64> = (0..n).map(|i| (2.0 * std::f64::consts::PI * 4.0 * i as f64 / n as f64).cos()).collect();
//! let y = phi.apply(&x);
//! let xh = reconstruct(&phi.to_dense(), &y, Basis::Dct, &OmpConfig::with_sparsity(8));
//! let err: f64 = x.iter().zip(&xh).map(|(a, b)| (a - b).powi(2)).sum::<f64>()
//!     / x.iter().map(|a| a * a).sum::<f64>();
//! // A pure cosine is only approximately sparse in the DCT-II basis, so a
//! // few-percent NMSE is the expected recovery quality here.
//! assert!(err < 0.05, "NMSE {err}");
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod basis;
pub mod charge_sharing;
pub mod decode;
pub mod diagnostics;
pub mod linalg;
pub mod matrix;
pub mod memo;
pub mod recon;

pub use basis::Basis;
pub use linalg::Matrix;
pub use matrix::SensingMatrix;
