//! Sparse reconstruction: orthogonal matching pursuit and ISTA.

use crate::basis::Basis;
use crate::linalg::{least_squares, norm2, Matrix};
use efficsense_dsp::approx::is_zero;

/// Configuration of the OMP decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpConfig {
    /// Maximum number of atoms to select.
    pub sparsity: usize,
    /// Stop early when `‖r‖ ≤ residual_tol·‖y‖`.
    pub residual_tol: f64,
}

impl OmpConfig {
    /// A configuration selecting at most `k` atoms with the default residual
    /// tolerance of 1e-6.
    pub fn with_sparsity(k: usize) -> Self {
        Self {
            sparsity: k,
            residual_tol: 1e-6,
        }
    }
}

impl Default for OmpConfig {
    fn default() -> Self {
        Self::with_sparsity(16)
    }
}

/// Orthogonal matching pursuit: greedily solves `y ≈ A·s` with `‖s‖₀ ≤ k`.
///
/// Returns the full-length sparse coefficient vector.
///
/// ```
/// use efficsense_cs::linalg::Matrix;
/// use efficsense_cs::recon::{omp, OmpConfig};
/// // Identity dictionary: OMP recovers the largest entries exactly.
/// let a = Matrix::identity(8);
/// let y = [0.0, 3.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0];
/// let s = omp(&a, &y, &OmpConfig::with_sparsity(2));
/// // (a tiny ridge keeps the internal solver conditioned, so ~1e-12 slack)
/// assert!((s[1] - 3.0).abs() < 1e-9);
/// assert!((s[4] + 1.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `y.len() != a.rows()` or the config sparsity is 0.
pub fn omp(a: &Matrix, y: &[f64], cfg: &OmpConfig) -> Vec<f64> {
    // Precompute column norms for normalised correlation (one strided pass,
    // no per-column copies — same computation `DictionaryArtifacts` caches).
    let col_norms: Vec<f64> = a.col_norms().into_iter().map(|n| n.max(1e-300)).collect();
    omp_with_col_norms(a, &col_norms, y, cfg)
}

/// [`omp`] with the column norms of `a` supplied by the caller — sweeps hold
/// one dictionary per design point, so computing `‖A·,j‖₂` once per point
/// (instead of once per frame) removes an `O(m·n)` pass from every decode.
/// The norms must be exactly `‖A·,j‖₂.max(1e-300)` (see
/// [`crate::memo::DictionaryArtifacts`]); supplying them does not change the
/// result by a single bit.
///
/// # Panics
///
/// Panics if `y.len() != a.rows()`, `col_norms.len() != a.cols()` or the
/// config sparsity is 0.
pub fn omp_with_col_norms(a: &Matrix, col_norms: &[f64], y: &[f64], cfg: &OmpConfig) -> Vec<f64> {
    assert_eq!(y.len(), a.rows(), "measurement length must equal row count");
    assert_eq!(
        col_norms.len(),
        a.cols(),
        "one column norm per dictionary column"
    );
    assert!(cfg.sparsity > 0, "sparsity must be positive");
    let n = a.cols();
    let k_max = cfg.sparsity.min(a.rows()).min(n);
    efficsense_dsp::approx::debug_assert_all_finite(y, "omp measurements");
    let y_norm = norm2(y);
    if is_zero(y_norm) {
        return vec![0.0; n];
    }
    let mut support: Vec<usize> = Vec::with_capacity(k_max);
    // Membership mask: O(1) per candidate instead of the former O(k)
    // `support.contains` scan inside the argmax (same set, same selection).
    let mut in_support = vec![false; n];
    let mut residual = y.to_vec();
    let mut coeffs_on_support: Vec<f64> = Vec::new();
    for _ in 0..k_max {
        // Select the column most correlated with the residual.
        let corr = a.matvec_t(&residual);
        let best = (0..n).filter(|&j| !in_support[j]).max_by(|&i, &j| {
            (corr[i].abs() / col_norms[i]).total_cmp(&(corr[j].abs() / col_norms[j]))
        });
        let Some(j_star) = best else { break };
        if corr[j_star].abs() / col_norms[j_star] < 1e-300 {
            break;
        }
        support.push(j_star);
        in_support[j_star] = true;
        // Least squares on the current support.
        let mut a_s = Matrix::zeros(a.rows(), support.len());
        for (c, &j) in support.iter().enumerate() {
            for r in 0..a.rows() {
                a_s[(r, c)] = a[(r, j)];
            }
        }
        match least_squares(&a_s, y) {
            Ok(x_s) => {
                let approx = a_s.matvec(&x_s);
                for (ri, (yi, ai)) in y.iter().zip(&approx).enumerate() {
                    residual[ri] = yi - ai;
                }
                coeffs_on_support = x_s;
            }
            Err(_) => {
                // Degenerate support column; drop it and stop.
                support.pop();
                break;
            }
        }
        if norm2(&residual) <= cfg.residual_tol * y_norm {
            break;
        }
    }
    let mut s = vec![0.0; n];
    for (&j, &v) in support.iter().zip(&coeffs_on_support) {
        s[j] = v;
    }
    efficsense_dsp::approx::debug_assert_all_finite(&s, "omp coefficients");
    s
}

/// Accelerated iterative shrinkage-thresholding (FISTA) for
/// `min ½‖y−As‖² + λ‖s‖₁`.
///
/// A fixed-iteration proximal gradient solver with Nesterov momentum, used
/// as the OMP ablation baseline.
///
/// # Panics
///
/// Panics if `y.len() != a.rows()`, `lambda < 0` or `iterations == 0`.
pub fn ista(a: &Matrix, y: &[f64], lambda: f64, iterations: usize) -> Vec<f64> {
    assert_eq!(y.len(), a.rows(), "measurement length must equal row count");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    assert!(iterations > 0, "need at least one iteration");
    let l = {
        let s = a.spectral_norm_est(30);
        (s * s).max(1e-12) * 1.05 // small margin over the power-iteration estimate
    };
    let step = 1.0 / l;
    let thresh = lambda * step;
    let n = a.cols();
    let mut s = vec![0.0; n];
    let mut z = vec![0.0; n]; // momentum point
    let mut t = 1.0f64;
    for _ in 0..iterations {
        let az = a.matvec(&z);
        let r: Vec<f64> = y.iter().zip(&az).map(|(yi, ai)| yi - ai).collect();
        let grad = a.matvec_t(&r);
        let s_prev = s.clone();
        for i in 0..n {
            let v = z[i] + step * grad[i];
            // Soft threshold.
            s[i] = v.signum() * (v.abs() - thresh).max(0.0);
        }
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_next;
        for i in 0..n {
            z[i] = s[i] + beta * (s[i] - s_prev[i]);
        }
        t = t_next;
    }
    efficsense_dsp::approx::debug_assert_all_finite(&s, "ista coefficients");
    s
}

/// End-to-end reconstruction: given the (effective) sensing matrix `Φ`,
/// measurements `y` and a sparsifying basis, recovers the time-domain frame
/// `x̂ = Ψ·ŝ` with `ŝ = OMP(Φ·Ψ, y)`.
pub fn reconstruct(phi: &Matrix, y: &[f64], basis: Basis, cfg: &OmpConfig) -> Vec<f64> {
    let psi = basis.matrix(phi.cols());
    let a = phi.matmul(&psi);
    let s = omp(&a, y, cfg);
    basis.synthesize(&s)
}

/// Like [`reconstruct`] but reuses a precomputed dictionary `A = Φ·Ψ`
/// (the per-design-point matrices are constant across frames, so sweeps
/// build `A` once).
pub fn reconstruct_with_dictionary(
    a: &Matrix,
    y: &[f64],
    basis: Basis,
    cfg: &OmpConfig,
) -> Vec<f64> {
    let s = omp(a, y, cfg);
    basis.synthesize(&s)
}

/// Like [`reconstruct_with_dictionary`] but also reuses precomputed OMP
/// column norms (see [`omp_with_col_norms`]) — the per-frame hot path of the
/// sweep engine. Bit-identical to the other reconstruction entry points.
pub fn reconstruct_with_artifacts(
    a: &Matrix,
    col_norms: &[f64],
    y: &[f64],
    basis: Basis,
    cfg: &OmpConfig,
) -> Vec<f64> {
    let s = omp_with_col_norms(a, col_norms, y, cfg);
    basis.synthesize(&s)
}

/// Relative residual `‖y − A·s‖ / ‖y‖` — a decoder self-diagnostic.
pub fn relative_residual(a: &Matrix, y: &[f64], s: &[f64]) -> f64 {
    let approx = a.matvec(s);
    let r: Vec<f64> = y.iter().zip(&approx).map(|(yi, ai)| yi - ai).collect();
    let ny = norm2(y);
    if is_zero(ny) {
        return 0.0;
    }
    norm2(&r) / ny
}

/// Sparsity (number of non-zeros) of a coefficient vector.
pub fn support_size(s: &[f64]) -> usize {
    s.iter().filter(|v| !is_zero(**v)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SensingMatrix;

    /// Builds a k-sparse DCT-domain signal and its measurements.
    fn sparse_problem(n: usize, m: usize, k: usize, seed: u64) -> (Vec<f64>, Matrix, Vec<f64>) {
        let phi = SensingMatrix::gaussian(m, n, seed).to_dense();
        let mut s = vec![0.0; n];
        for i in 0..k {
            s[(i * 37 + 5) % n] = if i % 2 == 0 { 1.0 } else { -0.7 };
        }
        let x = Basis::Dct.synthesize(&s);
        let y = phi.matvec(&x);
        (x, phi, y)
    }

    #[test]
    fn omp_recovers_exactly_sparse_signal() {
        let (x, phi, y) = sparse_problem(64, 32, 4, 1);
        let xh = reconstruct(&phi, &y, Basis::Dct, &OmpConfig::with_sparsity(4));
        let err = x
            .iter()
            .zip(&xh)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8, "recovery error {err}");
    }

    #[test]
    fn omp_with_srbm_matrix() {
        let n = 96;
        let phi = SensingMatrix::srbm(48, n, 2, 3).to_dense();
        let mut s = vec![0.0; n];
        s[3] = 2.0;
        s[40] = -1.0;
        s[77] = 0.5;
        let x = Basis::Dct.synthesize(&s);
        let y = phi.matvec(&x);
        let xh = reconstruct(&phi, &y, Basis::Dct, &OmpConfig::with_sparsity(6));
        let nmse: f64 = x
            .iter()
            .zip(&xh)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / x.iter().map(|a| a * a).sum::<f64>();
        assert!(nmse < 1e-6, "NMSE {nmse}");
    }

    #[test]
    fn omp_early_stops_on_small_residual() {
        let (_, phi, y) = sparse_problem(64, 32, 2, 5);
        let psi = Basis::Dct.matrix(64);
        let a = phi.matmul(&psi);
        let s = omp(
            &a,
            &y,
            &OmpConfig {
                sparsity: 30,
                residual_tol: 1e-8,
            },
        );
        // Should stop near the true sparsity of 2, not use all 30 atoms.
        assert!(support_size(&s) <= 4, "support {}", support_size(&s));
    }

    #[test]
    fn omp_zero_measurements_give_zero() {
        let a = Matrix::identity(8);
        let s = omp(&a, &[0.0; 8], &OmpConfig::with_sparsity(3));
        assert!(s.iter().all(|v| is_zero(*v)));
    }

    #[test]
    fn omp_handles_noise_gracefully() {
        let (x, phi, mut y) = sparse_problem(64, 32, 3, 9);
        for (i, v) in y.iter_mut().enumerate() {
            *v += 0.01 * ((i * 31) as f64).sin();
        }
        let xh = reconstruct(&phi, &y, Basis::Dct, &OmpConfig::with_sparsity(3));
        let nmse: f64 = x
            .iter()
            .zip(&xh)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / x.iter().map(|a| a * a).sum::<f64>();
        assert!(nmse < 0.05, "noisy NMSE {nmse}");
    }

    #[test]
    fn ista_recovers_sparse_signal_approximately() {
        let (x, phi, y) = sparse_problem(64, 40, 3, 2);
        let psi = Basis::Dct.matrix(64);
        let a = phi.matmul(&psi);
        let s = ista(&a, &y, 1e-4, 500);
        let xh = Basis::Dct.synthesize(&s);
        let nmse: f64 = x
            .iter()
            .zip(&xh)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / x.iter().map(|a| a * a).sum::<f64>();
        assert!(nmse < 0.01, "ISTA NMSE {nmse}");
    }

    #[test]
    fn ista_lambda_controls_sparsity() {
        let (_, phi, y) = sparse_problem(64, 40, 3, 7);
        let psi = Basis::Dct.matrix(64);
        let a = phi.matmul(&psi);
        let s_small = ista(&a, &y, 1e-5, 200);
        let s_large = ista(&a, &y, 1e-1, 200);
        assert!(support_size(&s_large) < support_size(&s_small));
    }

    #[test]
    fn relative_residual_diagnostics() {
        let a = Matrix::identity(4);
        let y = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(relative_residual(&a, &y, &[1.0, 0.0, 0.0, 0.0]), 0.0);
        assert!((relative_residual(&a, &y, &[0.0; 4]) - 1.0).abs() < 1e-12);
        assert_eq!(relative_residual(&a, &[0.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn reconstruct_with_dictionary_matches_reconstruct() {
        let (_, phi, y) = sparse_problem(48, 24, 3, 13);
        let cfg = OmpConfig::with_sparsity(3);
        let direct = reconstruct(&phi, &y, Basis::Dct, &cfg);
        let psi = Basis::Dct.matrix(48);
        let a = phi.matmul(&psi);
        let cached = reconstruct_with_dictionary(&a, &y, Basis::Dct, &cfg);
        assert_eq!(direct, cached);
    }

    #[test]
    fn reconstruct_with_artifacts_matches_dictionary_path() {
        let (_, phi, y) = sparse_problem(48, 24, 3, 17);
        let cfg = OmpConfig::with_sparsity(3);
        let psi = Basis::Dct.matrix(48);
        let a = phi.matmul(&psi);
        let col_norms: Vec<f64> = (0..a.cols())
            .map(|c| norm2(&a.col(c)).max(1e-300))
            .collect();
        let plain = reconstruct_with_dictionary(&a, &y, Basis::Dct, &cfg);
        let precomputed = reconstruct_with_artifacts(&a, &col_norms, &y, Basis::Dct, &cfg);
        assert_eq!(plain, precomputed);
    }

    #[test]
    #[should_panic(expected = "column norm")]
    fn omp_with_col_norms_rejects_length_mismatch() {
        let a = Matrix::identity(4);
        let _ = omp_with_col_norms(&a, &[1.0; 3], &[1.0; 4], &OmpConfig::with_sparsity(2));
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn omp_rejects_zero_sparsity() {
        let a = Matrix::identity(4);
        let _ = omp(
            &a,
            &[1.0; 4],
            &OmpConfig {
                sparsity: 0,
                residual_tol: 0.0,
            },
        );
    }
}
