//! Sensing-matrix quality diagnostics.

use crate::linalg::{dot, norm2, Matrix};

/// Mutual coherence of a dictionary: the largest absolute normalised inner
/// product between distinct columns. Lower is better for sparse recovery.
///
/// # Panics
///
/// Panics if the matrix has fewer than two columns.
pub fn mutual_coherence(a: &Matrix) -> f64 {
    assert!(a.cols() >= 2, "coherence needs at least two columns");
    let cols: Vec<Vec<f64>> = (0..a.cols()).map(|c| a.col(c)).collect();
    let norms: Vec<f64> = cols.iter().map(|c| norm2(c).max(1e-300)).collect();
    let mut mu: f64 = 0.0;
    for i in 0..cols.len() {
        for j in i + 1..cols.len() {
            let c = dot(&cols[i], &cols[j]).abs() / (norms[i] * norms[j]);
            mu = mu.max(c);
        }
    }
    mu
}

/// Welch lower bound on coherence for an `m × n` dictionary:
/// `sqrt((n − m) / (m·(n − 1)))`.
pub fn welch_bound(m: usize, n: usize) -> f64 {
    assert!(n > 1 && m >= 1, "need n > 1 and m >= 1");
    if n <= m {
        return 0.0;
    }
    (((n - m) as f64) / ((m * (n - 1)) as f64)).sqrt()
}

/// Empirical restricted-isometry-like statistic: the min/max ratio of
/// `‖A·x‖²/‖x‖²` over `trials` random `k`-sparse sign vectors (deterministic
/// in `seed`). Values near 1 indicate good isometry on sparse vectors.
pub fn sparse_isometry_spread(a: &Matrix, k: usize, trials: usize, seed: u64) -> (f64, f64) {
    assert!(k >= 1 && k <= a.cols(), "sparsity out of range");
    assert!(trials >= 1, "need at least one trial");
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..trials {
        let mut x = vec![0.0; a.cols()];
        let mut placed = 0;
        while placed < k {
            let idx = (next() as usize) % a.cols();
            if efficsense_dsp::approx::is_zero(x[idx]) {
                x[idx] = if next() % 2 == 0 { 1.0 } else { -1.0 };
                placed += 1;
            }
        }
        let y = a.matvec(&x);
        let ratio = dot(&y, &y) / dot(&x, &x);
        lo = lo.min(ratio);
        hi = hi.max(ratio);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SensingMatrix;

    #[test]
    fn identity_has_zero_coherence() {
        assert_eq!(mutual_coherence(&Matrix::identity(8)), 0.0);
    }

    #[test]
    fn duplicated_column_has_unit_coherence() {
        let mut m = Matrix::zeros(3, 2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0; // same direction
        assert!((mutual_coherence(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_coherence_above_welch_bound() {
        let a = SensingMatrix::gaussian(32, 64, 1).to_dense();
        let mu = mutual_coherence(&a);
        let wb = welch_bound(32, 64);
        assert!(mu >= wb - 1e-12, "mu {mu} < welch {wb}");
        assert!(mu < 1.0);
    }

    #[test]
    fn welch_bound_known_value() {
        // m = n gives 0; m=1, n=2 gives 1.
        assert_eq!(welch_bound(4, 4), 0.0);
        assert!((welch_bound(1, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isometry_spread_identity_is_tight() {
        let (lo, hi) = sparse_isometry_spread(&Matrix::identity(16), 3, 20, 7);
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isometry_spread_gaussian_reasonable() {
        let a = SensingMatrix::gaussian(48, 96, 3).to_dense();
        let (lo, hi) = sparse_isometry_spread(&a, 4, 100, 11);
        assert!(lo > 0.2 && hi < 3.0, "spread [{lo}, {hi}]");
        assert!(lo <= hi);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SensingMatrix::gaussian(16, 32, 5).to_dense();
        assert_eq!(
            sparse_isometry_spread(&a, 3, 50, 9),
            sparse_isometry_spread(&a, 3, 50, 9)
        );
    }
}
