//! Small dense linear algebra kernel.
//!
//! Sized for the paper's problem dimensions (frames of a few hundred
//! samples): row-major matrices, matrix/vector products, Cholesky
//! factorisation and least-squares solves. No external numeric crates.

use efficsense_dsp::approx::is_zero;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must match column count");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// Transposed product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vector length must match row count");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (c, &arc) in row.iter().enumerate() {
                y[c] += arc * xr;
            }
        }
        y
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.rows`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if is_zero(aik) {
                    continue;
                }
                let brow = b.row(k);
                let orow = out.row_mut(i);
                for (j, &bkj) in brow.iter().enumerate() {
                    orow[j] += aik * bkj;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest singular value, estimated by power iteration on `AᵀA`.
    pub fn spectral_norm_est(&self, iterations: usize) -> f64 {
        let mut v = vec![1.0; self.cols];
        let mut lambda = 0.0;
        for _ in 0..iterations.max(1) {
            let av = self.matvec(&v);
            let atav = self.matvec_t(&av);
            lambda = norm2(&atav);
            if is_zero(lambda) {
                return 0.0;
            }
            for (vi, ai) in v.iter_mut().zip(&atav) {
                *vi = ai / lambda;
            }
        }
        lambda.sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                shown.join(" "),
                if self.cols > 8 { " …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ (release truncates).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Error from a failed numerical factorisation or solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveError {
    what: String,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear solve failed: {}", self.what)
    }
}

impl std::error::Error for SolveError {}

impl SolveError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

/// Solves the symmetric positive-definite system `A·x = b` by Cholesky
/// factorisation.
///
/// # Errors
///
/// Returns [`SolveError`] if `A` is not positive definite (within a small
/// pivot tolerance).
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    assert_eq!(b.len(), a.rows(), "rhs length must match");
    let n = a.rows();
    // Factor A = L·Lᵀ.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 1e-300 {
                    return Err(SolveError::new(format!("non-positive pivot at {i}")));
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    // Forward substitution L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Backward substitution Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    efficsense_dsp::approx::debug_assert_all_finite(&x, "cholesky_solve solution");
    Ok(x)
}

/// Least-squares solution of an overdetermined `A·x ≈ b` via the normal
/// equations `AᵀA·x = Aᵀb` with a small ridge for conditioning.
///
/// # Errors
///
/// Returns [`SolveError`] if the normal equations are singular even after
/// regularisation.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    assert_eq!(b.len(), a.rows(), "rhs length must match row count");
    let at = a.transpose();
    let mut ata = at.matmul(a);
    let atb = a.matvec_t(b);
    // Tiny ridge keeps near-collinear supports solvable.
    let ridge = 1e-12 * (ata.frobenius_norm() / ata.rows() as f64).max(1e-300);
    for i in 0..ata.rows() {
        ata[(i, i)] += ridge;
    }
    efficsense_dsp::approx::debug_assert_all_finite(&atb, "least_squares normal-equation rhs");
    cholesky_solve(&ata, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_rows() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col(2), vec![0.0, 5.0]);
    }

    #[test]
    fn matvec_identity() {
        let i = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
        assert_eq!(i.matvec_t(&x), x);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matmul_against_hand_result() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = cholesky_solve(&a, &[10.0, 9.0]).expect("SPD system solves");
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined consistent system.
        let a = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]);
        let x_true = [3.0, -2.0];
        let b = a.matvec(&x_true);
        let x = least_squares(&a, &b).expect("full-rank LS solves");
        assert!((x[0] - 3.0).abs() < 1e-8);
        assert!((x[1] + 2.0).abs() < 1e-8);
    }

    #[test]
    fn least_squares_minimises_residual() {
        let a = Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let x = least_squares(&a, &[1.0, 2.0, 6.0]).expect("solves");
        assert!((x[0] - 3.0).abs() < 1e-8); // mean
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -5.0;
        a[(2, 2)] = 2.0;
        let s = a.spectral_norm_est(50);
        assert!((s - 5.0).abs() < 1e-6, "estimated {s}");
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn display_truncates() {
        let m = Matrix::zeros(10, 10);
        let s = m.to_string();
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains('…'));
    }
}
