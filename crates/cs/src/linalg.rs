//! Small dense linear algebra kernel.
//!
//! Sized for the paper's problem dimensions (frames of a few hundred
//! samples): row-major matrices, matrix/vector products, Cholesky
//! factorisation and least-squares solves. No external numeric crates.

use efficsense_dsp::approx::is_zero;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Euclidean norm of every column, in one row-major pass.
    ///
    /// Equivalent to `(0..cols).map(|c| norm2(&self.col(c)))` but without
    /// the per-column `Vec` allocation and the strided column walks: the
    /// squared sums accumulate across rows (ascending, so each column's
    /// summation order matches the column-copy path bit for bit).
    pub fn col_norms(&self) -> Vec<f64> {
        let mut sq = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (acc, &v) in sq.iter_mut().zip(self.row(r)) {
                *acc += v * v;
            }
        }
        for v in &mut sq {
            *v = v.sqrt();
        }
        sq
    }

    /// Gram matrix `AᵀA` (`cols × cols`, symmetric positive semi-definite).
    ///
    /// Accumulates rank-one row outer products into the upper triangle and
    /// mirrors it, so the whole pass runs on contiguous row slices. This is
    /// the decoder-side precomputation that lets OMP update correlations as
    /// `Aᵀr = Aᵀy − G[:,S]·x_S` without touching `A` again.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let row = self.row(i);
            for j in 0..n {
                let v = row[j];
                if is_zero(v) {
                    continue;
                }
                let grow = &mut g.data[j * n..(j + 1) * n];
                for (k, &rk) in row[j..].iter().enumerate() {
                    grow[j + k] += v * rk;
                }
            }
        }
        for r in 1..n {
            for c in 0..r {
                g.data[r * n + c] = g.data[c * n + r];
            }
        }
        g
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must match column count");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// Transposed product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vector length must match row count");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (c, &arc) in row.iter().enumerate() {
                y[c] += arc * xr;
            }
        }
        y
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.rows`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, b.cols);
        // Blocked over the inner dimension so one panel of `b` rows stays
        // cache-resident while every output row accumulates against it. For
        // each output element the `k` order is still strictly ascending and
        // exact-zero `a[i,k]` terms are still skipped, so the result is
        // bit-identical to the naive i-k-j triple loop.
        const KB: usize = 64;
        let mut k0 = 0;
        while k0 < self.cols {
            let k1 = (k0 + KB).min(self.cols);
            for i in 0..self.rows {
                let apanel = &self.data[i * self.cols + k0..i * self.cols + k1];
                let orow = out.row_mut(i);
                for (dk, &aik) in apanel.iter().enumerate() {
                    if is_zero(aik) {
                        continue;
                    }
                    let brow = b.row(k0 + dk);
                    for (j, &bkj) in brow.iter().enumerate() {
                        orow[j] += aik * bkj;
                    }
                }
            }
            k0 = k1;
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest singular value, estimated by power iteration on `AᵀA`.
    pub fn spectral_norm_est(&self, iterations: usize) -> f64 {
        let mut v = vec![1.0; self.cols];
        let mut lambda = 0.0;
        for _ in 0..iterations.max(1) {
            let av = self.matvec(&v);
            let atav = self.matvec_t(&av);
            lambda = norm2(&atav);
            if is_zero(lambda) {
                return 0.0;
            }
            for (vi, ai) in v.iter_mut().zip(&atav) {
                *vi = ai / lambda;
            }
        }
        lambda.sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                shown.join(" "),
                if self.cols > 8 { " …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ (release truncates).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four independent accumulators break the serial add dependency so the
    // loop can keep multiple FMAs in flight; the lanes are folded pairwise
    // at the end. This changes the summation order relative to a serial
    // fold, which is fine — callers rely on determinism, not on one
    // particular rounding schedule.
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Error from a failed numerical factorisation or solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveError {
    what: String,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear solve failed: {}", self.what)
    }
}

impl std::error::Error for SolveError {}

impl SolveError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

/// Solves the symmetric positive-definite system `A·x = b` by Cholesky
/// factorisation.
///
/// # Errors
///
/// Returns [`SolveError`] if `A` is not positive definite (within a small
/// pivot tolerance).
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    assert_eq!(b.len(), a.rows(), "rhs length must match");
    let n = a.rows();
    // Factor A = L·Lᵀ.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 1e-300 {
                    return Err(SolveError::new(format!("non-positive pivot at {i}")));
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    // Forward substitution L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Backward substitution Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    efficsense_dsp::approx::debug_assert_all_finite(&x, "cholesky_solve solution");
    Ok(x)
}

/// Least-squares solution of an overdetermined `A·x ≈ b` via the normal
/// equations `AᵀA·x = Aᵀb` with a small ridge for conditioning.
///
/// # Errors
///
/// Returns [`SolveError`] if the normal equations are singular even after
/// regularisation.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    assert_eq!(b.len(), a.rows(), "rhs length must match row count");
    let at = a.transpose();
    let mut ata = at.matmul(a);
    let atb = a.matvec_t(b);
    // Tiny ridge keeps near-collinear supports solvable.
    let ridge = 1e-12 * (ata.frobenius_norm() / ata.rows() as f64).max(1e-300);
    for i in 0..ata.rows() {
        ata[(i, i)] += ridge;
    }
    efficsense_dsp::approx::debug_assert_all_finite(&atb, "least_squares normal-equation rhs");
    cholesky_solve(&ata, &atb)
}

/// Incrementally grown Cholesky factor of a ridge-regularised Gram matrix
/// `G_S + ridge·I`, where the support `S` gains one atom per OMP iteration.
///
/// Appending atom `k` costs O(k²) (one forward solve against the existing
/// factor) instead of the O(k³) full refactorisation that
/// [`cholesky_solve`] performs, and a solve against the current factor
/// costs O(k²). The pivot acceptance test is the same `> 1e-300` threshold
/// as [`cholesky_solve`], so a degenerate (linearly dependent) atom is
/// rejected at exactly the same point in exact arithmetic.
#[derive(Debug, Clone)]
pub struct GrowingCholesky {
    cap: usize,
    dim: usize,
    ridge: f64,
    /// Row-major `cap × cap` storage; row `i` holds `L[i, 0..=i]`.
    l: Vec<f64>,
    /// Scratch for the forward solve of an appended column.
    w: Vec<f64>,
}

impl GrowingCholesky {
    /// Empty factor able to grow to `cap` atoms.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn new(cap: usize, ridge: f64) -> Self {
        assert!(cap > 0, "capacity must be positive");
        Self {
            cap,
            dim: 0,
            ridge,
            l: vec![0.0; cap * cap],
            w: vec![0.0; cap],
        }
    }

    /// Drops all appended atoms and installs a new ridge, keeping the
    /// allocated storage for reuse across decodes.
    pub fn reset(&mut self, ridge: f64) {
        self.dim = 0;
        self.ridge = ridge;
    }

    /// Number of atoms currently factored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dim
    }

    /// Maximum number of atoms this factor can grow to.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether no atoms have been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dim == 0
    }

    /// Appends one atom: `cross` holds `G[S, j]` (one entry per atom already
    /// in the factor, in append order) and `diag` is `G[j, j]`.
    ///
    /// On success the factor covers the enlarged support. On error (the new
    /// pivot is not positive, i.e. the atom is numerically dependent on the
    /// current support even after the ridge) the factor is left unchanged,
    /// mirroring the reference path's rejection of a singular refit.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] with the same "non-positive pivot" message as
    /// [`cholesky_solve`] when the appended pivot is `<= 1e-300`.
    ///
    /// # Panics
    ///
    /// Panics if `cross.len()` differs from [`len`](Self::len) or the factor
    /// is already at capacity.
    pub fn try_append(&mut self, cross: &[f64], diag: f64) -> Result<(), SolveError> {
        let k = self.dim;
        assert_eq!(cross.len(), k, "one cross term per factored atom");
        assert!(k < self.cap, "factor is at capacity");
        // Forward solve L·w = cross against the existing factor.
        for (i, &ci) in cross.iter().enumerate() {
            let lrow = &self.l[i * self.cap..i * self.cap + i];
            let s = ci - dot(lrow, &self.w[..i]);
            self.w[i] = s / self.l[i * self.cap + i];
        }
        let pivot = diag + self.ridge - dot(&self.w[..k], &self.w[..k]);
        if pivot <= 1e-300 {
            return Err(SolveError::new(format!("non-positive pivot at {k}")));
        }
        let row = &mut self.l[k * self.cap..k * self.cap + k];
        row.copy_from_slice(&self.w[..k]);
        self.l[k * self.cap + k] = pivot.sqrt();
        self.dim = k + 1;
        Ok(())
    }

    /// Solves `(L·Lᵀ)·x = b` for the current support, writing the solution
    /// into `x` (resized to [`len`](Self::len)).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from [`len`](Self::len).
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        let k = self.dim;
        assert_eq!(b.len(), k, "rhs length must match factored dimension");
        x.clear();
        x.resize(k, 0.0);
        // Forward substitution L·y = b (y stored in x).
        for i in 0..k {
            let lrow = &self.l[i * self.cap..i * self.cap + i];
            let s = b[i] - dot(lrow, &x[..i]);
            x[i] = s / self.l[i * self.cap + i];
        }
        // Backward substitution Lᵀ·x = y.
        for i in (0..k).rev() {
            let mut s = x[i];
            for (t, &xt) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[t * self.cap + i] * xt;
            }
            x[i] = s / self.l[i * self.cap + i];
        }
        efficsense_dsp::approx::debug_assert_all_finite(x, "growing-cholesky solution");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_rows() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col(2), vec![0.0, 5.0]);
    }

    #[test]
    fn matvec_identity() {
        let i = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
        assert_eq!(i.matvec_t(&x), x);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matmul_against_hand_result() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = cholesky_solve(&a, &[10.0, 9.0]).expect("SPD system solves");
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined consistent system.
        let a = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]);
        let x_true = [3.0, -2.0];
        let b = a.matvec(&x_true);
        let x = least_squares(&a, &b).expect("full-rank LS solves");
        assert!((x[0] - 3.0).abs() < 1e-8);
        assert!((x[1] + 2.0).abs() < 1e-8);
    }

    #[test]
    fn least_squares_minimises_residual() {
        let a = Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let x = least_squares(&a, &[1.0, 2.0, 6.0]).expect("solves");
        assert!((x[0] - 3.0).abs() < 1e-8); // mean
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -5.0;
        a[(2, 2)] = 2.0;
        let s = a.spectral_norm_est(50);
        assert!((s - 5.0).abs() < 1e-6, "estimated {s}");
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn display_truncates() {
        let m = Matrix::zeros(10, 10);
        let s = m.to_string();
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains('…'));
    }
}
