//! Fast OMP decode path: Gram-cached correlations, an incrementally grown
//! Cholesky factor, and batched per-point decoding.
//!
//! The reference decoder in [`crate::recon`] rebuilds `A_S`, re-forms
//! `A_SᵀA_S` and re-runs a full Cholesky factorisation every iteration —
//! O(m·n + m·k² + k³) per selected atom. The kernels here reuse the
//! per-design-point [`DictionaryArtifacts`]: with `G = AᵀA` and `b = Aᵀy`
//! precomputed, correlations update as `Aᵀr = b − G[:,S]·x_S` (O(n·k)) and
//! the support normal equations grow by one rank-one Cholesky append per
//! iteration (O(k²)), for O(n·k + m·k + k²) per iteration overall.
//!
//! The reference path is retained as the oracle; the differential harness in
//! `tests/omp_diff.rs` pins the two together (identical support selection,
//! coefficients within 1e-9), and [`reconstruct_batch`] is bit-identical
//! across decode thread counts.

use crate::linalg::{dot, norm2, GrowingCholesky, Matrix};
use crate::memo::DictionaryArtifacts;
use crate::recon::OmpConfig;
use efficsense_dsp::approx::is_zero;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Reusable per-decoder workspace: every buffer the fast OMP kernel needs,
/// allocated once and recycled across frames (and across points — buffers
/// resize on dimension changes).
#[derive(Debug)]
pub struct OmpScratch {
    /// Correlations `Aᵀr` for the current residual.
    corr: Vec<f64>,
    /// `b = Aᵀy` for the frame being decoded.
    b: Vec<f64>,
    /// Explicit residual `y − A_S·x_S`.
    residual: Vec<f64>,
    /// Membership mask over dictionary columns.
    in_support: Vec<bool>,
    /// Selected atoms in selection order.
    support: Vec<usize>,
    /// Coefficients on the support (selection order).
    x: Vec<f64>,
    /// `b` gathered on the support (selection order).
    bs: Vec<f64>,
    /// Gram cross terms `G[S, j]` for the atom being appended.
    cross: Vec<f64>,
    /// Growing Cholesky factor of `G_S + ridge·I`.
    chol: GrowingCholesky,
}

impl OmpScratch {
    /// Fresh workspace; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            corr: Vec::new(),
            b: Vec::new(),
            residual: Vec::new(),
            in_support: Vec::new(),
            support: Vec::new(),
            x: Vec::new(),
            bs: Vec::new(),
            cross: Vec::new(),
            chol: GrowingCholesky::new(1, 0.0),
        }
    }

    /// Sizes (or re-sizes) every buffer for an `m × n` problem with at most
    /// `k_max` atoms and resets per-frame state.
    fn prepare(&mut self, n: usize, k_max: usize, ridge: f64) {
        self.corr.resize(n, 0.0);
        self.in_support.clear();
        self.in_support.resize(n, false);
        self.support.clear();
        self.x.clear();
        self.bs.clear();
        self.cross.clear();
        if self.chol.capacity() < k_max {
            self.chol = GrowingCholesky::new(k_max.max(1), ridge);
        } else {
            self.chol.reset(ridge);
        }
    }
}

impl Default for OmpScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Fast OMP against an explicit dictionary: same greedy selection and
/// stopping rules as [`crate::recon::omp_with_col_norms`], but with the
/// caller-precomputed Gram matrix and a per-call scratch workspace.
///
/// `gram` must be `AᵀA` (see [`Matrix::gram`]); `ridge` is the fixed
/// diagonal regulariser (see [`DictionaryArtifacts::ridge`]).
///
/// # Panics
///
/// Panics if `y.len() != a.rows()`, `col_norms.len() != a.cols()`, `gram`
/// is not `cols × cols`, or the config sparsity is 0.
pub fn omp_fast(
    a: &Matrix,
    gram: &Matrix,
    col_norms: &[f64],
    ridge: f64,
    y: &[f64],
    cfg: &OmpConfig,
    ws: &mut OmpScratch,
) -> Vec<f64> {
    // This compatibility entry transposes `A` per call; the hot paths
    // ([`reconstruct_fast`], [`reconstruct_batch`]) reuse the transposed
    // dictionary precomputed in [`DictionaryArtifacts`].
    let at = a.transpose();
    omp_fast_t(&at, gram, col_norms, ridge, y, cfg, ws)
}

/// [`omp_fast`] against the *transposed* dictionary `Aᵀ` (row `j` = atom
/// `j`): fills `ws.b = Aᵀy` as contiguous row dots, then runs the shared
/// kernel.
fn omp_fast_t(
    at: &Matrix,
    gram: &Matrix,
    col_norms: &[f64],
    ridge: f64,
    y: &[f64],
    cfg: &OmpConfig,
    ws: &mut OmpScratch,
) -> Vec<f64> {
    assert_eq!(
        y.len(),
        at.cols(),
        "measurement length must equal row count"
    );
    ws.b.clear();
    ws.b.extend((0..at.rows()).map(|c| dot(at.row(c), y)));
    omp_fast_core(at, gram, col_norms, ridge, y, cfg, ws)
}

/// Kernel shared by [`omp_fast`] and [`reconstruct_batch`]; takes the
/// transposed dictionary `Aᵀ` and expects `ws.b` to already hold `Aᵀy` for
/// this frame.
fn omp_fast_core(
    at: &Matrix,
    gram: &Matrix,
    col_norms: &[f64],
    ridge: f64,
    y: &[f64],
    cfg: &OmpConfig,
    ws: &mut OmpScratch,
) -> Vec<f64> {
    assert_eq!(
        col_norms.len(),
        at.rows(),
        "one column norm per dictionary column"
    );
    assert_eq!(gram.rows(), at.rows(), "gram must be cols x cols");
    assert_eq!(gram.cols(), at.rows(), "gram must be cols x cols");
    assert!(cfg.sparsity > 0, "sparsity must be positive");
    let n = at.rows();
    let m = at.cols();
    let k_max = cfg.sparsity.min(m).min(n);
    efficsense_dsp::approx::debug_assert_all_finite(y, "omp measurements");
    let mut s = vec![0.0; n];
    let y_norm = norm2(y);
    if is_zero(y_norm) {
        return s;
    }
    ws.prepare(n, k_max, ridge);
    ws.residual.clear();
    ws.residual.extend_from_slice(y);
    for _ in 0..k_max {
        // Correlations via the cached Gram: Aᵀr = b − Σ_{s∈S} x_s·G[s, :].
        ws.corr.copy_from_slice(&ws.b);
        for (&sj, &xs) in ws.support.iter().zip(&ws.x) {
            if is_zero(xs) {
                continue;
            }
            for (cv, &gv) in ws.corr.iter_mut().zip(gram.row(sj)) {
                *cv -= xs * gv;
            }
        }
        // Argmax of |corr|/norm over non-support columns. Ties resolve to
        // the *last* maximal index, matching `Iterator::max_by` in the
        // reference selection loop.
        let mut best: Option<(usize, f64)> = None;
        for (j, (&cv, &cn)) in ws.corr.iter().zip(col_norms).enumerate() {
            if ws.in_support[j] {
                continue;
            }
            let v = cv.abs() / cn;
            best = match best {
                None => Some((j, v)),
                Some((_, bv)) if v.total_cmp(&bv) != std::cmp::Ordering::Less => Some((j, v)),
                keep => keep,
            };
        }
        let Some((j_star, best_v)) = best else { break };
        if best_v < 1e-300 {
            break;
        }
        // Grow the support factor by one atom; a non-positive pivot means
        // the atom is numerically dependent on the support — drop it and
        // stop, exactly like the reference path's failed refit.
        let gj = gram.row(j_star);
        ws.cross.clear();
        ws.cross.extend(ws.support.iter().map(|&sj| gj[sj]));
        if ws.chol.try_append(&ws.cross, gj[j_star]).is_err() {
            break;
        }
        ws.support.push(j_star);
        ws.in_support[j_star] = true;
        ws.bs.push(ws.b[j_star]);
        ws.chol.solve_into(&ws.bs, &mut ws.x);
        // Explicit residual r = y − A_S·x_S, accumulated atom-by-atom over
        // contiguous rows of `Aᵀ`. Recomputing from `y` (rather than
        // maintaining ‖r‖² algebraically) avoids the catastrophic
        // cancellation that would otherwise flip the stopping test near the
        // discrepancy threshold.
        ws.residual.iter_mut().for_each(|v| *v = 0.0);
        for (&sj, &xs) in ws.support.iter().zip(&ws.x) {
            for (rv, &av) in ws.residual.iter_mut().zip(at.row(sj)) {
                *rv += av * xs;
            }
        }
        for (rv, &yi) in ws.residual.iter_mut().zip(y) {
            *rv = yi - *rv;
        }
        if norm2(&ws.residual) <= cfg.residual_tol * y_norm {
            break;
        }
    }
    for (&j, &v) in ws.support.iter().zip(&ws.x) {
        s[j] = v;
    }
    efficsense_dsp::approx::debug_assert_all_finite(&s, "omp_fast coefficients");
    s
}

/// Sparse synthesis `x̂ = Ψ·ŝ` against the transposed operator `Ψᵀ`:
/// accumulates one contiguous-row axpy per *nonzero* coefficient, in
/// ascending atom order — O(k·n) for a k-sparse decode instead of the dense
/// O(n²) transform.
fn synthesize_sparse(synth_t: &Matrix, s: &[f64]) -> Vec<f64> {
    let mut x = vec![0.0; synth_t.cols()];
    for (j, &sj) in s.iter().enumerate() {
        if is_zero(sj) {
            continue;
        }
        for (xv, &pv) in x.iter_mut().zip(synth_t.row(j)) {
            *xv += pv * sj;
        }
    }
    x
}

/// Single-frame fast reconstruction against precomputed
/// [`DictionaryArtifacts`]: `x̂ = Ψ·OMP_fast(A, y)`. The sparsifying basis
/// is the one baked into the artifacts (`synth_t`).
///
/// # Panics
///
/// Panics on the same dimension mismatches as [`omp_fast`].
pub fn reconstruct_fast(
    art: &DictionaryArtifacts,
    y: &[f64],
    cfg: &OmpConfig,
    ws: &mut OmpScratch,
) -> Vec<f64> {
    let s = omp_fast_t(
        &art.dict_t,
        &art.gram,
        &art.col_norms,
        art.ridge,
        y,
        cfg,
        ws,
    );
    synthesize_sparse(&art.synth_t, &s)
}

/// Decodes every frame of a point in one call.
///
/// `Aᵀy` for all frames is computed as a single cache-blocked pass over the
/// dictionary, then frames fan out across a bounded `std::thread::scope`
/// pool (`threads <= 1` decodes inline on the caller). Work is claimed from
/// an atomic counter and results are collected with their frame index, then
/// sorted — so the output is **bit-identical for every thread count**.
///
/// # Panics
///
/// Panics if `frames.len() != cfgs.len()` or any frame's length differs
/// from the dictionary row count.
pub fn reconstruct_batch(
    art: &DictionaryArtifacts,
    frames: &[Vec<f64>],
    cfgs: &[OmpConfig],
    threads: usize,
) -> Vec<Vec<f64>> {
    assert_eq!(frames.len(), cfgs.len(), "one decoder config per frame");
    if frames.is_empty() {
        return Vec::new();
    }
    let _batch_span = efficsense_obs::span!("recon.batch");
    let at = &art.dict_t;
    let m = at.cols();
    let n = at.rows();
    for f in frames {
        assert_eq!(f.len(), m, "measurement length must equal row count");
    }
    // One blocked AᵀY pass: row r of `bmat` is Aᵀ·frames[r]. The outer loop
    // streams each atom (row of `Aᵀ`) once for *all* frames; each entry is
    // the same contiguous `dot` the single-frame path computes, so the two
    // entry points agree bit for bit.
    let mut bmat = Matrix::zeros(frames.len(), n);
    {
        let _bmat_span = efficsense_obs::span!("recon.bmat");
        for c in 0..n {
            let atom = at.row(c);
            for (r, frame) in frames.iter().enumerate() {
                bmat[(r, c)] = dot(atom, frame);
            }
        }
    }
    let decode = |r: usize, ws: &mut OmpScratch| -> Vec<f64> {
        let _chol_span = efficsense_obs::span!("recon.cholup");
        ws.b.clear();
        ws.b.extend_from_slice(bmat.row(r));
        let s = omp_fast_core(
            at,
            &art.gram,
            &art.col_norms,
            art.ridge,
            &frames[r],
            &cfgs[r],
            ws,
        );
        synthesize_sparse(&art.synth_t, &s)
    };
    if threads <= 1 {
        let mut ws = OmpScratch::new();
        return (0..frames.len()).map(|r| decode(r, &mut ws)).collect();
    }
    let workers = threads.min(frames.len());
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Vec<f64>)> = Vec::with_capacity(frames.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = OmpScratch::new();
                    let mut local: Vec<(usize, Vec<f64>)> = Vec::new();
                    loop {
                        let r = next.fetch_add(1, Ordering::Relaxed);
                        if r >= frames.len() {
                            break;
                        }
                        local.push((r, decode(r, &mut ws)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(mut local) => indexed.append(&mut local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    indexed.sort_by_key(|(r, _)| *r);
    indexed.into_iter().map(|(_, xh)| xh).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::Basis;
    use crate::matrix::SensingMatrix;
    use crate::recon::omp_with_col_norms;

    fn dense_problem(n: usize, m: usize, k: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let a = SensingMatrix::gaussian(m, n, seed).to_dense();
        let mut s = vec![0.0; n];
        for i in 0..k {
            s[(i * 31 + 7) % n] = if i % 2 == 0 { 1.0 } else { -0.6 };
        }
        let x = Basis::Dct.synthesize(&s);
        let y = a.matvec(&x);
        (a, y)
    }

    #[test]
    fn fast_path_matches_reference_on_one_problem() {
        let (a, y) = dense_problem(64, 32, 4, 9);
        let col_norms: Vec<f64> = a.col_norms().into_iter().map(|v| v.max(1e-300)).collect();
        let gram = a.gram();
        let ridge = 1e-12 * (gram.frobenius_norm() / gram.rows() as f64).max(1e-300);
        let cfg = OmpConfig::with_sparsity(6);
        let reference = omp_with_col_norms(&a, &col_norms, &y, &cfg);
        let mut ws = OmpScratch::new();
        let fast = omp_fast(&a, &gram, &col_norms, ridge, &y, &cfg, &mut ws);
        for (r, f) in reference.iter().zip(&fast) {
            assert!((r - f).abs() < 1e-9, "coeff mismatch: {r} vs {f}");
        }
    }

    #[test]
    fn zero_measurement_decodes_to_zero() {
        let (a, _) = dense_problem(32, 16, 3, 4);
        let col_norms: Vec<f64> = a.col_norms().into_iter().map(|v| v.max(1e-300)).collect();
        let gram = a.gram();
        let mut ws = OmpScratch::new();
        let y = vec![0.0; a.rows()];
        let s = omp_fast(
            &a,
            &gram,
            &col_norms,
            1e-12,
            &y,
            &OmpConfig::with_sparsity(4),
            &mut ws,
        );
        assert!(s.iter().all(|v| is_zero(*v)));
    }

    #[test]
    #[should_panic(expected = "one decoder config per frame")]
    fn batch_rejects_mismatched_config_count() {
        let (a, y) = dense_problem(32, 16, 3, 4);
        let art = DictionaryArtifacts::from_dictionary(a, Basis::Dct, 1.0);
        let _ = reconstruct_batch(&art, &[y], &[], 1);
    }

    #[test]
    fn scratch_is_reusable_across_dimension_changes() {
        let mut ws = OmpScratch::new();
        for &(n, m, k, seed) in &[
            (48usize, 24usize, 5usize, 2u64),
            (96, 40, 9, 3),
            (32, 16, 4, 5),
        ] {
            let (a, y) = dense_problem(n, m, 3, seed);
            let col_norms: Vec<f64> = a.col_norms().into_iter().map(|v| v.max(1e-300)).collect();
            let gram = a.gram();
            let ridge = 1e-12 * (gram.frobenius_norm() / gram.rows() as f64).max(1e-300);
            let cfg = OmpConfig::with_sparsity(k);
            let reference = omp_with_col_norms(&a, &col_norms, &y, &cfg);
            let fast = omp_fast(&a, &gram, &col_norms, ridge, &y, &cfg, &mut ws);
            for (r, f) in reference.iter().zip(&fast) {
                assert!((r - f).abs() < 1e-9);
            }
        }
    }
}
