//! Sparsifying bases for reconstruction.
//!
//! EEG frames are compressible in frequency-like bases; the decoder models
//! `x = Ψ·s` with `s` sparse. Provided: orthonormal DCT-II, periodic Haar
//! and Daubechies-4 wavelets, and the identity (for already-sparse signals).

use crate::linalg::Matrix;

/// An orthonormal sparsifying basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Basis {
    /// Identity basis (signal itself is sparse).
    Identity,
    /// Orthonormal DCT-II — the default for EEG.
    #[default]
    Dct,
    /// Periodic Haar wavelet (maximum depth allowed by the length).
    Haar,
    /// Periodic Daubechies-4 wavelet (maximum depth allowed by the length).
    Db4,
}

impl Basis {
    /// Analysis transform `s = Ψᵀ·x` (coefficients of `x` in the basis).
    pub fn analyze(self, x: &[f64]) -> Vec<f64> {
        match self {
            Basis::Identity => x.to_vec(),
            Basis::Dct => dct_ii(x),
            Basis::Haar => dwt_analyze(x, &HAAR_H),
            Basis::Db4 => dwt_analyze(x, &DB4_H),
        }
    }

    /// Synthesis transform `x = Ψ·s`.
    pub fn synthesize(self, s: &[f64]) -> Vec<f64> {
        match self {
            Basis::Identity => s.to_vec(),
            Basis::Dct => dct_iii(s),
            Basis::Haar => dwt_synthesize(s, &HAAR_H),
            Basis::Db4 => dwt_synthesize(s, &DB4_H),
        }
    }

    /// Dense synthesis matrix `Ψ` (columns are atoms) of size `n × n`.
    pub fn matrix(self, n: usize) -> Matrix {
        match self {
            Basis::Identity => Matrix::identity(n),
            // DCT entries in closed form — much cheaper than synthesising
            // n unit vectors (this runs once per design point in sweeps).
            Basis::Dct => {
                let nf = n as f64;
                let w0 = (1.0 / nf).sqrt();
                let wk = (2.0 / nf).sqrt();
                let mut psi = Matrix::zeros(n, n);
                for i in 0..n {
                    for k in 0..n {
                        let w = if k == 0 { w0 } else { wk };
                        psi[(i, k)] = w
                            * (std::f64::consts::PI * (2.0 * i as f64 + 1.0) * k as f64
                                / (2.0 * nf))
                                .cos();
                    }
                }
                psi
            }
            _ => {
                let mut psi = Matrix::zeros(n, n);
                let mut e = vec![0.0; n];
                for k in 0..n {
                    e[k] = 1.0;
                    let atom = self.synthesize(&e);
                    for (r, &v) in atom.iter().enumerate() {
                        psi[(r, k)] = v;
                    }
                    e[k] = 0.0;
                }
                psi
            }
        }
    }
}

impl std::fmt::Display for Basis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Basis::Identity => "identity",
            Basis::Dct => "dct",
            Basis::Haar => "haar",
            Basis::Db4 => "db4",
        };
        f.write_str(s)
    }
}

/// Orthonormal DCT-II (analysis).
fn dct_ii(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(n > 0, "cannot transform an empty signal");
    let nf = n as f64;
    (0..n)
        .map(|k| {
            let w = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            let sum: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    v * (std::f64::consts::PI * (2.0 * i as f64 + 1.0) * k as f64 / (2.0 * nf))
                        .cos()
                })
                .sum();
            w * sum
        })
        .collect()
}

/// Orthonormal DCT-III (synthesis; inverse of [`dct_ii`]).
fn dct_iii(s: &[f64]) -> Vec<f64> {
    let n = s.len();
    assert!(n > 0, "cannot transform an empty signal");
    let nf = n as f64;
    (0..n)
        .map(|i| {
            (0..n)
                .map(|k| {
                    let w = if k == 0 {
                        (1.0 / nf).sqrt()
                    } else {
                        (2.0 / nf).sqrt()
                    };
                    w * s[k]
                        * (std::f64::consts::PI * (2.0 * i as f64 + 1.0) * k as f64 / (2.0 * nf))
                            .cos()
                })
                .sum()
        })
        .collect()
}

/// Haar scaling filter.
const HAAR_H: [f64; 2] = [
    std::f64::consts::FRAC_1_SQRT_2,
    std::f64::consts::FRAC_1_SQRT_2,
];

/// Daubechies-4 scaling filter (orthonormal).
const DB4_H: [f64; 4] = [
    0.482_962_913_144_690_3,   // (1+√3)/(4√2)
    0.836_516_303_737_807_9,   // (3+√3)/(4√2)
    0.224_143_868_042_013_4,   // (3−√3)/(4√2)
    -0.129_409_522_551_260_37, // (1−√3)/(4√2)
];

fn wavelet_g<const L: usize>(h: &[f64; L]) -> [f64; L] {
    // Quadrature mirror: g[i] = (−1)^i · h[L−1−i].
    let mut g = [0.0; L];
    for (i, gi) in g.iter_mut().enumerate() {
        *gi = if i % 2 == 0 {
            h[L - 1 - i]
        } else {
            -h[L - 1 - i]
        };
    }
    g
}

/// One periodic analysis level: returns (approximation, detail).
fn dwt_level<const L: usize>(x: &[f64], h: &[f64; L]) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    debug_assert!(n.is_multiple_of(2));
    let g = wavelet_g(h);
    let half = n / 2;
    let mut a = vec![0.0; half];
    let mut d = vec![0.0; half];
    for k in 0..half {
        let mut sa = 0.0;
        let mut sd = 0.0;
        for i in 0..L {
            let idx = (2 * k + i) % n;
            sa += h[i] * x[idx];
            sd += g[i] * x[idx];
        }
        a[k] = sa;
        d[k] = sd;
    }
    (a, d)
}

/// One periodic synthesis level from (approximation, detail).
fn idwt_level<const L: usize>(a: &[f64], d: &[f64], h: &[f64; L]) -> Vec<f64> {
    let half = a.len();
    let n = half * 2;
    let g = wavelet_g(h);
    let mut x = vec![0.0; n];
    // Transpose of the analysis operator (orthonormal → inverse).
    for k in 0..half {
        for i in 0..L {
            let idx = (2 * k + i) % n;
            x[idx] += h[i] * a[k] + g[i] * d[k];
        }
    }
    x
}

fn max_levels(n: usize) -> usize {
    let mut levels = 0;
    let mut m = n;
    while m.is_multiple_of(2) && m >= 4 {
        m /= 2;
        levels += 1;
    }
    levels
}

/// Full-depth periodic DWT analysis. Coefficient layout:
/// `[a_deepest | d_deepest | d_(deepest-1) | … | d_1]`.
fn dwt_analyze<const L: usize>(x: &[f64], h: &[f64; L]) -> Vec<f64> {
    let n = x.len();
    assert!(n > 0, "cannot transform an empty signal");
    let levels = max_levels(n);
    if levels == 0 {
        return x.to_vec();
    }
    let mut details: Vec<Vec<f64>> = Vec::new();
    let mut a = x.to_vec();
    for _ in 0..levels {
        let (na, d) = dwt_level(&a, h);
        details.push(d);
        a = na;
    }
    let mut out = a;
    for d in details.into_iter().rev() {
        // Deepest detail first (smallest), shallowest last.
        out.extend(d);
    }
    // Reorder: we want [a | d_deep ... d_shallow]; the loop above appended
    // d_deep last-in-first-out, giving exactly that order.
    out
}

/// Inverse of [`dwt_analyze`].
fn dwt_synthesize<const L: usize>(s: &[f64], h: &[f64; L]) -> Vec<f64> {
    let n = s.len();
    assert!(n > 0, "cannot transform an empty signal");
    let levels = max_levels(n);
    if levels == 0 {
        return s.to_vec();
    }
    let base = n >> levels;
    let mut a = s[..base].to_vec();
    let mut offset = base;
    for _ in 0..levels {
        let d = &s[offset..offset + a.len()];
        a = idwt_level(&a, d, h);
        offset += a.len() / 2;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dot;

    fn roundtrip(basis: Basis, n: usize) {
        let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let s = basis.analyze(&x);
        let y = basis.synthesize(&s);
        for (a, b) in x.iter().zip(&y) {
            assert!(
                (a - b).abs() < 1e-10,
                "{basis}: roundtrip error {}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn roundtrips_power_of_two() {
        for basis in [Basis::Identity, Basis::Dct, Basis::Haar, Basis::Db4] {
            roundtrip(basis, 64);
        }
    }

    #[test]
    fn roundtrips_paper_frame_length() {
        // 384 = 2^7 · 3: DCT is exact, wavelets stop at depth 7.
        for basis in [Basis::Dct, Basis::Haar, Basis::Db4] {
            roundtrip(basis, 384);
        }
    }

    #[test]
    fn transforms_preserve_energy() {
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let ex = dot(&x, &x);
        for basis in [Basis::Dct, Basis::Haar, Basis::Db4] {
            let s = basis.analyze(&x);
            let es = dot(&s, &s);
            assert!((ex - es).abs() < 1e-9 * ex, "{basis}: energy {es} vs {ex}");
        }
    }

    #[test]
    fn dct_of_constant_is_single_coefficient() {
        let x = vec![1.0; 32];
        let s = Basis::Dct.analyze(&x);
        assert!((s[0] - 32f64.sqrt()).abs() < 1e-10);
        assert!(s[1..].iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn dct_sparsifies_cosine() {
        let n = 128;
        // A cosine aligned with DCT atom k has one dominant coefficient.
        let k0 = 9usize;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (std::f64::consts::PI * (2.0 * i as f64 + 1.0) * k0 as f64 / (2.0 * n as f64)).cos()
            })
            .collect();
        let s = Basis::Dct.analyze(&x);
        let peak = s[k0].abs();
        for (k, v) in s.iter().enumerate() {
            if k != k0 {
                assert!(v.abs() < 1e-9 * peak.max(1.0), "leakage at {k}");
            }
        }
    }

    #[test]
    fn haar_of_constant_concentrates_in_approximation() {
        let x = vec![2.0; 64];
        let s = Basis::Haar.analyze(&x);
        // All details are zero; approximation carries everything.
        let approx_energy: f64 = s[..4].iter().map(|v| v * v).sum();
        let total: f64 = s.iter().map(|v| v * v).sum();
        assert!((approx_energy - total).abs() < 1e-12 * total);
    }

    #[test]
    fn db4_kills_linear_ramps_in_details() {
        // Db4 has two vanishing moments: details of a linear ramp vanish
        // (away from the periodic wrap-around).
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let (_, d) = dwt_level(&x, &DB4_H);
        // Interior detail coefficients are ~0; boundary ones feel the wrap.
        for &v in &d[1..d.len() - 2] {
            assert!(v.abs() < 1e-9, "detail {v}");
        }
    }

    #[test]
    fn basis_matrix_is_orthonormal() {
        for basis in [Basis::Dct, Basis::Haar, Basis::Db4] {
            let n = 32;
            let psi = basis.matrix(n);
            let gram = psi.transpose().matmul(&psi);
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (gram[(i, j)] - expect).abs() < 1e-9,
                        "{basis}: gram[{i},{j}] = {}",
                        gram[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_matches_synthesize() {
        let basis = Basis::Dct;
        let n = 24;
        let psi = basis.matrix(n);
        let s: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin()).collect();
        let direct = basis.synthesize(&s);
        let via_matrix = psi.matvec(&s);
        for (a, b) in direct.iter().zip(&via_matrix) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn odd_length_falls_back_to_identity_for_wavelets() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(Basis::Haar.analyze(&x), x);
        assert_eq!(Basis::Haar.synthesize(&x), x);
    }

    #[test]
    fn display_names() {
        assert_eq!(Basis::Dct.to_string(), "dct");
        assert_eq!(Basis::Db4.to_string(), "db4");
    }
}
