//! Property-style tests for the compressive-sensing substrate, run as seeded
//! Monte-Carlo loops.

use efficsense_cs::basis::Basis;
use efficsense_cs::charge_sharing::{effective_matrix_decayed, share_gains};
use efficsense_cs::linalg::{cholesky_solve, dot, least_squares, norm2, Matrix};
use efficsense_cs::matrix::SensingMatrix;
use efficsense_cs::recon::{omp, support_size, OmpConfig};
use efficsense_rng::Rng64;

const CASES: u64 = 96;

fn random_vec(g: &mut Rng64, lo: f64, hi: f64, len: usize) -> Vec<f64> {
    (0..len).map(|_| g.uniform(lo, hi)).collect()
}

#[test]
fn bases_roundtrip_any_signal() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xBA5E + case);
        let len = g.range(4, 128);
        let x = random_vec(&mut g, -5.0, 5.0, len);
        for basis in [Basis::Identity, Basis::Dct, Basis::Haar, Basis::Db4] {
            let s = basis.analyze(&x);
            let y = basis.synthesize(&s);
            assert_eq!(y.len(), x.len(), "case {case}");
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-8, "case {case}: {basis} roundtrip");
            }
        }
    }
}

#[test]
fn bases_preserve_energy() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xE6E0 + case);
        let len = g.range(8, 96);
        let x = random_vec(&mut g, -5.0, 5.0, len);
        let ex = dot(&x, &x);
        for basis in [Basis::Dct, Basis::Haar, Basis::Db4] {
            let s = basis.analyze(&x);
            let es = dot(&s, &s);
            assert!((ex - es).abs() < 1e-7 * ex.max(1.0), "case {case}: {basis}");
        }
    }
}

#[test]
fn cholesky_solves_random_spd_systems() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xC401 + case);
        let seed_vals = random_vec(&mut g, -2.0, 2.0, 9);
        let b = random_vec(&mut g, -5.0, 5.0, 3);
        // Build SPD A = G·Gᵀ + I.
        let gm = Matrix::from_vec(3, 3, seed_vals);
        let mut a = gm.matmul(&gm.transpose());
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let x = cholesky_solve(&a, &b).expect("SPD by construction");
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8, "case {case}");
        }
    }
}

#[test]
fn least_squares_residual_is_orthogonal() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x1500 + case);
        let data = random_vec(&mut g, -3.0, 3.0, 12);
        let b = random_vec(&mut g, -5.0, 5.0, 6);
        let a = Matrix::from_vec(6, 2, data);
        if a.frobenius_norm() <= 0.5 {
            continue;
        }
        if let Ok(x) = least_squares(&a, &b) {
            let approx = a.matvec(&x);
            let r: Vec<f64> = b.iter().zip(&approx).map(|(u, v)| u - v).collect();
            // Normal equations: Aᵀr ≈ 0.
            let atr = a.matvec_t(&r);
            for v in atr {
                assert!(v.abs() < 1e-6, "case {case}: residual not orthogonal: {v}");
            }
        }
    }
}

#[test]
fn omp_respects_sparsity_budget() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x09B1 + case);
        let m = g.range(8, 24);
        let k = g.range(1, 8);
        let seed = g.next_u64();
        let n = m * 2;
        let a = SensingMatrix::gaussian(m, n, seed).to_dense();
        let y: Vec<f64> = (0..m).map(|i| ((i * 13 + 1) as f64 * 0.37).sin()).collect();
        let s = omp(
            &a,
            &y,
            &OmpConfig {
                sparsity: k,
                residual_tol: 0.0,
            },
        );
        assert!(support_size(&s) <= k, "case {case}");
    }
}

#[test]
fn omp_never_increases_residual_with_budget() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x09B2 + case);
        let m = g.range(10, 20);
        let seed = g.next_u64();
        let n = m * 2;
        let a = SensingMatrix::gaussian(m, n, seed).to_dense();
        let y: Vec<f64> = (0..m).map(|i| ((i * 7 + 3) as f64 * 0.53).cos()).collect();
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let s = omp(
                &a,
                &y,
                &OmpConfig {
                    sparsity: k,
                    residual_tol: 0.0,
                },
            );
            let approx = a.matvec(&s);
            let r: Vec<f64> = y.iter().zip(&approx).map(|(u, v)| u - v).collect();
            let rn = norm2(&r);
            assert!(
                rn <= last + 1e-9,
                "case {case}: residual grew with budget k={k}"
            );
            last = rn;
        }
    }
}

#[test]
fn decayed_effective_matrix_entries_bounded() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xDECA + case);
        let m = g.range(2, 10);
        let n = g.range(16, 48);
        let decay = g.uniform(0.5, 1.0);
        let seed = g.next_u64();
        let phi = SensingMatrix::srbm(m, n, 2.min(m), seed);
        let eff = effective_matrix_decayed(&phi, 0.1e-12, 0.5e-12, decay);
        let (a, _) = share_gains(0.1e-12, 0.5e-12);
        for r in 0..m {
            for c in 0..n {
                let w = eff[(r, c)];
                assert!(
                    w >= 0.0 && w <= a + 1e-15,
                    "case {case}: weight {w} out of range"
                );
            }
        }
    }
}

#[test]
fn gaussian_matrix_rows_cols_match() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x6A05 + case);
        let m = g.range(1, 20);
        let n = g.range(1, 30);
        let seed = g.next_u64();
        let gm = SensingMatrix::gaussian(m, n, seed);
        assert_eq!((gm.m(), gm.n()), (m, n), "case {case}");
        let d = gm.to_dense();
        assert_eq!((d.rows(), d.cols()), (m, n), "case {case}");
    }
}

#[test]
fn spectral_norm_bounds_frobenius() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x59EC + case);
        let data = random_vec(&mut g, -2.0, 2.0, 24);
        let a = Matrix::from_vec(4, 6, data);
        if a.frobenius_norm() <= 1e-6 {
            continue;
        }
        let s = a.spectral_norm_est(60);
        // ||A||₂ ≤ ||A||_F ≤ √rank·||A||₂
        assert!(s <= a.frobenius_norm() * (1.0 + 1e-6), "case {case}");
        assert!(a.frobenius_norm() <= s * 2.0 + 1e-6, "case {case}");
    }
}
