//! Property-based tests for the compressive-sensing substrate.

use efficsense_cs::basis::Basis;
use efficsense_cs::charge_sharing::{effective_matrix_decayed, share_gains};
use efficsense_cs::linalg::{cholesky_solve, dot, least_squares, norm2, Matrix};
use efficsense_cs::matrix::SensingMatrix;
use efficsense_cs::recon::{omp, support_size, OmpConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bases_roundtrip_any_signal(
        x in proptest::collection::vec(-5.0f64..5.0, 4..128)
    ) {
        for basis in [Basis::Identity, Basis::Dct, Basis::Haar, Basis::Db4] {
            let s = basis.analyze(&x);
            let y = basis.synthesize(&s);
            prop_assert_eq!(y.len(), x.len());
            for (a, b) in x.iter().zip(&y) {
                prop_assert!((a - b).abs() < 1e-8, "{} roundtrip", basis);
            }
        }
    }

    #[test]
    fn bases_preserve_energy(
        x in proptest::collection::vec(-5.0f64..5.0, 8..96)
    ) {
        let ex = dot(&x, &x);
        for basis in [Basis::Dct, Basis::Haar, Basis::Db4] {
            let s = basis.analyze(&x);
            let es = dot(&s, &s);
            prop_assert!((ex - es).abs() < 1e-7 * ex.max(1.0), "{basis}");
        }
    }

    #[test]
    fn cholesky_solves_random_spd_systems(
        seed_vals in proptest::collection::vec(-2.0f64..2.0, 9),
        b in proptest::collection::vec(-5.0f64..5.0, 3),
    ) {
        // Build SPD A = G·Gᵀ + I.
        let g = Matrix::from_vec(3, 3, seed_vals);
        let mut a = g.matmul(&g.transpose());
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let x = cholesky_solve(&a, &b).expect("SPD by construction");
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal(
        data in proptest::collection::vec(-3.0f64..3.0, 12),
        b in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        let a = Matrix::from_vec(6, 2, data);
        prop_assume!(a.frobenius_norm() > 0.5);
        if let Ok(x) = least_squares(&a, &b) {
            let approx = a.matvec(&x);
            let r: Vec<f64> = b.iter().zip(&approx).map(|(u, v)| u - v).collect();
            // Normal equations: Aᵀr ≈ 0.
            let atr = a.matvec_t(&r);
            for v in atr {
                prop_assert!(v.abs() < 1e-6, "residual not orthogonal: {v}");
            }
        }
    }

    #[test]
    fn omp_respects_sparsity_budget(
        m in 8usize..24,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n = m * 2;
        let a = SensingMatrix::gaussian(m, n, seed).to_dense();
        let y: Vec<f64> = (0..m).map(|i| ((i * 13 + 1) as f64 * 0.37).sin()).collect();
        let s = omp(&a, &y, &OmpConfig { sparsity: k, residual_tol: 0.0 });
        prop_assert!(support_size(&s) <= k);
    }

    #[test]
    fn omp_never_increases_residual_with_budget(
        m in 10usize..20,
        seed in any::<u64>(),
    ) {
        let n = m * 2;
        let a = SensingMatrix::gaussian(m, n, seed).to_dense();
        let y: Vec<f64> = (0..m).map(|i| ((i * 7 + 3) as f64 * 0.53).cos()).collect();
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let s = omp(&a, &y, &OmpConfig { sparsity: k, residual_tol: 0.0 });
            let approx = a.matvec(&s);
            let r: Vec<f64> = y.iter().zip(&approx).map(|(u, v)| u - v).collect();
            let rn = norm2(&r);
            prop_assert!(rn <= last + 1e-9, "residual grew with budget k={k}");
            last = rn;
        }
    }

    #[test]
    fn decayed_effective_matrix_entries_bounded(
        m in 2usize..10,
        n in 16usize..48,
        decay in 0.5f64..1.0,
        seed in any::<u64>(),
    ) {
        let phi = SensingMatrix::srbm(m, n, 2.min(m), seed);
        let eff = effective_matrix_decayed(&phi, 0.1e-12, 0.5e-12, decay);
        let (a, _) = share_gains(0.1e-12, 0.5e-12);
        for r in 0..m {
            for c in 0..n {
                let w = eff[(r, c)];
                prop_assert!(w >= 0.0 && w <= a + 1e-15, "weight {w} out of range");
            }
        }
    }

    #[test]
    fn gaussian_matrix_rows_cols_match(m in 1usize..20, n in 1usize..30, seed in any::<u64>()) {
        let g = SensingMatrix::gaussian(m, n, seed);
        prop_assert_eq!((g.m(), g.n()), (m, n));
        let d = g.to_dense();
        prop_assert_eq!((d.rows(), d.cols()), (m, n));
    }

    #[test]
    fn spectral_norm_bounds_frobenius(
        data in proptest::collection::vec(-2.0f64..2.0, 24),
    ) {
        let a = Matrix::from_vec(4, 6, data);
        prop_assume!(a.frobenius_norm() > 1e-6);
        let s = a.spectral_norm_est(60);
        // ||A||₂ ≤ ||A||_F ≤ √rank·||A||₂
        prop_assert!(s <= a.frobenius_norm() * (1.0 + 1e-6));
        prop_assert!(a.frobenius_norm() <= s * 2.0 + 1e-6);
    }
}
