//! Differential harness pinning the fast Gram/incremental-Cholesky OMP path
//! to the retained reference implementation: identical support selection and
//! coefficients within 1e-9 over a population of seeded Gaussian and SRBM
//! problems, identical degenerate-pivot rejection, and bit-identical batched
//! decoding across thread counts.

use efficsense_cs::basis::Basis;
use efficsense_cs::decode::{omp_fast, reconstruct_batch, reconstruct_fast, OmpScratch};
use efficsense_cs::linalg::{cholesky_solve, GrowingCholesky, Matrix};
use efficsense_cs::matrix::SensingMatrix;
use efficsense_cs::memo::DictionaryArtifacts;
use efficsense_cs::recon::{omp_with_col_norms, OmpConfig};
use efficsense_dsp::approx::is_zero;

/// SplitMix64 avalanche: deterministic per-seed pseudo-randomness without
/// pulling an RNG dependency into the harness.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1).
fn unit(seed: u64) -> f64 {
    (mix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// One seeded problem: a k-sparse DCT-domain signal measured by `a`, with a
/// small deterministic perturbation so the discrepancy stopping rule gets
/// exercised on some seeds.
fn problem(a: &Matrix, k: usize, seed: u64) -> Vec<f64> {
    let n = a.cols();
    let mut s = vec![0.0; n];
    for i in 0..k {
        let j = (mix(seed ^ (i as u64 + 1)) as usize) % n;
        s[j] = 2.0 * unit(seed ^ 0xC0FFEE ^ i as u64) - 1.0 + 0.1;
    }
    let x = Basis::Dct.synthesize(&s);
    let mut y = a.matvec(&x);
    for (i, v) in y.iter_mut().enumerate() {
        *v += 1e-6 * (2.0 * unit(seed ^ 0xA015E ^ (i as u64) << 16) - 1.0);
    }
    y
}

fn support_of(coeffs: &[f64]) -> Vec<usize> {
    coeffs
        .iter()
        .enumerate()
        .filter(|(_, v)| !is_zero(**v))
        .map(|(j, _)| j)
        .collect()
}

#[test]
fn fast_path_matches_reference_over_seeded_problem_population() {
    let dims = [(24usize, 64usize), (32, 96), (40, 96)];
    let mut ws = OmpScratch::new();
    let mut checked = 0usize;
    for seed in 0..60u64 {
        let (m, n) = dims[(seed % 3) as usize];
        let k = 3 + (seed % 5) as usize;
        for gaussian in [true, false] {
            let a = if gaussian {
                SensingMatrix::gaussian(m, n, seed + 1).to_dense()
            } else {
                SensingMatrix::srbm(m, n, 2, seed + 1).to_dense()
            };
            let y = problem(&a, k, seed ^ if gaussian { 0 } else { 0xFACE });
            let col_norms: Vec<f64> = a.col_norms().into_iter().map(|v| v.max(1e-300)).collect();
            let gram = a.gram();
            let ridge = 1e-12 * (gram.frobenius_norm() / gram.rows() as f64).max(1e-300);
            let cfg = OmpConfig {
                sparsity: k + 2,
                residual_tol: if seed % 2 == 0 { 1e-6 } else { 1e-4 },
            };
            let reference = omp_with_col_norms(&a, &col_norms, &y, &cfg);
            let fast = omp_fast(&a, &gram, &col_norms, ridge, &y, &cfg, &mut ws);
            assert_eq!(
                support_of(&reference),
                support_of(&fast),
                "support mismatch on seed {seed} (gaussian={gaussian})"
            );
            for (j, (r, f)) in reference.iter().zip(&fast).enumerate() {
                assert!(
                    (r - f).abs() < 1e-9,
                    "coeff {j} mismatch on seed {seed} (gaussian={gaussian}): {r} vs {f}"
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 100, "population too small: {checked}");
}

#[test]
fn growing_cholesky_rejects_degenerate_pivot_exactly_like_reference() {
    // Gram of two *identical* atoms: the second pivot is exactly zero in
    // both factorisations (they share the same divisions and products), so
    // the rejection point and message must agree bit for bit.
    let u = [1.5, -2.0, 0.5, 3.0];
    let g00: f64 = u.iter().map(|v| v * v).sum();
    let mut g = Matrix::zeros(2, 2);
    g[(0, 0)] = g00;
    g[(0, 1)] = g00;
    g[(1, 0)] = g00;
    g[(1, 1)] = g00;
    let reference = cholesky_solve(&g, &[1.0, 1.0]);
    let mut grown = GrowingCholesky::new(2, 0.0);
    grown
        .try_append(&[], g00)
        .expect("first atom must be accepted");
    let incremental = grown.try_append(&[g00], g00);
    let ref_err = reference.expect_err("duplicate atoms must be singular");
    let inc_err = incremental.expect_err("duplicate atoms must be singular");
    assert_eq!(ref_err.to_string(), inc_err.to_string());
    assert!(ref_err.to_string().contains("non-positive pivot at 1"));
    // The factor must be untouched by the failed append.
    assert_eq!(grown.len(), 1);
    let mut x = Vec::new();
    grown.solve_into(&[g00], &mut x);
    assert!((x[0] - 1.0).abs() < 1e-12);
}

#[test]
fn degenerate_dictionary_decodes_to_zero_on_both_paths() {
    // Columns scaled to ~1e-155 make every Gram entry denormal (~1e-310):
    // the ridge underflows past the 1e-300 pivot floor, so the very first
    // refit fails on both paths and both decoders return all-zeros via
    // their degenerate-atom exits (reference: failed `least_squares`; fast:
    // failed Cholesky append).
    let m = 16;
    let n = 32;
    let mut a = SensingMatrix::gaussian(m, n, 77).to_dense();
    for r in 0..m {
        for c in 0..n {
            a[(r, c)] *= 1e-155;
        }
    }
    let y = problem(&a, 3, 99);
    let col_norms: Vec<f64> = a.col_norms().into_iter().map(|v| v.max(1e-300)).collect();
    let gram = a.gram();
    let ridge = 1e-12 * (gram.frobenius_norm() / gram.rows() as f64).max(1e-300);
    let cfg = OmpConfig::with_sparsity(4);
    let reference = omp_with_col_norms(&a, &col_norms, &y, &cfg);
    let mut ws = OmpScratch::new();
    let fast = omp_fast(&a, &gram, &col_norms, ridge, &y, &cfg, &mut ws);
    assert!(reference.iter().all(|v| is_zero(*v)), "reference must bail");
    assert_eq!(reference, fast);
}

#[test]
fn batch_decode_is_bit_identical_across_thread_counts() {
    let m = 32;
    let n = 96;
    let phi = SensingMatrix::srbm(m, n, 2, 0xBA7C4).to_dense();
    let dict = phi.matmul(&Basis::Dct.matrix(n));
    let art = DictionaryArtifacts::from_dictionary(dict, Basis::Dct, 1.0);
    let frames: Vec<Vec<f64>> = (0..12u64)
        .map(|f| {
            let mut s = vec![0.0; n];
            for i in 0..4 {
                s[(mix(f ^ (i << 8)) as usize) % n] = unit(f ^ i) + 0.2;
            }
            let x = Basis::Dct.synthesize(&s);
            art.dictionary.matvec(&x)[..m].to_vec()
        })
        .collect();
    let cfgs: Vec<OmpConfig> = (0..frames.len())
        .map(|i| OmpConfig {
            sparsity: 6,
            residual_tol: if i % 2 == 0 { 1e-6 } else { 1e-3 },
        })
        .collect();
    let one = reconstruct_batch(&art, &frames, &cfgs, 1);
    let two = reconstruct_batch(&art, &frames, &cfgs, 2);
    let four = reconstruct_batch(&art, &frames, &cfgs, 4);
    assert_eq!(one, two, "1 vs 2 decode threads must agree bit for bit");
    assert_eq!(two, four, "2 vs 4 decode threads must agree bit for bit");
    // The pooled batch must also agree with the single-frame fast entry
    // point (same `Aᵀy` accumulation order by construction).
    let mut ws = OmpScratch::new();
    for (r, frame) in frames.iter().enumerate() {
        let single = reconstruct_fast(&art, frame, &cfgs[r], &mut ws);
        assert_eq!(one[r], single, "batch vs single mismatch on frame {r}");
    }
}
