//! Shared helpers for the EffiCSense benchmark harness.
//!
//! Every paper table/figure has a regeneration binary in `src/bin/`; this
//! library provides the common workload scaling and output plumbing.
//!
//! Workload scale is controlled by `EFFICSENSE_SCALE`
//! (`reduced` default / `medium` / `full`) or the shorthand
//! `EFFICSENSE_FULL=1`:
//! * reduced — CI-friendly workload (minutes on one core);
//! * medium — 102 × 23.6 s records, full Table III grid (tens of minutes);
//! * full — paper-scale evaluation (hours; 501 × 23.6 s records).

use efficsense_core::prelude::*;
use efficsense_signals::DatasetConfig;
use std::path::{Path, PathBuf};

/// Workload scale of the figure-regeneration binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: 15 records of 8 s, reduced grid (minutes on one core).
    Reduced,
    /// 102 records of 23.6 s, full Table III grid (tens of minutes).
    Medium,
    /// The paper's 501 records of 23.6 s, full grid (hours).
    Full,
}

impl Scale {
    /// Short name used in cache file names.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Reduced => "reduced",
            Scale::Medium => "medium",
            Scale::Full => "full",
        }
    }
}

/// Reads the requested scale: `EFFICSENSE_FULL=1` → full,
/// `EFFICSENSE_SCALE=medium|full|reduced` otherwise (default reduced).
pub fn scale() -> Scale {
    if std::env::var("EFFICSENSE_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return Scale::Full;
    }
    match std::env::var("EFFICSENSE_SCALE").as_deref() {
        Ok("medium") => Scale::Medium,
        Ok("full") => Scale::Full,
        _ => Scale::Reduced,
    }
}

/// Returns `true` when paper-scale evaluation was requested.
pub fn full_scale() -> bool {
    scale() == Scale::Full
}

/// Dataset configuration for experiments, honouring the scale switch.
pub fn dataset_config() -> DatasetConfig {
    match scale() {
        Scale::Full => DatasetConfig::paper_scale(0xEEC5),
        Scale::Medium => DatasetConfig {
            records_per_class: 34,
            ..Default::default()
        },
        Scale::Reduced => DatasetConfig {
            records_per_class: 5,
            duration_s: 8.0,
            ..Default::default()
        },
    }
}

/// Design space for experiments, honouring the scale switch.
pub fn design_space() -> DesignSpace {
    match scale() {
        Scale::Full | Scale::Medium => DesignSpace::paper_defaults(),
        Scale::Reduced => DesignSpace::reduced(),
    }
}

/// Output directory for generated figures (`target/figures`), created on
/// demand.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn figures_dir() -> PathBuf {
    let dir = Path::new("target").join("figures");
    std::fs::create_dir_all(&dir).expect("can create target/figures");
    dir
}

/// Writes `contents` into `target/figures/<name>` and logs the path.
///
/// # Panics
///
/// Panics on I/O errors.
pub fn save_figure(name: &str, contents: &str) {
    let path = figures_dir().join(name);
    std::fs::write(&path, contents).expect("can write figure file");
    println!("  wrote {}", path.display());
}

/// Formats watts as a µW string.
pub fn uw(p_w: f64) -> String {
    format!("{:.3} µW", p_w * 1e6)
}

/// A bench binary's telemetry session: holds where to write the final
/// metrics snapshot (see [`obs_from_args`]). Dropping the session does
/// nothing — call [`ObsSession::finish`] once the workload is done.
#[derive(Debug)]
pub struct ObsSession {
    metrics_path: Option<PathBuf>,
}

/// Wires the global [`efficsense_obs`] registry from the process arguments:
/// `--trace <path>` installs a buffered JSONL trace sink, `--trace-sample
/// <n>` keeps only every nth span *tree* in that trace (whole trees, so
/// lineage never dangles; histograms still see everything), and
/// `--metrics <path>` marks where [`ObsSession::finish`] writes the final
/// snapshot JSON. Without any flag this is free — no sink, no snapshot
/// file.
pub fn obs_from_args() -> ObsSession {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = flag("--trace") {
        match std::fs::File::create(&path) {
            Ok(f) => {
                efficsense_obs::global().set_sink(Some(Box::new(std::io::BufWriter::new(f))));
                println!("  tracing to {path}");
            }
            Err(e) => eprintln!("warning: cannot open trace file {path}: {e}"),
        }
    }
    if let Some(every) = flag("--trace-sample") {
        match every.parse::<u64>() {
            Ok(n) if n >= 1 => {
                efficsense_obs::global().set_trace_sampling(n);
                if n > 1 {
                    println!("  trace sampling: every {n}th span tree");
                }
            }
            _ => eprintln!("warning: --trace-sample expects a positive integer, got `{every}`"),
        }
    }
    ObsSession {
        metrics_path: flag("--metrics").map(PathBuf::from),
    }
}

impl ObsSession {
    /// Emits the registry's closing counter totals into the trace (so an
    /// offline profile can join cache counters with span durations),
    /// flushes the sink and freezes the registry. When the session was
    /// started with `--metrics <path>`, the snapshot JSON is written there
    /// too.
    ///
    /// # Panics
    ///
    /// Panics when the metrics file cannot be written, like every other
    /// bench output.
    pub fn finish(&self) -> efficsense_obs::Snapshot {
        let obs = efficsense_obs::global();
        obs.emit_counters();
        obs.flush();
        let snap = obs.snapshot();
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, snap.to_json()).expect("can write metrics snapshot");
            println!("  wrote metrics snapshot to {}", path.display());
        }
        snap
    }
}

/// Renders a compact per-stage profile block for a `BENCH_*.json` summary:
/// the top stages by self time with their share of total self time, plus
/// per-occurrence quantile upper bounds from the histogram buckets. Embeds
/// verbatim as the value of a `"profile"` key.
#[must_use]
pub fn profile_summary_json(snap: &efficsense_obs::Snapshot) -> String {
    let mut rows: Vec<(&String, &efficsense_obs::HistogramSnapshot)> =
        snap.spans.iter().map(|(n, s)| (n, s)).collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(b.0)));
    let total_self: u64 = rows.iter().map(|(_, s)| s.self_ns).sum();
    let stages = rows
        .iter()
        .take(8)
        .map(|(name, s)| {
            let share = if total_self == 0 {
                0.0
            } else {
                s.self_ns as f64 / total_self as f64
            };
            format!(
                "{{ \"stage\": \"{name}\", \"count\": {}, \"self_s\": {:?}, \
                 \"self_share\": {:?}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {} }}",
                s.count,
                s.self_ns as f64 / 1e9,
                share,
                s.p50_us(),
                s.p95_us(),
                s.p99_us()
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{ \"total_self_s\": {:?}, \"stages\": [{stages}] }}",
        total_self as f64 / 1e9
    )
}

/// Runs (or loads from the figure cache) the main design-space sweep used by
/// Figs. 7–10. The cache lives in `target/figures` and is keyed by metric
/// and workload scale, so `fig8`/`fig9`/`fig10` reuse `fig7`'s results.
///
/// The sweep runs under [`FailurePolicy::Skip`] and persists its quarantine
/// (point label, typed error, retry count) to a `*_quarantine.csv` sibling
/// of the results CSV, so an overnight figure run that loses points leaves
/// an inspectable record instead of dying or silently thinning the figure.
pub fn sweep_cached(metric: efficsense_core::sweep::Metric) -> Vec<SweepResult> {
    use efficsense_core::sweep::Metric;
    let scale = scale().name();
    let name = match metric {
        Metric::Snr => format!("sweep_snr_{scale}.csv"),
        Metric::DetectionAccuracy => format!("sweep_accuracy_{scale}.csv"),
    };
    let path = figures_dir().join(&name);
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Some(results) = parse_results(&text) {
            println!(
                "  loaded {} cached design points from {}",
                results.len(),
                path.display()
            );
            return results;
        }
    }
    let dataset = EegDataset::generate(&dataset_config());
    let space = design_space();
    println!(
        "  sweeping {} design points over {} records ({} scale)…",
        space.len(),
        dataset.len(),
        scale
    );
    let report = Sweep::new(SweepConfig {
        metric,
        failure_policy: FailurePolicy::Skip,
        ..Default::default()
    })
    .run_report(&space, &dataset);
    if !report.quarantine.is_empty() {
        println!("  {}", report.summary());
    }
    persist_quarantine(&name, &report);
    let results = report.results;
    let mut buf = Vec::new();
    efficsense_core::report::write_csv(&mut buf, &results).expect("write to vec succeeds");
    std::fs::write(&path, &buf).expect("can write sweep cache");
    println!("  cached sweep to {}", path.display());
    results
}

/// Writes `report`'s quarantine next to the results CSV `name` (suffix
/// `_quarantine.csv`). Always written — a header-only file is the healthy
/// outcome and distinguishes "no failures" from "never ran".
///
/// # Panics
///
/// Panics on I/O errors, like every figure-cache write.
pub fn persist_quarantine(results_csv_name: &str, report: &SweepReport) {
    let qname = match results_csv_name.strip_suffix(".csv") {
        Some(stem) => format!("{stem}_quarantine.csv"),
        None => format!("{results_csv_name}_quarantine.csv"),
    };
    let mut buf = Vec::new();
    efficsense_core::report::write_quarantine_csv(&mut buf, &report.quarantine)
        .expect("write to vec succeeds");
    let qpath = figures_dir().join(&qname);
    std::fs::write(&qpath, &buf).expect("can write quarantine file");
    if !report.quarantine.is_empty() {
        let obs = efficsense_obs::global();
        if obs.sink_enabled() {
            let ev = efficsense_obs::TraceEvent::new(obs.now_ns(), "quarantine", &qname)
                .field(
                    "count",
                    efficsense_obs::FieldValue::U64(report.quarantine.len() as u64),
                )
                .field(
                    "total",
                    efficsense_obs::FieldValue::U64(report.points_total as u64),
                );
            obs.emit(&ev);
        }
        println!(
            "  quarantined {} point(s) → {}",
            report.quarantine.len(),
            qpath.display()
        );
    }
}

/// Parses a sweep CSV produced by [`efficsense_core::report::write_csv`]
/// back into results. Returns `None` on any format mismatch.
pub fn parse_results(text: &str) -> Option<Vec<SweepResult>> {
    use efficsense_core::config::Architecture;
    use efficsense_core::space::DesignPoint;
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next()?.split(',').collect();
    let idx = |name: &str| header.iter().position(|h| *h == name);
    let (i_arch, i_noise, i_bits) = (
        idx("architecture")?,
        idx("lna_noise_uvrms")?,
        idx("n_bits")?,
    );
    let (i_m, i_s, i_ch) = (idx("m")?, idx("s")?, idx("c_hold_pf")?);
    let (i_metric, i_power, i_area) = (idx("metric")?, idx("power_uw")?, idx("area_units")?);
    let block_cols: Vec<(usize, BlockKind)> = [
        ("lna_uw", BlockKind::Lna),
        ("sh_uw", BlockKind::SampleHold),
        ("comparator_uw", BlockKind::Comparator),
        ("sar_logic_uw", BlockKind::SarLogic),
        ("dac_uw", BlockKind::Dac),
        ("tx_uw", BlockKind::Transmitter),
        ("cs_logic_uw", BlockKind::CsEncoderLogic),
        ("leakage_uw", BlockKind::Leakage),
    ]
    .iter()
    .filter_map(|(n, k)| idx(n).map(|i| (i, *k)))
    .collect();
    let mut out = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != header.len() {
            return None;
        }
        let architecture = match f[i_arch] {
            "baseline" => Architecture::Baseline,
            "cs" => Architecture::CompressiveSensing,
            _ => return None,
        };
        let mut breakdown = PowerBreakdown::new();
        for &(i, k) in &block_cols {
            let w: f64 = f[i].parse().ok()?;
            breakdown.add(k, efficsense_power::Watts::micro(w));
        }
        out.push(SweepResult {
            point: DesignPoint {
                architecture,
                lna_noise_vrms: f[i_noise].parse::<f64>().ok()? * 1e-6,
                n_bits: f[i_bits].parse().ok()?,
                m: f[i_m].parse().ok(),
                s: f[i_s].parse().ok(),
                c_hold_f: f[i_ch].parse::<f64>().ok().map(|v| v * 1e-12),
            },
            metric: f[i_metric].parse().ok()?,
            power_w: f[i_power].parse::<f64>().ok()? * 1e-6,
            breakdown,
            area_units: f[i_area].parse().ok()?,
        });
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Minimal wall-clock timing harness for the `harness = false` benches.
///
/// Calibrates an iteration count per benchmark so each sample lasts roughly
/// 20 ms, then reports per-iteration min/median/mean over the sample set.
/// The first non-flag CLI argument acts as a substring filter, so
/// `cargo bench -- encoder` narrows the run exactly as before.
pub mod harness {
    pub use std::hint::black_box;
    use std::time::{Duration, Instant};

    const DEFAULT_SAMPLES: usize = 20;
    const SAMPLE_TARGET_NS: u128 = 20_000_000;

    /// Summary statistics over one benchmark's timing samples.
    #[derive(Debug, Clone, Copy)]
    pub struct Stats {
        /// Fastest per-iteration sample.
        pub min: Duration,
        /// Median per-iteration sample.
        pub median: Duration,
        /// Mean per-iteration cost across samples.
        pub mean: Duration,
        /// Number of timed samples.
        pub samples: usize,
        /// Iterations timed per sample.
        pub iters_per_sample: u64,
    }

    /// Measurement loop handle passed to each registered benchmark closure.
    pub struct Bencher {
        samples: usize,
        result: Option<Stats>,
    }

    impl Bencher {
        /// Calibrates the iteration count from one warm-up run, then times
        /// batches of the routine and records per-iteration statistics.
        pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
            let t0 = Instant::now();
            black_box(routine());
            let once = t0.elapsed().max(Duration::from_nanos(1));
            let iters = (SAMPLE_TARGET_NS / once.as_nanos()).clamp(1, 1_000_000_000) as u64;
            let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
            for _ in 0..self.samples {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                per_iter.push(t.elapsed() / iters as u32);
            }
            per_iter.sort_unstable();
            let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
            self.result = Some(Stats {
                min: per_iter[0],
                median: per_iter[per_iter.len() / 2],
                mean,
                samples: per_iter.len(),
                iters_per_sample: iters,
            });
        }
    }

    fn fmt(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.3} s", ns as f64 / 1e9)
        }
    }

    /// Registers and runs benchmarks, honouring the CLI substring filter.
    pub struct Harness {
        filter: Option<String>,
        samples: usize,
    }

    impl Default for Harness {
        fn default() -> Self {
            Self::from_args()
        }
    }

    impl Harness {
        /// Builds a harness from the process arguments; flags such as
        /// `--bench` (added by cargo) are ignored.
        pub fn from_args() -> Self {
            let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
            Self {
                filter,
                samples: DEFAULT_SAMPLES,
            }
        }

        /// Overrides the per-benchmark sample count (use a small count for
        /// slow workloads, as criterion groups did).
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.samples = n.max(2);
            self
        }

        /// Restores the default sample count.
        pub fn default_sample_size(&mut self) -> &mut Self {
            self.samples = DEFAULT_SAMPLES;
            self
        }

        /// Runs one benchmark's measurement loop and prints a report line,
        /// unless the name fails the CLI filter.
        pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
            if let Some(flt) = &self.filter {
                if !name.contains(flt.as_str()) {
                    return self;
                }
            }
            let mut b = Bencher {
                samples: self.samples,
                result: None,
            };
            f(&mut b);
            match b.result {
                Some(s) => println!(
                    "{name:<44} median {:>10}  min {:>10}  mean {:>10}  ({} samples × {} iters)",
                    fmt(s.median),
                    fmt(s.min),
                    fmt(s.mean),
                    s.samples,
                    s.iters_per_sample
                ),
                None => println!("{name:<44} (no measurement recorded)"),
            }
            self
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bencher_records_statistics() {
            let mut b = Bencher {
                samples: 3,
                result: None,
            };
            b.iter(|| black_box(2u64 + 2));
            let s = b.result.expect("stats recorded");
            assert_eq!(s.samples, 3);
            assert!(s.iters_per_sample >= 1);
            assert!(s.min <= s.median);
            assert!(s.min <= s.mean);
        }

        #[test]
        fn duration_formatting_scales() {
            assert_eq!(fmt(Duration::from_nanos(12)), "12 ns");
            assert_eq!(fmt(Duration::from_micros(12)), "12.00 µs");
            assert_eq!(fmt(Duration::from_millis(12)), "12.00 ms");
            assert_eq!(fmt(Duration::from_secs(12)), "12.000 s");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_config_is_small() {
        if !full_scale() {
            let c = dataset_config();
            assert!(c.records_per_class <= 10);
            assert!(c.duration_s <= 10.0);
        }
    }

    #[test]
    fn figures_dir_exists_after_call() {
        let d = figures_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn uw_formats() {
        assert_eq!(uw(2.44e-6), "2.440 µW");
    }

    #[test]
    fn csv_roundtrip_preserves_results() {
        use efficsense_core::config::Architecture;
        use efficsense_core::space::DesignPoint;
        let mut breakdown = PowerBreakdown::new();
        breakdown.add(BlockKind::Lna, efficsense_power::Watts(1.5e-6));
        breakdown.add(BlockKind::Transmitter, efficsense_power::Watts(4.3e-6));
        let original = vec![SweepResult {
            point: DesignPoint {
                architecture: Architecture::CompressiveSensing,
                lna_noise_vrms: 3.61e-6,
                n_bits: 8,
                m: Some(75),
                s: Some(2),
                c_hold_f: Some(0.5e-12),
            },
            metric: 0.9933,
            power_w: 5.8e-6,
            breakdown,
            area_units: 76000.0,
        }];
        let mut buf = Vec::new();
        efficsense_core::report::write_csv(&mut buf, &original).expect("writes to vec");
        let text = String::from_utf8(buf).expect("utf8");
        let parsed = parse_results(&text).expect("parses back");
        assert_eq!(parsed.len(), 1);
        let (a, b) = (&original[0], &parsed[0]);
        assert_eq!(a.point.architecture, b.point.architecture);
        assert_eq!(a.point.n_bits, b.point.n_bits);
        assert_eq!(a.point.m, b.point.m);
        assert!((a.point.lna_noise_vrms - b.point.lna_noise_vrms).abs() < 1e-10);
        assert!((a.metric - b.metric).abs() < 1e-5);
        assert!((a.power_w - b.power_w).abs() < 1e-11);
        let lna_err = a.breakdown.get(BlockKind::Lna) - b.breakdown.get(BlockKind::Lna);
        assert!(lna_err.value().abs() < 1e-11);
        assert!((a.area_units - b.area_units).abs() < 1.0);
    }

    #[test]
    fn parse_rejects_malformed_csv() {
        assert!(parse_results("not,a,sweep\n1,2,3\n").is_none());
        assert!(parse_results("").is_none());
    }
}
