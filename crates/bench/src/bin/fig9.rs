//! Regenerates **Fig. 9**: detection accuracy vs total capacitor count
//! (area in multiples of `C_u,min`) across the whole search space, showing
//! the CS technique's substantial area cost.
//!
//! Run: `cargo run --release -p efficsense-bench --bin fig9`

use efficsense_bench::{save_figure, sweep_cached};
use efficsense_core::sweep::{split_by_architecture, Metric};

fn main() {
    println!("=== Fig. 9: accuracy vs capacitor area ===");
    let results = sweep_cached(Metric::DetectionAccuracy);
    let mut csv = String::from("architecture,area_units,accuracy,power_uw,label\n");
    for r in &results {
        csv.push_str(&format!(
            "{},{:.1},{:.6},{:.6},{}\n",
            r.point.architecture,
            r.area_units,
            r.metric,
            r.power_w * 1e6,
            r.point.label()
        ));
    }
    save_figure("fig9_accuracy_vs_area.csv", &csv);

    let (base, cs) = split_by_architecture(&results);
    let stats = |rs: &[&efficsense_core::sweep::SweepResult]| {
        let min = rs
            .iter()
            .map(|r| r.area_units)
            .fold(f64::INFINITY, f64::min);
        let max = rs.iter().map(|r| r.area_units).fold(0.0f64, f64::max);
        let best = rs
            .iter()
            .map(|r| r.metric)
            .fold(f64::NEG_INFINITY, f64::max);
        (min, max, best)
    };
    let (bmin, bmax, bacc) = stats(&base);
    let (cmin, cmax, cacc) = stats(&cs);
    println!(
        "  baseline: area {bmin:.0}–{bmax:.0} C_u, best accuracy {:.1} %",
        bacc * 100.0
    );
    println!(
        "  CS      : area {cmin:.0}–{cmax:.0} C_u, best accuracy {:.1} %",
        cacc * 100.0
    );
    println!(
        "  area ratio (CS/baseline, min designs): {:.0}x — the paper's message that",
        cmin / bmin
    );
    println!("  CS buys its power saving with a large capacitor bank.");
    assert!(
        cmin > bmax,
        "every CS design should out-area every baseline design (got CS min {cmin} vs baseline max {bmax})"
    );
}
