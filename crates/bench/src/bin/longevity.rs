//! Longevity: long-duration synthetic signal replayed through aging,
//! compound-faulted streaming simulators.
//!
//! For every fault kind, a linear 0→1 severity ramp is streamed over the
//! whole run on the kind's native architecture through
//! [`StreamSimulator::with_compound`], and the stream is scored in fixed
//! windows: SNR against the streaming reference, detection accuracy per
//! signal segment, and the analytic power draw at the window's severity.
//! A final max-severity "gauntlet" pushes every fault kind at once at
//! severity 1 through both architectures and must come back panic-free
//! with finite output.
//!
//! Emits `BENCH_longevity.json` (drift curves + gauntlet verdict) for CI
//! artifact upload and asserts, at every scale, that at least 3 fault
//! kinds degrade SNR monotonically window-over-window under aging.
//!
//! Run: `cargo run --release -p efficsense-bench --bin longevity`
//! (`EFFICSENSE_SCALE=medium|full` lengthens the replay to one/four hours;
//! `--trace <path>.jsonl` / `--metrics <path>.json` stream telemetry.)

use efficsense_bench::{dataset_config, obs_from_args, scale, Scale};
use efficsense_core::config::CsConfig;
use efficsense_core::prelude::*;
use efficsense_core::stream::StreamSimulator;
use efficsense_dsp::metrics::snr_fit_db;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Master seed of every compound fault stream (fixed: reruns bit-identical).
const FAULT_SEED: u64 = 0x10_96E1;

/// Input samples per `push` — small enough to exercise chunk carry-over,
/// large enough to amortise per-call overhead.
const PUSH_LEN: usize = 4096;

/// Score windows per run (drift-curve resolution).
const WINDOWS: usize = 8;

/// Replay length in seconds for the current scale: CI replays ten minutes,
/// full scale replays four hours.
fn replay_seconds() -> f64 {
    match scale() {
        Scale::Reduced => 600.0,
        Scale::Medium => 3600.0,
        Scale::Full => 14400.0,
    }
}

/// The architecture a fault kind natively lives on.
fn native_architecture(kind: FaultKind) -> Architecture {
    match kind {
        FaultKind::CapLeakage => Architecture::CompressiveSensing,
        _ => Architecture::Baseline,
    }
}

fn config_for(arch: Architecture) -> SystemConfig {
    match arch {
        Architecture::Baseline => SystemConfig::baseline(8),
        Architecture::CompressiveSensing => SystemConfig::compressive(8, CsConfig::default()),
    }
}

/// One labelled slice of the long input signal.
struct Segment {
    start: usize,
    len: usize,
    label: usize,
}

/// The shared replay workload every aging run streams through.
struct Replay {
    input: Vec<f64>,
    segments: Vec<Segment>,
    fs_in: f64,
    /// Actual replay length (window-aligned, so it can undershoot the
    /// requested duration by part of a cycle); aging profiles ramp over
    /// this, not the request.
    seconds: f64,
}

/// Builds the long replay input: concatenated samples, segment table, and
/// the input rate.
///
/// The replay is [`WINDOWS`] repetitions of one fixed record cycle, so
/// every score window sees *identical* signal content — window-to-window
/// drift then measures the aging faults, not which records happened to
/// land in which window. The cycle holds as many dataset records as fit
/// one window of the requested duration (at least two, so both classes
/// stay represented).
fn build_replay(dataset: &EegDataset, seconds: f64) -> Replay {
    let fs_in = dataset.records[0].fs;
    let window_target = (seconds / WINDOWS as f64 * fs_in) as usize;
    let mut cycle: Vec<&Record> = Vec::new();
    let mut cycle_len = 0usize;
    for rec in &dataset.records {
        if cycle.len() >= 2 && cycle_len + rec.samples.len() > window_target {
            break;
        }
        cycle_len += rec.samples.len();
        cycle.push(rec);
    }
    let mut samples = Vec::with_capacity(cycle_len * WINDOWS);
    let mut segments = Vec::new();
    for _ in 0..WINDOWS {
        for rec in &cycle {
            segments.push(Segment {
                start: samples.len(),
                len: rec.samples.len(),
                label: rec.label(),
            });
            samples.extend_from_slice(&rec.samples);
        }
    }
    let seconds = samples.len() as f64 / fs_in;
    Replay {
        input: samples,
        segments,
        fs_in,
        seconds,
    }
}

/// Drift curves of one aging run.
struct Drift {
    label: String,
    architecture: Architecture,
    snr_db: Vec<f64>,
    accuracy: Vec<f64>,
    power_uw: Vec<f64>,
    monotone_snr: bool,
}

/// Streams `input` through `sim` under `plan` and returns the full
/// (output, reference) pair.
fn stream_all(
    sim: &Simulator,
    input: &[f64],
    fs_in: f64,
    plan: &CompoundPlan,
) -> (Vec<f64>, Vec<f64>) {
    let mut stream = StreamSimulator::with_compound(sim, fs_in, 1, plan);
    let mut out = Vec::new();
    let mut reference = Vec::new();
    for chunk in input.chunks(PUSH_LEN) {
        let got = stream.push(chunk);
        out.extend(got.input_referred);
        reference.extend(got.reference);
    }
    let (last, _summary) = stream.finish();
    out.extend(last.input_referred);
    reference.extend(last.reference);
    (out, reference)
}

/// Streams one compound plan over the replay on `architecture` and scores
/// it in [`WINDOWS`] windows.
#[allow(clippy::too_many_lines)]
fn run_plan(
    label: String,
    architecture: Architecture,
    plan: &CompoundPlan,
    replay: &Replay,
    detector: &SeizureDetector,
) -> Drift {
    let _kind_span = efficsense_obs::span!("longevity.kind");
    let (input, segments) = (&replay.input, &replay.segments);
    let (fs_in, seconds) = (replay.fs_in, replay.seconds);
    let cfg = config_for(architecture);
    let f_s = cfg.design.f_sample_hz();
    let v_fs = cfg.design.v_fs;
    let sim = Simulator::new(cfg.clone()).expect("valid config");
    let (out, reference) = stream_all(&sim, input, fs_in, plan);
    let n = out.len();
    assert!(n > WINDOWS, "stream produced too few samples");

    let mut snr_db = Vec::with_capacity(WINDOWS);
    let mut accuracy = Vec::with_capacity(WINDOWS);
    let mut power_uw = Vec::with_capacity(WINDOWS);
    for w in 0..WINDOWS {
        let lo = n * w / WINDOWS;
        let hi = n * (w + 1) / WINDOWS;
        snr_db.push(snr_fit_db(&reference[lo..hi], &out[lo..hi]));
        // Detection: every signal segment whose output midpoint falls in
        // this window is classified against its known label.
        let (mut hits, mut total) = (0usize, 0usize);
        for seg in segments {
            let mid_in = seg.start + seg.len / 2;
            let mid_out = (mid_in as f64 / fs_in * f_s) as usize;
            if mid_out < lo || mid_out >= hi {
                continue;
            }
            let seg_lo = ((seg.start as f64 / fs_in * f_s) as usize).min(n);
            let seg_hi = (((seg.start + seg.len) as f64 / fs_in * f_s) as usize).min(n);
            if seg_hi <= seg_lo {
                continue;
            }
            total += 1;
            if detector.predict(&out[seg_lo..seg_hi], f_s) == seg.label {
                hits += 1;
            }
        }
        accuracy.push(if total > 0 {
            hits as f64 / total as f64
        } else {
            f64::NAN
        });
        // Analytic power at the window's midpoint severity: the faulted
        // power model (e.g. link retry inflation) evaluated at that epoch.
        let t_mid = seconds * (w as f64 + 0.5) / WINDOWS as f64;
        let aged = Simulator::with_fault_plan(cfg.clone(), plan.materialize(t_mid))
            .expect("valid aged config");
        power_uw.push(aged.power_breakdown(v_fs / 2.0).total().value() * 1e6);
    }

    // Coarse monotonicity: window SNR never rises by more than the jitter
    // tolerance, and the run ends materially worse than it began.
    let tol_db = 0.5;
    let monotone_snr = snr_db.windows(2).all(|w| w[1] <= w[0] + tol_db)
        && snr_db.last().copied().unwrap_or(0.0) < snr_db.first().copied().unwrap_or(0.0) - 1.0;
    Drift {
        label,
        architecture,
        snr_db,
        accuracy,
        power_uw,
        monotone_snr,
    }
}

/// Parses a severity-profile spec (the `--fault` CLI syntax):
/// `constant:S`, `linear:START:END[:RAMP_S]`, `step:BEFORE:AFTER:AT_S`,
/// or `sinusoid:BASE:AMP:PERIOD_S`. `default_ramp_s` fills a linear
/// profile's omitted ramp (the replay length).
fn parse_profile(spec: &str, default_ramp_s: f64) -> Option<SeverityProfile> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |i: usize| parts.get(i).and_then(|s| s.parse::<f64>().ok());
    match parts.first().copied()? {
        "constant" if parts.len() == 2 => Some(SeverityProfile::Constant(num(1)?)),
        "linear" if parts.len() == 3 || parts.len() == 4 => Some(SeverityProfile::Linear {
            start: num(1)?,
            end: num(2)?,
            ramp_s: if parts.len() == 4 {
                num(3)?
            } else {
                default_ramp_s
            },
        }),
        "step" if parts.len() == 4 => Some(SeverityProfile::Step {
            before: num(1)?,
            after: num(2)?,
            at_s: num(3)?,
        }),
        "sinusoid" if parts.len() == 4 => Some(SeverityProfile::Sinusoid {
            base: num(1)?,
            amplitude: num(2)?,
            period_s: num(3)?,
        }),
        _ => None,
    }
}

/// Collects repeated `--fault <kind>=<profile>` arguments into a compound
/// plan, plus the `--arch baseline|cs` override. Returns `None` when no
/// `--fault` argument is present (default per-kind aging mode).
fn parse_custom_plan(seconds: f64) -> Option<(CompoundPlan, Architecture)> {
    let args: Vec<String> = std::env::args().collect();
    let mut plan = CompoundPlan::new(FAULT_SEED, seconds / 64.0);
    let mut any = false;
    let mut arch = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fault" => {
                let spec = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("--fault requires <kind>=<profile>");
                    std::process::exit(2);
                });
                let (kind_name, profile_spec) = spec.split_once('=').unwrap_or_else(|| {
                    eprintln!("malformed --fault {spec:?}: expected <kind>=<profile>");
                    std::process::exit(2);
                });
                let kind = FaultKind::ALL
                    .into_iter()
                    .find(|k| k.name() == kind_name)
                    .unwrap_or_else(|| {
                        eprintln!("unknown fault kind {kind_name:?}");
                        std::process::exit(2);
                    });
                let profile = parse_profile(profile_spec, seconds).unwrap_or_else(|| {
                    eprintln!("malformed profile {profile_spec:?}");
                    std::process::exit(2);
                });
                plan = plan.with(kind, profile);
                any = true;
                i += 2;
            }
            "--arch" => {
                arch = match args.get(i + 1).map(String::as_str) {
                    Some("baseline") => Some(Architecture::Baseline),
                    Some("cs") => Some(Architecture::CompressiveSensing),
                    other => {
                        eprintln!("--arch must be baseline|cs, got {other:?}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            _ => i += 1,
        }
    }
    any.then(|| {
        let a = arch.unwrap_or_else(|| {
            native_architecture(plan.faults().first().map_or(FaultKind::LnaRail, |f| f.0))
        });
        (plan, a)
    })
}

/// Max-severity gauntlet: every fault kind at constant severity 1 at once.
/// Passing means the stream neither panicked nor produced non-finite
/// output — quarantine-clean graceful degradation.
fn gauntlet(arch: Architecture, input: &[f64], fs_in: f64) -> (bool, u64) {
    let plan = FaultKind::ALL
        .iter()
        .fold(CompoundPlan::new(FAULT_SEED ^ 0xDEAD, 60.0), |p, &k| {
            p.with(k, SeverityProfile::Constant(1.0))
        });
    let result = catch_unwind(AssertUnwindSafe(|| {
        let sim = Simulator::new(config_for(arch)).expect("valid config");
        let (out, reference) = stream_all(&sim, input, fs_in, &plan);
        let finite = out.iter().all(|v| v.is_finite()) && reference.iter().all(|v| v.is_finite());
        (finite, out.len() as u64)
    }));
    match result {
        Ok((finite, n)) => (finite, n),
        Err(_) => (false, 0),
    }
}

fn json_array(values: &[f64]) -> String {
    let parts: Vec<String> = values
        .iter()
        .map(|v| {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_string()
            }
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn main() {
    let obs_session = obs_from_args();
    let dataset = EegDataset::generate(&dataset_config());
    let replay = build_replay(&dataset, replay_seconds());
    let seconds = replay.seconds;
    let custom = parse_custom_plan(seconds);
    println!(
        "=== Longevity: {:.0} s replay ({} segments) x {}, {WINDOWS} windows ===",
        seconds,
        replay.segments.len(),
        match &custom {
            Some((plan, _)) => format!("custom plan [{}]", plan.label()),
            None => format!("{} fault kinds", FaultKind::ALL.len()),
        }
    );

    // One detector shared by every run, trained on the clean dataset at the
    // output rate (the same regime the sweep goals use).
    let f_s = SystemConfig::baseline(8).design.f_sample_hz();
    let detector = SeizureDetector::train_epoched(&dataset, f_s, 2.0, 0xD0D0);
    let drifts: Vec<Drift> = match &custom {
        Some((plan, arch)) => vec![run_plan(plan.label(), *arch, plan, &replay, &detector)],
        None => FaultKind::ALL
            .iter()
            .map(|&kind| {
                let plan = CompoundPlan::new(FAULT_SEED, seconds / 64.0).with(
                    kind,
                    SeverityProfile::Linear {
                        start: 0.0,
                        end: 1.0,
                        ramp_s: seconds,
                    },
                );
                run_plan(
                    kind.to_string(),
                    native_architecture(kind),
                    &plan,
                    &replay,
                    &detector,
                )
            })
            .collect(),
    };
    for d in &drifts {
        println!(
            "  {:<16} ({}): SNR {} dB{}",
            d.label,
            d.architecture,
            d.snr_db
                .iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join(" -> "),
            if d.monotone_snr { "  [monotone]" } else { "" }
        );
    }

    // Shorter gauntlet input (severity is constant, duration adds nothing).
    let gauntlet_len = replay.input.len().min((60.0 * replay.fs_in) as usize);
    let gauntlet_input = &replay.input[..gauntlet_len];
    let (base_ok, base_n) = gauntlet(Architecture::Baseline, gauntlet_input, replay.fs_in);
    let (cs_ok, cs_n) = gauntlet(
        Architecture::CompressiveSensing,
        gauntlet_input,
        replay.fs_in,
    );
    println!();
    println!(
        "  gauntlet (all kinds @ severity 1): baseline {} ({base_n} samples), cs {} ({cs_n} samples)",
        if base_ok { "ok" } else { "FAILED" },
        if cs_ok { "ok" } else { "FAILED" },
    );

    let monotone = drifts.iter().filter(|d| d.monotone_snr).count();
    let mut kinds_json = Vec::new();
    for d in &drifts {
        kinds_json.push(format!(
            "    \"{}\": {{\n      \"architecture\": \"{}\",\n      \"snr_db\": {},\n      \"accuracy\": {},\n      \"power_uw\": {},\n      \"monotone_snr\": {}\n    }}",
            d.label,
            d.architecture,
            json_array(&d.snr_db),
            json_array(&d.accuracy),
            json_array(&d.power_uw),
            d.monotone_snr
        ));
    }
    let snap = obs_session.finish();
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"replay_seconds\": {seconds:?},\n  \"windows\": {WINDOWS},\n  \"kinds\": {{\n{}\n  }},\n  \"monotone_kinds\": {monotone},\n  \"gauntlet\": {{\n    \"baseline_ok\": {base_ok},\n    \"baseline_samples\": {base_n},\n    \"cs_ok\": {cs_ok},\n    \"cs_samples\": {cs_n}\n  }},\n  \"profile\": {}\n}}\n",
        scale().name(),
        kinds_json.join(",\n"),
        efficsense_bench::profile_summary_json(&snap)
    );
    std::fs::write("BENCH_longevity.json", &json).expect("can write BENCH_longevity.json");
    println!("  wrote BENCH_longevity.json");

    if let Some(s) = snap.span("longevity.kind") {
        let secs = s.total_ns as f64 / 1e9;
        println!(
            "  {} aging runs in {secs:.2}s ({:.0} signal-seconds/s)",
            s.count,
            s.count as f64 * seconds / secs.max(1e-9)
        );
    }

    assert!(
        base_ok,
        "baseline max-severity gauntlet must finish cleanly"
    );
    assert!(cs_ok, "CS max-severity gauntlet must finish cleanly");
    // The monotone-degradation gate only applies to the default per-kind
    // linear-aging matrix, not to ad-hoc `--fault` explorations.
    if custom.is_none() {
        println!();
        println!(
            "{monotone}/{} fault kinds degrade SNR monotonically under linear aging",
            FaultKind::ALL.len()
        );
        assert!(
            monotone >= 3,
            "expected at least 3 monotone-degrading fault kinds under aging, got {monotone}"
        );
    }
}
