//! Diagnostic: wall-clock cost of one design-point record evaluation, used
//! to size the workload tiers in `efficsense_bench::dataset_config`.
//!
//! Run: `cargo run --release -p efficsense-bench --bin profile_point`
use efficsense_core::config::{CsConfig, SystemConfig};
use efficsense_core::simulate::Simulator;
use efficsense_signals::{DatasetConfig, EegDataset};
use std::time::Instant;

fn main() {
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 1,
        duration_s: 23.6,
        ..Default::default()
    });
    let r = &ds.records[0];
    let t0 = Instant::now();
    let sim = Simulator::new(SystemConfig::compressive(
        8,
        CsConfig {
            m: 150,
            omp_sparsity: 60,
            ..Default::default()
        },
    ))
    .unwrap();
    println!("simulator build: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let out = sim.run(&r.samples, r.fs, 1);
    println!(
        "cs m150 23.6s record: {:?} ({} frames)",
        t0.elapsed(),
        out.words / 150
    );
    let t0 = Instant::now();
    let sim_b = Simulator::new(SystemConfig::baseline(8)).unwrap();
    let _ = sim_b.run(&r.samples, r.fs, 1);
    println!("baseline 23.6s record: {:?}", t0.elapsed());
}
