//! Severity × design-space product sweep with the two-level evaluation cache.
//!
//! The robustness workflow re-runs the whole design-space sweep once per
//! `(fault kind, severity)` cell. This binary runs that product three ways —
//! uncached, cold-cached, warm-cached — plus a persist/reload cycle, checks
//! all four produce bit-identical results, and emits `BENCH_sweep.json`
//! (points/sec, cache hit rate, wall times) for CI trend tracking.
//!
//! Three cache levels are measured:
//! * **Level 2** (`efficsense_cs::memo`): sensing matrices and dictionary
//!   precomputations shared per `(m, n, seed, kind)` — measured by running
//!   one sweep with a cleared memo store and again with a warm one.
//! * **Level 3** (`efficsense_core::prefix`): stage-prefix artifacts
//!   (resampled records, LNA output, clean-clock samplings, references,
//!   whole acquired front-ends) shared across sweep points — measured as a
//!   store-off pass vs the headline uncached pass, plus an uncached
//!   thread-scaling section at 1/2/4 workers.
//! * **Level 1** (`efficsense_core::cache`): whole `evaluate_point` results
//!   keyed by content ([`efficsense_core::cache::point_key`]) — measured
//!   across the product passes. Severity-0 cells canonicalise to the clean
//!   key, so the cold pass already dedupes them.
//!
//! Run: `cargo run --release -p efficsense-bench --bin product`
//! (`EFFICSENSE_SCALE=medium|full` widens the cell grid and workload;
//! `EFFICSENSE_CACHE_FILE=<path>` overrides the persisted cache location;
//! `--trace <path>.jsonl` streams telemetry events, `--metrics <path>.json`
//! writes the final metrics snapshot, which is also embedded in
//! `BENCH_sweep.json` under `"obs"`.)

use efficsense_bench::{dataset_config, design_space, figures_dir, obs_from_args, scale, Scale};
use efficsense_core::cache::SweepCache;
use efficsense_core::pareto::{pareto_front, Objective};
use efficsense_core::prefix::PrefixStore;
use efficsense_core::prelude::*;
use efficsense_core::sweep::Metric;
use efficsense_cs::memo;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Master seed of every injected fault stream (kept fixed so reruns are
/// bit-identical).
const FAULT_SEED: u64 = 0xFA_017;

/// One `(fault kind, severity)` cell of the product.
#[derive(Debug, Clone)]
struct Cell {
    label: String,
    plan: FaultPlan,
}

/// The product grid: reduced keeps CI fast (and includes two severity-0
/// cells, which share the clean content key — the cold-pass dedup case);
/// medium/full run the full taxonomy × severity grid.
fn cells() -> Vec<Cell> {
    let (kinds, severities): (Vec<FaultKind>, Vec<f64>) = match scale() {
        Scale::Reduced => (
            vec![FaultKind::AdcStuckBit, FaultKind::CapLeakage],
            vec![0.0, 1.0],
        ),
        Scale::Medium | Scale::Full => (
            vec![
                FaultKind::LnaRail,
                FaultKind::AdcStuckBit,
                FaultKind::CapLeakage,
                FaultKind::ClockJitter,
                FaultKind::DroppedSamples,
                FaultKind::PacketLoss,
            ],
            vec![0.0, 0.25, 0.5, 0.75, 1.0],
        ),
    };
    let mut out = Vec::new();
    for kind in &kinds {
        for &severity in &severities {
            out.push(Cell {
                label: format!("{kind:?}@{severity}"),
                plan: FaultPlan::single(*kind, severity, FAULT_SEED),
            });
        }
    }
    out
}

/// Runs the whole product once, optionally through a shared L1 result cache
/// and/or L3 prefix store, with `threads` sweep workers (0 = all cores).
fn run_product(
    cells: &[Cell],
    space: &DesignSpace,
    dataset: &EegDataset,
    cache: Option<&Arc<SweepCache>>,
    prefix: Option<&Arc<PrefixStore>>,
    threads: usize,
) -> (Vec<SweepReport>, Duration) {
    let t0 = Instant::now();
    let reports = cells
        .iter()
        .map(|cell| {
            let mut sweep = Sweep::new(SweepConfig {
                metric: Metric::DetectionAccuracy,
                threads,
                failure_policy: FailurePolicy::Skip,
                fault_plan: Some(cell.plan.clone()),
                ..Default::default()
            });
            if let Some(c) = cache {
                sweep = sweep.with_cache(Arc::clone(c));
            }
            if let Some(p) = prefix {
                sweep = sweep.with_prefix_store(Arc::clone(p));
            }
            sweep.run_report(space, dataset)
        })
        .collect();
    (reports, t0.elapsed())
}

fn assert_identical(a: &[SweepReport], b: &[SweepReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: cell count mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.results, y.results,
            "{what}: results must be bit-identical"
        );
        assert_eq!(x.quarantine.len(), y.quarantine.len(), "{what}: quarantine");
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let obs_session = obs_from_args();
    let sc = scale();
    let dataset = EegDataset::generate(&dataset_config());
    let space = design_space();
    let cells = cells();
    let points_per_pass = cells.len() * space.len();
    println!(
        "product sweep: {} cells × {} points over {} records ({} scale)",
        cells.len(),
        space.len(),
        dataset.len(),
        sc.name()
    );

    // ---- Level 2: artifact memoization, isolated with the SNR goal (no
    // detector training muddying the comparison). Same sweep twice: first
    // with a cleared memo store (every dictionary built), then warm.
    memo::clear();
    memo::reset_stats();
    let snr_cfg = SweepConfig {
        metric: Metric::Snr,
        failure_policy: FailurePolicy::Skip,
        ..Default::default()
    };
    let t0 = Instant::now();
    let memo_cold_results = Sweep::new(snr_cfg.clone()).run_report(&space, &dataset);
    let t_memo_cold = t0.elapsed();
    let dict_builds = memo::stats().dictionary.misses;
    let dict_hits_within_sweep = memo::stats().dictionary.hits;
    let t0 = Instant::now();
    let memo_warm_results = Sweep::new(snr_cfg).run_report(&space, &dataset);
    let t_memo_warm = t0.elapsed();
    assert_eq!(
        memo_cold_results.results, memo_warm_results.results,
        "memoized artifacts must be bit-identical"
    );
    let artifact_speedup = secs(t_memo_cold) / secs(t_memo_warm).max(1e-9);
    println!(
        "  level 2 (artifact memo): cold {:.2}s ({} dictionary builds, {} shared within sweep) \
         vs warm {:.2}s → {:.2}×",
        secs(t_memo_cold),
        dict_builds,
        dict_hits_within_sweep,
        secs(t_memo_warm),
        artifact_speedup
    );

    // ---- Level 3: the prefix store, off vs on. The store-off pass is the
    // pre-L3 baseline; pass A (a fresh store, no L1 cache) is the headline
    // "uncached" number — it measures what one product pass costs when
    // sweep points share front-end artifacts but no whole results.
    println!("  pass A0: prefix store off…");
    let (pass_off, t_prefix_off) = run_product(&cells, &space, &dataset, None, None, 0);
    println!("  pass A: uncached (fresh prefix store)…");
    let prefix_a = Arc::new(PrefixStore::new());
    let (pass_a, t_uncached) = run_product(&cells, &space, &dataset, None, Some(&prefix_a), 0);
    assert_identical(&pass_off, &pass_a, "prefix-store pass");
    let prefix_speedup = secs(t_prefix_off) / secs(t_uncached).max(1e-9);
    let pstats = prefix_a.stats();
    println!(
        "    store off {:.2}s | on {:.2}s ({:.2}×) — analog {}h/{}m, sampled {}h/{}m, \
         reference {}h/{}m, acquired {}h/{}m",
        secs(t_prefix_off),
        secs(t_uncached),
        prefix_speedup,
        pstats.analog.hits,
        pstats.analog.misses,
        pstats.sampled.hits,
        pstats.sampled.misses,
        pstats.reference.hits,
        pstats.reference.misses,
        pstats.acquired.hits,
        pstats.acquired.misses,
    );

    // ---- Thread scaling: the same uncached workload at fixed worker
    // counts, each with its own fresh store (so every pass does the same
    // work). The first CI evidence that the sweep worker pool scales.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut threads_scaling: Vec<(usize, f64)> = Vec::new();
    println!("  thread scaling (uncached, fresh store per pass):");
    for threads in [1usize, 2, 4] {
        let store = Arc::new(PrefixStore::new());
        let (pass_t, t) = run_product(&cells, &space, &dataset, None, Some(&store), threads);
        assert_identical(&pass_a, &pass_t, "thread-scaling pass");
        println!(
            "    {} thread(s): {:.2}s ({:.1} points/s)",
            threads,
            secs(t),
            points_per_pass as f64 / secs(t).max(1e-9)
        );
        threads_scaling.push((threads, secs(t)));
    }
    let t1 = threads_scaling[0].1;
    let t4 = threads_scaling[2].1;
    let scaling_4t = t1 / t4.max(1e-9);
    if cores >= 4 {
        assert!(
            scaling_4t >= 1.8,
            "4 workers must be ≥1.8× faster than 1 on a ≥4-core host \
             (got {scaling_4t:.2}× on {cores} cores)"
        );
    } else {
        println!("    ({cores}-core host: 4-thread ≥1.8× assert skipped)");
    }

    // ---- Level 1: the product through the result cache. Passes B–D share
    // one L3 store — the service configuration, where a long-running server
    // holds both levels open across jobs.
    println!("  pass B: cold cache…");
    let cache = Arc::new(SweepCache::new());
    let prefix_svc = Arc::new(PrefixStore::new());
    let (pass_b, t_cold) =
        run_product(&cells, &space, &dataset, Some(&cache), Some(&prefix_svc), 0);
    assert_identical(&pass_a, &pass_b, "cold-cache pass");
    let cold_stats = cache.stats();
    println!(
        "    cold: {:.2}s, {} entries, {} cross-cell hits",
        secs(t_cold),
        cold_stats.entries,
        cold_stats.hits
    );
    println!("  pass C: warm cache…");
    cache.reset_stats();
    let (pass_c, t_warm) =
        run_product(&cells, &space, &dataset, Some(&cache), Some(&prefix_svc), 0);
    assert_identical(&pass_a, &pass_c, "warm-cache pass");
    let warm_stats = cache.stats();
    assert_eq!(
        warm_stats.misses, 0,
        "a warm product sweep must evaluate nothing"
    );
    let warm_speedup = secs(t_uncached) / secs(t_warm).max(1e-9);
    let cold_speedup = secs(t_uncached) / secs(t_cold).max(1e-9);
    println!(
        "    uncached {:.2}s | cold {:.2}s ({:.2}×) | warm {:.3}s ({:.1}×, hit rate {:.3})",
        secs(t_uncached),
        secs(t_cold),
        cold_speedup,
        secs(t_warm),
        warm_speedup,
        warm_stats.hit_rate()
    );

    // ---- Persist / reload cycle.
    let cache_path = std::env::var("EFFICSENSE_CACHE_FILE").map_or_else(
        |_| figures_dir().join(format!("product_cache_{}.jsonl", sc.name())),
        std::path::PathBuf::from,
    );
    cache.save(&cache_path).expect("can persist cache file");
    let reloaded = Arc::new(SweepCache::new());
    let (loaded, skipped) = reloaded.load(&cache_path).expect("can reload cache file");
    println!(
        "  persisted {} entries → {} (reloaded {loaded}, skipped {skipped})",
        cache.len(),
        cache_path.display()
    );
    let (pass_d, t_reload) = run_product(
        &cells,
        &space,
        &dataset,
        Some(&reloaded),
        Some(&prefix_svc),
        0,
    );
    assert_identical(&pass_a, &pass_d, "reloaded-cache pass");
    assert_eq!(
        reloaded.stats().misses,
        0,
        "a reloaded cache must replay the product without evaluating"
    );

    // ---- Per-cell Pareto summary: CS share of the accuracy/power front.
    println!("  Pareto front CS share per cell:");
    for (cell, report) in cells.iter().zip(&pass_a) {
        let front = pareto_front(&report.results, Objective::MaximizeMetric);
        let cs = front
            .iter()
            .filter(|r| r.point.architecture == Architecture::CompressiveSensing)
            .count();
        println!(
            "    {:<22} {}/{} front points are CS ({} ok, {} quarantined)",
            cell.label,
            cs,
            front.len(),
            report.results.len(),
            report.quarantine.len()
        );
    }

    // ---- Telemetry: freeze the registry, show the per-stage breakdown and
    // check the span accounting identity — every stage's *self* time plus
    // the per-point overhead must reassemble the per-point wall time.
    let snap = obs_session.finish();
    let self_s = |n: &str| snap.span(n).map_or(0, |s| s.self_ns) as f64 / 1e9;
    let point = snap.span("sweep.point").expect("sweep.point span recorded");
    println!(
        "  telemetry: {} point spans ({:.2}s), stage breakdown:",
        point.count,
        point.total_ns as f64 / 1e9
    );
    for name in [
        "stage.simulate",
        "sim.analog",
        "sim.analog.build",
        "sim.sample.build",
        "sim.reference.build",
        "sim.encode",
        "stage.reconstruct",
        "recon.batch",
        "recon.bmat",
        "recon.cholup",
        "recon.gram",
        "stage.power",
        "stage.detect",
        "detect.infer",
    ] {
        if let Some(s) = snap.span(name) {
            println!(
                "    {:<18} total {:>8.2}s  self {:>8.2}s  ({} spans, mean {:.1} µs)",
                name,
                s.total_ns as f64 / 1e9,
                s.self_ns as f64 / 1e9,
                s.count,
                s.mean_ns() / 1e3
            );
        }
    }
    // The decode kernels are children of `stage.reconstruct` (and, for the
    // few training decodes, of `detect.train`), so their self times are part
    // of the per-point accounting identity.
    let stage_sum_s = self_s("sweep.point")
        + self_s("stage.simulate")
        + self_s("sim.analog")
        + self_s("sim.analog.build")
        + self_s("sim.sample.build")
        + self_s("sim.reference.build")
        + self_s("sim.encode")
        + self_s("stage.detect")
        + self_s("detect.infer")
        + self_s("stage.reconstruct")
        + self_s("recon.batch")
        + self_s("recon.bmat")
        + self_s("recon.cholup")
        + self_s("recon.gram")
        + self_s("stage.power");
    let stage_ratio = stage_sum_s / (point.total_ns as f64 / 1e9).max(1e-12);
    assert!(
        (0.9..=1.1).contains(&stage_ratio),
        "per-stage self times must sum to within 10% of per-point wall time \
         (got ratio {stage_ratio:.4})"
    );
    println!("    stage self-time sum / point wall time = {stage_ratio:.4}");

    // ---- BENCH_sweep.json for CI. `uncached_*` is the fresh-prefix-store
    // pass A (the gated headline); `prefix_off_s` documents the pre-L3 cost.
    let scaling_json = threads_scaling
        .iter()
        .map(|(threads, s)| {
            format!(
                "{{ \"threads\": {}, \"seconds\": {:?}, \"points_per_s\": {:?} }}",
                threads,
                s,
                points_per_pass as f64 / s.max(1e-9)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"cells\": {},\n  \"points_per_pass\": {},\n  \
         \"records\": {},\n  \"uncached_s\": {:?},\n  \"prefix_off_s\": {:?},\n  \
         \"prefix_speedup\": {:?},\n  \"cold_s\": {:?},\n  \"warm_s\": {:?},\n  \
         \"reload_s\": {:?},\n  \"cold_speedup\": {:?},\n  \"warm_speedup\": {:?},\n  \
         \"uncached_points_per_s\": {:?},\n  \"warm_points_per_s\": {:?},\n  \
         \"threads_scaling\": [{}],\n  \"scaling_4t\": {:?},\n  \
         \"cache_entries\": {},\n  \"cold_hits\": {},\n  \"cold_misses\": {},\n  \
         \"warm_hit_rate\": {:?},\n  \"prefix_store\": {{\n    \"analog_hits\": {},\n    \
         \"analog_misses\": {},\n    \"sampled_hits\": {},\n    \"sampled_misses\": {},\n    \
         \"reference_hits\": {},\n    \"reference_misses\": {},\n    \"acquired_hits\": {},\n    \
         \"acquired_misses\": {},\n    \"evictions\": {}\n  }},\n  \
         \"artifact_memo\": {{\n    \"cold_s\": {:?},\n    \
         \"warm_s\": {:?},\n    \"speedup\": {:?},\n    \"dictionary_builds\": {},\n    \"dictionary_hits\": {}\n  }},\n  \"profile\": {},\n  \"obs\": {}\n}}\n",
        sc.name(),
        cells.len(),
        points_per_pass,
        dataset.len(),
        secs(t_uncached),
        secs(t_prefix_off),
        prefix_speedup,
        secs(t_cold),
        secs(t_warm),
        secs(t_reload),
        cold_speedup,
        warm_speedup,
        points_per_pass as f64 / secs(t_uncached).max(1e-9),
        points_per_pass as f64 / secs(t_warm).max(1e-9),
        scaling_json,
        scaling_4t,
        cache.len(),
        cold_stats.hits,
        cold_stats.misses,
        warm_stats.hit_rate(),
        pstats.analog.hits,
        pstats.analog.misses,
        pstats.sampled.hits,
        pstats.sampled.misses,
        pstats.reference.hits,
        pstats.reference.misses,
        pstats.acquired.hits,
        pstats.acquired.misses,
        pstats.evictions(),
        secs(t_memo_cold),
        secs(t_memo_warm),
        artifact_speedup,
        dict_builds,
        dict_hits_within_sweep,
        efficsense_bench::profile_summary_json(&snap),
        snap.to_json()
    );
    std::fs::write("BENCH_sweep.json", &json).expect("can write BENCH_sweep.json");
    println!("  wrote BENCH_sweep.json");

    assert!(
        warm_speedup >= 3.0,
        "warm product sweep must be ≥3× faster than uncached (got {warm_speedup:.2}×)"
    );
    println!(
        "OK: warm product sweep {warm_speedup:.1}× faster than uncached, results bit-identical \
         across uncached/cold/warm/reload"
    );
}
