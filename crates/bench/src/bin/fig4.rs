//! Regenerates **Fig. 4**: sweeping the LNA input-referred noise of the
//! baseline acquisition system (sine input) and reporting system SNDR, total
//! power and the per-block power distribution.
//!
//! Run: `cargo run --release -p efficsense-bench --bin fig4`

use efficsense_bench::{save_figure, uw};
use efficsense_core::prelude::*;
use efficsense_dsp::metrics::sndr_db;
use efficsense_dsp::spectrum::{coherent_frequency, sine};
use efficsense_power::BlockKind;

fn main() {
    println!("=== Fig. 4: LNA noise sweep, baseline system, sine input ===");
    let noise_grid = efficsense_core::space::log_grid(
        1e-6,
        20e-6,
        if efficsense_bench::full_scale() {
            16
        } else {
            8
        },
    );
    // Test tone: 64 Hz (mid-band), 200 µV amplitude — a strong biosignal.
    let fs_in = 4096.0;
    let seconds = 8.0;
    let f0 = coherent_frequency(64.0, 537.6, (537.6 * seconds) as usize);
    let x = sine((fs_in * seconds) as usize, fs_in, f0, 200e-6, 0.0);

    let mut csv = String::from(
        "lna_noise_uvrms,sndr_db,total_uw,lna_uw,sh_uw,comparator_uw,sar_logic_uw,dac_uw,tx_uw\n",
    );
    println!(
        "{:>12} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "noise (µV)", "SNDR (dB)", "total (µW)", "LNA (µW)", "TX (µW)", "ADC (µW)"
    );
    for &vn in &noise_grid {
        let mut cfg = SystemConfig::baseline(8);
        cfg.lna.noise_floor_vrms = vn;
        let sim = Simulator::new(cfg).expect("valid config");
        let out = sim.run(&x, fs_in, 1);
        let sndr = sndr_db(&out.input_referred, out.fs_out, f0);
        let b = &out.power;
        let adc_total =
            b.get(BlockKind::Comparator) + b.get(BlockKind::SarLogic) + b.get(BlockKind::Dac);
        println!(
            "{:>12.2} {:>10.2} {:>12.3} {:>10.3} {:>10.3} {:>10.4}",
            vn * 1e6,
            sndr,
            b.total().value() * 1e6,
            b.get(BlockKind::Lna).value() * 1e6,
            b.get(BlockKind::Transmitter).value() * 1e6,
            adc_total.value() * 1e6
        );
        csv.push_str(&format!(
            "{:.3},{:.3},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            vn * 1e6,
            sndr,
            b.total().value() * 1e6,
            b.get(BlockKind::Lna).value() * 1e6,
            b.get(BlockKind::SampleHold).value() * 1e6,
            b.get(BlockKind::Comparator).value() * 1e6,
            b.get(BlockKind::SarLogic).value() * 1e6,
            b.get(BlockKind::Dac).value() * 1e6,
            b.get(BlockKind::Transmitter).value() * 1e6
        ));
    }
    save_figure("fig4_lna_noise_sweep.csv", &csv);
    println!();
    println!("Expected shape (paper): SNDR falls and LNA power collapses as the tolerated");
    println!(
        "noise floor rises; the transmitter ({}) becomes the power floor.",
        uw(4.3008e-6)
    );
}
