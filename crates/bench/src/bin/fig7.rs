//! Regenerates **Fig. 7**: the paper's central experiment.
//!
//! * Fig. 7a — Pareto fronts of SNR vs power for the baseline and CS systems.
//! * Fig. 7b — Pareto fronts of detection accuracy vs power, and the two
//!   "optimal design solutions" (minimum power at ≥ 98 % accuracy), whose
//!   power ratio is the paper's 3.6× headline.
//!
//! Run: `cargo run --release -p efficsense-bench --bin fig7`
//! (`EFFICSENSE_FULL=1` for paper-scale workloads.)

use efficsense_bench::{save_figure, sweep_cached, uw};
use efficsense_core::prelude::*;
use efficsense_core::sweep::{split_by_architecture, Metric};

fn front_csv(results: &[&SweepResult]) -> String {
    let mut s = String::from("power_uw,metric,label\n");
    for r in results {
        s.push_str(&format!(
            "{:.6},{:.6},{}\n",
            r.power_w * 1e6,
            r.metric,
            r.point.label()
        ));
    }
    s
}

fn report_fronts(name: &str, results: &[SweepResult]) -> (Vec<SweepResult>, Vec<SweepResult>) {
    let (base, cs) = split_by_architecture(results);
    let base_owned: Vec<SweepResult> = base.into_iter().cloned().collect();
    let cs_owned: Vec<SweepResult> = cs.into_iter().cloned().collect();
    let base_front = pareto_front(&base_owned, Objective::MaximizeMetric);
    let cs_front = pareto_front(&cs_owned, Objective::MaximizeMetric);
    println!("--- {name}: baseline Pareto front ---");
    for r in &base_front {
        println!(
            "  {:>10}  metric {:.4}  [{}]",
            uw(r.power_w),
            r.metric,
            r.point.label()
        );
    }
    println!("--- {name}: CS Pareto front ---");
    for r in &cs_front {
        println!(
            "  {:>10}  metric {:.4}  [{}]",
            uw(r.power_w),
            r.metric,
            r.point.label()
        );
    }
    save_figure(
        &format!("{name}_baseline_front.csv"),
        &front_csv(&base_front),
    );
    save_figure(&format!("{name}_cs_front.csv"), &front_csv(&cs_front));
    (base_owned, cs_owned)
}

fn main() {
    println!("=== Fig. 7a: SNR vs power ===");
    let snr_results = sweep_cached(Metric::Snr);
    let (snr_base, snr_cs) = report_fronts("fig7a", &snr_results);
    // The paper's observation: the baseline wins at high SNR, CS at low power.
    let best_base_snr = snr_base
        .iter()
        .map(|r| r.metric)
        .fold(f64::NEG_INFINITY, f64::max);
    let best_cs_snr = snr_cs
        .iter()
        .map(|r| r.metric)
        .fold(f64::NEG_INFINITY, f64::max);
    let min_base_p = snr_base
        .iter()
        .map(|r| r.power_w)
        .fold(f64::INFINITY, f64::min);
    let min_cs_p = snr_cs
        .iter()
        .map(|r| r.power_w)
        .fold(f64::INFINITY, f64::min);
    println!(
        "  max SNR: baseline {best_base_snr:.1} dB vs CS {best_cs_snr:.1} dB (paper: baseline wins)"
    );
    println!(
        "  min power: baseline {} vs CS {} (paper: CS wins)",
        uw(min_base_p),
        uw(min_cs_p)
    );

    println!();
    println!("=== Fig. 7b: detection accuracy vs power ===");
    let acc_results = sweep_cached(Metric::DetectionAccuracy);
    let (acc_base, acc_cs) = report_fronts("fig7b", &acc_results);

    let constraint = 0.98;
    let opt_base = efficsense_core::pareto::optimal_under_constraint(&acc_base, constraint);
    let opt_cs = efficsense_core::pareto::optimal_under_constraint(&acc_cs, constraint);
    println!();
    println!("=== Optimal design solutions (min power @ accuracy >= {constraint}) ===");
    match (opt_base, opt_cs) {
        (Some(b), Some(c)) => {
            println!(
                "  baseline: {} @ {:.1} % accuracy  [{}]",
                uw(b.power_w),
                b.metric * 100.0,
                b.point.label()
            );
            println!(
                "  CS      : {} @ {:.1} % accuracy  [{}]",
                uw(c.power_w),
                c.metric * 100.0,
                c.point.label()
            );
            let saving = b.power_w / c.power_w;
            println!("  power saving: {saving:.2}x (paper: 3.6x — 8.8 µW baseline vs 2.44 µW CS)");
            let summary = format!(
                "quantity,value\nbaseline_power_uw,{:.4}\nbaseline_accuracy,{:.4}\ncs_power_uw,{:.4}\ncs_accuracy,{:.4}\npower_saving_x,{:.4}\n",
                b.power_w * 1e6,
                b.metric,
                c.power_w * 1e6,
                c.metric,
                saving
            );
            save_figure("fig7b_optimal_points.csv", &summary);
        }
        _ => {
            println!("  constraint infeasible on this workload scale;");
            println!("  rerun with EFFICSENSE_FULL=1 or inspect the fronts above.");
        }
    }
}
