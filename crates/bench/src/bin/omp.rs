//! OMP decoder microbench: naive reference vs fast Gram/incremental-Cholesky
//! vs batched decode, at the sweep's default dictionary scale.
//!
//! Decodes a fixed population of synthetic sparse-plus-noise frames through
//! all three entry points, checks the fast paths agree with each other bit
//! for bit (and with the reference to 1e-9 in coefficients), and emits
//! `BENCH_omp.json` (decodes/sec per path) for CI trend tracking.
//!
//! Run: `cargo run --release -p efficsense-bench --bin omp`

use efficsense_cs::basis::Basis;
use efficsense_cs::decode::{reconstruct_batch, reconstruct_fast, OmpScratch};
use efficsense_cs::memo::DictionaryArtifacts;
use efficsense_cs::recon::{reconstruct_with_artifacts, OmpConfig};
use efficsense_cs::SensingMatrix;
use std::time::Instant;

/// SplitMix64 avalanche for deterministic frame synthesis.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(seed: u64) -> f64 {
    (mix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

fn main() {
    // The sweep's default CS design point: M=150 measurements over N_Φ=384
    // sample frames, s=2 SRBM, DCT dictionary, OMP sparsity budget 48.
    let m = 150;
    let n = 384;
    let phi = SensingMatrix::srbm(m, n, 2, 0x0B_E7C4).to_dense();
    let dict = phi.matmul(&Basis::Dct.matrix(n));
    let art = DictionaryArtifacts::from_dictionary(dict, Basis::Dct, 1.0);
    let cfg = OmpConfig {
        sparsity: 48,
        residual_tol: 1e-3,
    };

    let n_frames = 24usize;
    let frames: Vec<Vec<f64>> = (0..n_frames as u64)
        .map(|f| {
            let mut s = vec![0.0; n];
            for i in 0..8u64 {
                let j = (mix(f ^ (i << 9)) as usize) % n;
                s[j] = 2.0 * unit(f ^ i) - 1.0 + 0.05;
            }
            let x = Basis::Dct.synthesize(&s);
            let mut y = art.dictionary.matvec(&x);
            for (i, v) in y.iter_mut().enumerate() {
                *v += 1e-4 * (2.0 * unit(f ^ 0xA015E ^ ((i as u64) << 20)) - 1.0);
            }
            y
        })
        .collect();
    let cfgs = vec![cfg.clone(); n_frames];

    // Correctness first: fast single == batched single-thread, bitwise.
    let mut ws = OmpScratch::new();
    let batched_once = reconstruct_batch(&art, &frames, &cfgs, 1);
    for (r, frame) in frames.iter().enumerate() {
        let single = reconstruct_fast(&art, frame, &cfg, &mut ws);
        assert_eq!(
            batched_once[r], single,
            "batch and single fast decode must agree bit for bit"
        );
        let reference =
            reconstruct_with_artifacts(&art.dictionary, &art.col_norms, frame, Basis::Dct, &cfg);
        for (a, b) in reference.iter().zip(&single) {
            assert!(
                (a - b).abs() < 1e-6,
                "fast decode must track the reference (got {a} vs {b})"
            );
        }
    }

    // Timed passes: decode the population `reps` times per path.
    let time_path = |label: &str, reps: usize, f: &mut dyn FnMut()| -> f64 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        let rate = (reps * n_frames) as f64 / dt.max(1e-9);
        println!(
            "  {label:<8} {:>8.1} decodes/s  ({:.3} ms/decode)",
            rate,
            1e3 * dt / (reps * n_frames) as f64
        );
        rate
    };

    println!(
        "OMP decode microbench: M={m}, N={n}, sparsity={}",
        cfg.sparsity
    );
    let naive_rate = time_path("naive", 2, &mut || {
        for frame in &frames {
            std::hint::black_box(reconstruct_with_artifacts(
                &art.dictionary,
                &art.col_norms,
                frame,
                Basis::Dct,
                &cfg,
            ));
        }
    });
    let fast_rate = time_path("fast", 20, &mut || {
        for frame in &frames {
            std::hint::black_box(reconstruct_fast(&art, frame, &cfg, &mut ws));
        }
    });
    let batched_rate = time_path("batched", 20, &mut || {
        std::hint::black_box(reconstruct_batch(&art, &frames, &cfgs, 1));
    });

    let speedup = fast_rate / naive_rate.max(1e-9);
    let json = format!(
        "{{\n  \"m\": {m},\n  \"n\": {n},\n  \"sparsity\": {},\n  \"frames\": {n_frames},\n  \
         \"naive_decodes_per_s\": {naive_rate:?},\n  \"fast_decodes_per_s\": {fast_rate:?},\n  \
         \"batched_decodes_per_s\": {batched_rate:?},\n  \"fast_over_naive\": {speedup:?}\n}}\n",
        cfg.sparsity
    );
    std::fs::write("BENCH_omp.json", &json).expect("can write BENCH_omp.json");
    println!("  wrote BENCH_omp.json (fast/naive = {speedup:.1}×)");

    assert!(
        speedup >= 5.0,
        "fast OMP path must be ≥5× the naive reference (got {speedup:.2}×)"
    );
}
