//! Diagnostic: per-imperfection breakdown of CS chain quality — which
//! analog non-ideality (mismatch, kT/C, leakage, quantisation) costs how
//! much reconstruction SNR and detection accuracy.
//!
//! Run: `cargo run --release -p efficsense-bench --bin cs_debug`
use efficsense_blocks::cs_frontend::EncoderImperfections;
use efficsense_core::config::{CsConfig, SystemConfig};
use efficsense_core::detector::SeizureDetector;
use efficsense_core::simulate::Simulator;
use efficsense_dsp::metrics::snr_fit_db;
use efficsense_signals::{DatasetConfig, EegDataset};

fn main() {
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 5,
        duration_s: 8.0,
        ..Default::default()
    });
    let det = SeizureDetector::train(&ds, 537.6, 0xD0D0);
    println!("clean accuracy: {:.3}", det.clean_accuracy(&ds));
    for (label, bits, cmp_noise, imp, leak_only) in [
        (
            "ideal enc, 14b, no cmp noise",
            14u32,
            0.0,
            EncoderImperfections::ideal(),
            false,
        ),
        (
            "ideal enc, 8b",
            8,
            100e-6,
            EncoderImperfections::ideal(),
            false,
        ),
        (
            "mismatch only, 8b",
            8,
            100e-6,
            EncoderImperfections {
                mismatch: true,
                ktc_noise: false,
                leakage: false,
            },
            false,
        ),
        (
            "ktc only, 8b",
            8,
            100e-6,
            EncoderImperfections {
                mismatch: false,
                ktc_noise: true,
                leakage: false,
            },
            false,
        ),
        (
            "leak only, 8b",
            8,
            100e-6,
            EncoderImperfections {
                mismatch: false,
                ktc_noise: false,
                leakage: true,
            },
            false,
        ),
        (
            "realistic, 8b",
            8,
            100e-6,
            EncoderImperfections::realistic(),
            false,
        ),
    ] {
        let _ = leak_only;
        let mut cfg = SystemConfig::compressive(
            8,
            CsConfig {
                m: 150,
                omp_sparsity: 50,
                imperfections: imp,
                ..Default::default()
            },
        );
        cfg.design.n_bits = bits;
        cfg.lna.noise_floor_vrms = 1e-6;
        cfg.adc.comparator_noise_v = cmp_noise;
        let sim = Simulator::new(cfg).unwrap();
        let mut snr_sum = 0.0;
        let mut correct = 0;
        let mut n = 0;
        for r in &ds.records {
            let out = sim.run(&r.samples, r.fs, r.id as u64 + 1);
            snr_sum += snr_fit_db(&out.reference, &out.input_referred);
            if det.predict(&out.input_referred, out.fs_out) == r.label() {
                correct += 1;
            }
            n += 1;
        }
        println!(
            "{label:<32} mean SNR {:>6.2} dB   acc {:.3}",
            snr_sum / n as f64,
            correct as f64 / n as f64
        );
    }
}
