//! Diagnostic: calibration scan of detection accuracy vs LNA noise floor
//! for both architectures on a dense noise grid — the tool used to tune the
//! synthetic corpus and decoder so the Fig. 7b trade-off is observable.
//!
//! Run: `cargo run --release -p efficsense-bench --bin calibrate`
use efficsense_core::prelude::*;
use efficsense_core::sweep::{Metric, Sweep, SweepConfig};
use efficsense_signals::DatasetConfig;

fn main() {
    let dataset = EegDataset::generate(&DatasetConfig {
        records_per_class: 5,
        duration_s: 8.0,
        ..Default::default()
    });
    let space = DesignSpace {
        lna_noise_vrms: vec![1e-6, 2e-6, 4e-6, 8e-6, 14e-6, 20e-6],
        n_bits: vec![8],
        cs_m: vec![75, 150],
        cs_s: vec![2],
        cs_c_hold_f: vec![0.5e-12],
        ..DesignSpace::paper_defaults()
    };
    let results = Sweep::new(SweepConfig {
        metric: Metric::DetectionAccuracy,
        ..Default::default()
    })
    .run(&space, &dataset);
    for r in &results {
        println!(
            "{:<34} acc {:.3}  {:>8.3} µW",
            r.point.label(),
            r.metric,
            r.power_w * 1e6
        );
    }
}
