//! Degradation curves from full-space Pareto fronts: detection accuracy vs
//! fault severity, per fault kind and architecture.
//!
//! For every `(fault kind, severity)` cell, the *entire* design space is
//! swept through the product-sweep engine under that cell's fault plan,
//! and the per-architecture accuracy/power Pareto front is extracted. The
//! degradation curve of a fault kind is then the best front accuracy per
//! severity — how much headroom the whole design space retains, not how
//! one hand-picked representative point suffers. Severity-0 cells share
//! one clean evaluation per design point through the L1 sweep cache
//! (every clean plan canonicalises to the same key).
//!
//! The output CSV (`target/figures/robustness_<scale>.csv`) carries one
//! row per `(fault, severity, architecture)` with the front size and the
//! best point on the front; failed cells quarantine to a
//! `robustness_<scale>_quarantine.csv` sibling instead of aborting the
//! grid, mirroring the `product` sweep's scheme.
//!
//! Run: `cargo run --release -p efficsense-bench --bin robustness`
//! (`EFFICSENSE_SCALE=medium|full` widens the severity grid and workload;
//! `--trace <path>.jsonl` / `--metrics <path>.json` stream telemetry.)

use efficsense_bench::{
    dataset_config, design_space, obs_from_args, persist_quarantine, save_figure, scale, Scale,
};
use efficsense_core::cache::SweepCache;
use efficsense_core::prelude::*;
use efficsense_core::sweep::{FailurePolicy, Metric, QuarantinedPoint, SweepReport};
use std::sync::Arc;

/// Master seed of every injected fault stream (kept fixed so reruns are
/// bit-identical).
const FAULT_SEED: u64 = 0xFA_017;

/// The architecture a fault kind natively lives on (used for the
/// monotonicity report; both architectures are swept regardless).
fn native_architecture(kind: FaultKind) -> Architecture {
    match kind {
        FaultKind::CapLeakage => Architecture::CompressiveSensing,
        _ => Architecture::Baseline,
    }
}

/// The best (highest-accuracy) point of one architecture's Pareto front
/// in one severity cell.
struct FrontRow {
    kind: FaultKind,
    severity: f64,
    architecture: Architecture,
    front_size: usize,
    best_accuracy: f64,
    best_power_uw: f64,
    best_area_units: f64,
}

/// Extracts one architecture's accuracy/power Pareto front from a cell's
/// sweep results and summarises its best point.
fn front_row(
    kind: FaultKind,
    severity: f64,
    architecture: Architecture,
    results: &[SweepResult],
) -> Option<FrontRow> {
    let arch: Vec<SweepResult> = results
        .iter()
        .filter(|r| r.point.architecture == architecture)
        .cloned()
        .collect();
    let front = pareto_front(&arch, Objective::MaximizeMetric);
    let best = front.iter().max_by(|a, b| a.metric.total_cmp(&b.metric))?;
    Some(FrontRow {
        kind,
        severity,
        architecture,
        front_size: front.len(),
        best_accuracy: best.metric,
        best_power_uw: best.power_w * 1e6,
        best_area_units: best.area_units,
    })
}

fn main() {
    let obs_session = obs_from_args();
    let severities: &[f64] = match scale() {
        Scale::Reduced => &[0.0, 0.5, 1.0],
        Scale::Medium | Scale::Full => &[0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let dataset = EegDataset::generate(&dataset_config());
    let space = design_space();
    let points_per_cell = space.points().len();
    let cache = Arc::new(SweepCache::new());

    println!(
        "=== Robustness: {} fault kinds x {} severities, full {}-point space over {} records ===",
        FaultKind::ALL.len(),
        severities.len(),
        points_per_cell,
        dataset.len()
    );

    let sweep_cell = |plan: Option<FaultPlan>| -> SweepReport {
        let _cell_span = efficsense_obs::span!("robustness.cell");
        Sweep::new(SweepConfig {
            metric: Metric::DetectionAccuracy,
            failure_policy: FailurePolicy::Skip,
            fault_plan: plan,
            ..Default::default()
        })
        .with_cache(Arc::clone(&cache))
        .run_report(&space, &dataset)
    };

    let mut rows: Vec<FrontRow> = Vec::new();
    let mut quarantine: Vec<QuarantinedPoint> = Vec::new();
    let mut cell_index = 0usize;
    for kind in FaultKind::ALL {
        for &severity in severities {
            // Severity 0 is the clean plan for every kind; the shared cache
            // collapses those cells onto one evaluation per design point.
            let plan = (severity > 0.0).then(|| FaultPlan::single(kind, severity, FAULT_SEED));
            let report = sweep_cell(plan);
            for mut q in report.quarantine {
                // Re-index into the cell grid so quarantine rows from
                // different cells stay distinguishable.
                q.index += cell_index * points_per_cell;
                quarantine.push(q);
            }
            for architecture in [Architecture::Baseline, Architecture::CompressiveSensing] {
                rows.extend(front_row(kind, severity, architecture, &report.results));
            }
            cell_index += 1;
        }
        let native = native_architecture(kind);
        let shown: Vec<String> = rows
            .iter()
            .filter(|r| r.kind == kind && r.architecture == native)
            .map(|r| format!("{:.0}%@{:.2}", r.best_accuracy * 100.0, r.severity))
            .collect();
        println!(
            "  {kind:<16} ({native}): best front accuracy {}",
            shown.join(" -> ")
        );
    }

    let mut csv = String::from(
        "fault,severity,architecture,front_size,best_accuracy,best_power_uw,best_area_units\n",
    );
    for r in &rows {
        csv.push_str(&format!(
            "{},{:.2},{},{},{:.6},{:.4},{:.1}\n",
            r.kind,
            r.severity,
            r.architecture,
            r.front_size,
            r.best_accuracy,
            r.best_power_uw,
            r.best_area_units,
        ));
    }
    let results_name = format!("robustness_{}.csv", scale().name());
    save_figure(&results_name, &csv);

    // Persist the quarantine next to the results CSV (header-only when every
    // cell evaluated), mirroring the product sweep's scheme.
    let total_cells = FaultKind::ALL.len() * severities.len() * points_per_cell;
    let report = SweepReport {
        results: Vec::new(),
        quarantine,
        points_total: total_cells,
    };
    persist_quarantine(&results_name, &report);

    // Monotonicity report: on its native architecture, the best achievable
    // accuracy should never improve as severity rises (small tolerance for
    // detector granularity — one flipped record on a reduced workload moves
    // accuracy by 1/len).
    let tolerance = 1.0 / dataset.len() as f64 + 1e-9;
    let mut monotone = 0usize;
    println!();
    for kind in FaultKind::ALL {
        let native = native_architecture(kind);
        let curve: Vec<f64> = rows
            .iter()
            .filter(|r| r.kind == kind && r.architecture == native)
            .map(|r| r.best_accuracy)
            .collect();
        let ok = curve.windows(2).all(|w| w[1] <= w[0] + tolerance);
        let degrades = curve.last().copied().unwrap_or(1.0)
            < curve.first().copied().unwrap_or(1.0) - tolerance;
        if ok && degrades {
            monotone += 1;
        }
        println!(
            "  {kind:<16} monotone-degrading on {native}: {}",
            if ok && degrades { "yes" } else { "no" }
        );
    }
    println!();
    println!(
        "{monotone}/{} fault kinds degrade best-front accuracy monotonically on their native architecture",
        FaultKind::ALL.len()
    );

    // Cache effectiveness (severity-0 dedupe across kinds) and per-cell
    // throughput straight from the obs registry.
    let stats = cache.stats();
    println!();
    println!(
        "  L1 cache: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    let snap = obs_session.finish();
    if let Some(s) = snap.span("robustness.cell") {
        let secs = s.total_ns as f64 / 1e9;
        println!(
            "  {} severity cells in {secs:.2}s ({:.2} cells/s)",
            s.count,
            s.count as f64 / secs.max(1e-9)
        );
    }

    // BENCH_robustness.json: the matrix verdicts plus the per-stage
    // profile, mirroring the product/longevity summaries for CI trends.
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"fault_kinds\": {},\n  \"severity_steps\": {},\n  \
         \"points_per_cell\": {},\n  \"monotone_kinds\": {monotone},\n  \
         \"quarantined\": {},\n  \"l1_entries\": {},\n  \"l1_hits\": {},\n  \
         \"l1_misses\": {},\n  \"profile\": {}\n}}\n",
        scale().name(),
        FaultKind::ALL.len(),
        severities.len(),
        points_per_cell,
        report.quarantine.len(),
        stats.entries,
        stats.hits,
        stats.misses,
        efficsense_bench::profile_summary_json(&snap)
    );
    std::fs::write("BENCH_robustness.json", &json).expect("can write BENCH_robustness.json");
    println!("  wrote BENCH_robustness.json");

    assert!(
        monotone >= 3,
        "expected at least 3 monotone-degrading fault kinds, got {monotone}"
    );
}
