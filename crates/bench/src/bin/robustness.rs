//! Degradation curves: detection accuracy (and SNR) vs fault severity.
//!
//! For every fault kind of the [`efficsense_faults`] taxonomy, a
//! representative design point of each architecture is re-simulated across a
//! severity grid and scored with the Fig. 7b detection goal. The output CSV
//! (`target/figures/robustness_<scale>.csv`) carries one row per
//! `(fault, severity, architecture)` triple, ready for degradation-curve
//! plotting; the binary also reports which kinds degrade monotonically on
//! their native architecture.
//!
//! Run: `cargo run --release -p efficsense-bench --bin robustness`
//! (`EFFICSENSE_SCALE=medium|full` widens the severity grid and workload;
//! `--trace <path>.jsonl` / `--metrics <path>.json` stream telemetry.)
//!
//! Failed cells are quarantined to a `robustness_<scale>_quarantine.csv`
//! sibling of the results CSV (the same scheme `product` uses) instead of
//! aborting the whole grid.

use efficsense_bench::{
    dataset_config, design_space, obs_from_args, persist_quarantine, save_figure, scale, Scale,
};
use efficsense_core::goal::{DetectionGoal, SnrGoal};
use efficsense_core::prelude::*;
use efficsense_core::simulate::SimOutput;
use efficsense_core::sweep::{panic_message, PointError, QuarantinedPoint, SweepReport};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Master seed of every injected fault stream (kept fixed so reruns are
/// bit-identical).
const FAULT_SEED: u64 = 0xFA_017;

/// One evaluated `(fault, severity, architecture)` cell.
struct Cell {
    kind: FaultKind,
    severity: f64,
    point: DesignPoint,
    accuracy: f64,
    snr_db: f64,
    power_uw: f64,
    delivery_ratio: Option<f64>,
}

/// `(accuracy, snr_db, power_uw, delivery_ratio)` for one evaluated cell.
type Scores = (f64, f64, f64, Option<f64>);

/// Runs one architecture's representative chain under `plan` over the whole
/// dataset and scores it with both goals. The whole evaluation runs behind a
/// panic boundary and inside a per-architecture span so the grid survives a
/// misbehaving model and the obs registry can report per-architecture
/// throughput afterwards.
fn evaluate(
    point: &DesignPoint,
    template: &SystemConfig,
    dataset: &EegDataset,
    detection: &DetectionGoal,
    plan: &FaultPlan,
) -> Result<Scores, PointError> {
    let _arch_span = match point.architecture {
        Architecture::Baseline => efficsense_obs::span!("robustness.arch.baseline"),
        Architecture::CompressiveSensing => efficsense_obs::span!("robustness.arch.cs"),
    };
    catch_unwind(AssertUnwindSafe(|| -> Result<Scores, PointError> {
        let cfg = point.to_config(template);
        let mut sim = Simulator::new(cfg).map_err(PointError::Config)?;
        sim.set_fault_plan(Some(plan.clone()));
        let outputs: Vec<(SimOutput, usize)> = dataset
            .records
            .iter()
            .map(|rec| {
                let out = sim.run(&rec.samples, rec.fs, rec.id as u64 + 1);
                (out, rec.label())
            })
            .collect();
        let accuracy = detection.evaluate(&outputs);
        let snr_db = SnrGoal.evaluate(&outputs);
        let power_uw = outputs[0].0.power.total().value() * 1e6;
        if !accuracy.is_finite() || !power_uw.is_finite() {
            return Err(PointError::NonFinite(format!(
                "accuracy={accuracy}, power_uw={power_uw}"
            )));
        }
        let delivery_ratio = outputs[0].0.link.as_ref().map(|l| l.delivery_ratio());
        Ok((accuracy, snr_db, power_uw, delivery_ratio))
    }))
    .unwrap_or_else(|payload| Err(PointError::Panicked(panic_message(payload.as_ref()))))
}

/// The architecture a fault kind natively lives on (used for the
/// monotonicity report; both architectures are swept regardless).
fn native_architecture(kind: FaultKind) -> Architecture {
    match kind {
        FaultKind::CapLeakage => Architecture::CompressiveSensing,
        _ => Architecture::Baseline,
    }
}

fn main() {
    let obs_session = obs_from_args();
    let severities: &[f64] = match scale() {
        Scale::Reduced => &[0.0, 0.5, 1.0],
        Scale::Medium | Scale::Full => &[0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let dataset = EegDataset::generate(&dataset_config());
    let space = design_space();
    let template = &space.template;

    // Representative points: the template's own defaults on each chain.
    let representatives = [
        DesignPoint {
            architecture: Architecture::Baseline,
            lna_noise_vrms: template.lna.noise_floor_vrms,
            n_bits: template.design.n_bits,
            m: None,
            s: None,
            c_hold_f: None,
        },
        DesignPoint {
            architecture: Architecture::CompressiveSensing,
            lna_noise_vrms: template.lna.noise_floor_vrms,
            n_bits: template.design.n_bits,
            m: None, // to_config falls back to the template's CS defaults
            s: None,
            c_hold_f: None,
        },
    ];

    println!(
        "=== Robustness: {} fault kinds x {} severities x 2 architectures over {} records ===",
        FaultKind::ALL.len(),
        severities.len(),
        dataset.len()
    );
    let fs = template.design.f_sample_hz();
    let detector = SeizureDetector::train_epoched(&dataset, fs, 2.0, 0xD0D0);
    let detection = DetectionGoal::new(detector);

    // Severity 0 is the same clean plan for every kind — evaluate it once
    // per architecture and share the row across kinds.
    let clean: Vec<Result<Scores, PointError>> = representatives
        .iter()
        .map(|p| {
            evaluate(
                p,
                template,
                &dataset,
                &detection,
                &FaultPlan::clean(FAULT_SEED),
            )
        })
        .collect();

    let total_cells = FaultKind::ALL.len() * severities.len() * representatives.len();
    let mut quarantine: Vec<QuarantinedPoint> = Vec::new();
    let mut cell_index = 0usize;
    let mut cells: Vec<Cell> = Vec::new();
    for kind in FaultKind::ALL {
        for &severity in severities {
            for (p, clean_scores) in representatives.iter().zip(&clean) {
                let scores = if severity > 0.0 {
                    let plan = FaultPlan::single(kind, severity, FAULT_SEED);
                    evaluate(p, template, &dataset, &detection, &plan)
                } else {
                    clean_scores.clone()
                };
                match scores {
                    Ok((accuracy, snr_db, power_uw, delivery_ratio)) => cells.push(Cell {
                        kind,
                        severity,
                        point: p.clone(),
                        accuracy,
                        snr_db,
                        power_uw,
                        delivery_ratio,
                    }),
                    Err(error) => quarantine.push(QuarantinedPoint {
                        index: cell_index,
                        point: p.clone(),
                        error,
                        retries: 0,
                    }),
                }
                cell_index += 1;
            }
        }
        let shown: Vec<String> = cells
            .iter()
            .filter(|c| c.kind == kind && c.point.architecture == native_architecture(kind))
            .map(|c| format!("{:.0}%@{:.2}", c.accuracy * 100.0, c.severity))
            .collect();
        println!(
            "  {kind:<16} ({}): accuracy {}",
            native_architecture(kind),
            shown.join(" -> ")
        );
    }

    let mut csv =
        String::from("fault,severity,architecture,accuracy,snr_db,power_uw,delivery_ratio\n");
    for c in &cells {
        csv.push_str(&format!(
            "{},{:.2},{},{:.6},{:.4},{:.4},{}\n",
            c.kind,
            c.severity,
            c.point.architecture,
            c.accuracy,
            c.snr_db,
            c.power_uw,
            c.delivery_ratio
                .map_or(String::new(), |r| format!("{r:.6}")),
        ));
    }
    let results_name = format!("robustness_{}.csv", scale().name());
    save_figure(&results_name, &csv);

    // Persist the quarantine next to the results CSV (header-only when every
    // cell evaluated), mirroring the product sweep's scheme.
    let report = SweepReport {
        results: Vec::new(),
        quarantine,
        points_total: total_cells,
    };
    persist_quarantine(&results_name, &report);

    // Monotonicity report: on its native architecture, accuracy should never
    // improve as severity rises (small tolerance for detector granularity —
    // one flipped record on a reduced workload moves accuracy by 1/len).
    let tolerance = 1.0 / dataset.len() as f64 + 1e-9;
    let mut monotone = 0usize;
    println!();
    for kind in FaultKind::ALL {
        let native = native_architecture(kind);
        let curve: Vec<f64> = cells
            .iter()
            .filter(|c| c.kind == kind && c.point.architecture == native)
            .map(|c| c.accuracy)
            .collect();
        let ok = curve.windows(2).all(|w| w[1] <= w[0] + tolerance);
        let degrades = curve.last().copied().unwrap_or(1.0)
            < curve.first().copied().unwrap_or(1.0) - tolerance;
        if ok && degrades {
            monotone += 1;
        }
        println!(
            "  {kind:<16} monotone-degrading on {native}: {}",
            if ok && degrades { "yes" } else { "no" }
        );
    }
    println!();
    println!(
        "{monotone}/{} fault kinds degrade accuracy monotonically on their native architecture",
        FaultKind::ALL.len()
    );

    // Per-architecture throughput straight from the obs registry: each
    // `evaluate` call is one point timed under its architecture's span.
    let snap = obs_session.finish();
    println!();
    for (span_name, label) in [
        ("robustness.arch.baseline", "baseline"),
        ("robustness.arch.cs", "compressive-sensing"),
    ] {
        if let Some(s) = snap.span(span_name) {
            let secs = s.total_ns as f64 / 1e9;
            println!(
                "  {label:<20} {} points in {secs:.2}s ({:.2} points/s)",
                s.count,
                s.count as f64 / secs.max(1e-9)
            );
        }
    }

    assert!(
        monotone >= 3,
        "expected at least 3 monotone-degrading fault kinds, got {monotone}"
    );
}
