//! Ablation studies of the design choices DESIGN.md calls out (beyond the
//! paper's own figures):
//!
//! 1. ideal-MVM vs behavioural charge-sharing encoding (cost of passivity);
//! 2. naive binary-Φ vs Eq. (1)-aware vs leakage-aware decoding;
//! 3. sparsifying basis choice (DCT / Haar / Db4 / identity);
//! 4. OMP vs FISTA reconstruction;
//! 5. dense Bernoulli vs s-SRBM sensing matrices;
//! 6. encoder imperfection injection (mismatch / kT/C / leakage);
//! 7. passive charge-sharing vs active OTA-integrator encoder power.
//!
//! Run: `cargo run --release -p efficsense-bench --bin ablations`

use efficsense_bench::{save_figure, uw};
use efficsense_blocks::cs_frontend::{ChargeSharingEncoder, EncoderImperfections};
use efficsense_blocks::ActiveCsEncoder;
use efficsense_cs::basis::Basis;
use efficsense_cs::charge_sharing::{effective_matrix, effective_matrix_decayed};
use efficsense_cs::linalg::Matrix;
use efficsense_cs::matrix::SensingMatrix;
use efficsense_cs::recon::{ista, omp, reconstruct_with_dictionary, OmpConfig};
use efficsense_dsp::metrics::snr_fit_db;
use efficsense_power::models::{CsEncoderLogicModel, PowerModel};
use efficsense_power::ota::OtaIntegratorModel;
use efficsense_power::{DesignParams, TechnologyParams};
use efficsense_signals::{DatasetConfig, EegClass, EegDataset};

const M: usize = 150;
const N_PHI: usize = 384;
const C_S: f64 = 0.1e-12;
const C_H: f64 = 0.5e-12;

struct Context {
    tech: TechnologyParams,
    design: DesignParams,
    phi: SensingMatrix,
    frames: Vec<Vec<f64>>,
}

fn mean_snr(
    ctx: &Context,
    decode: &Matrix,
    basis: Basis,
    encode: &mut dyn FnMut(&[f64]) -> Vec<f64>,
) -> f64 {
    let dict = decode.matmul(&basis.matrix(N_PHI));
    let omp_cfg = OmpConfig {
        sparsity: 2 * M / 5,
        residual_tol: 1e-3,
    };
    let mut acc = 0.0;
    for frame in &ctx.frames {
        let y = encode(frame);
        let xh = reconstruct_with_dictionary(&dict, &y, basis, &omp_cfg);
        acc += snr_fit_db(frame, &xh).min(60.0);
    }
    acc / ctx.frames.len() as f64
}

fn passive_encoder(ctx: &Context, imp: EncoderImperfections) -> ChargeSharingEncoder {
    ChargeSharingEncoder::new(
        ctx.phi.clone(),
        C_S,
        C_H,
        1.0 / ctx.design.f_sample_hz(),
        imp,
        &ctx.tech,
        &ctx.design,
        42,
    )
}

fn main() {
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let phi = SensingMatrix::srbm(M, N_PHI, 2, 0xAB1A);
    // EEG frames at the front-end sample rate, scaled to LNA-output volts.
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 2,
        duration_s: 8.0,
        ..Default::default()
    });
    let gain = 4000.0;
    let mut frames = Vec::new();
    for r in ds
        .by_class(EegClass::Seizure)
        .chain(ds.by_class(EegClass::Normal))
    {
        let resampled = r.resampled(design.f_sample_hz());
        for chunk in resampled.samples.chunks_exact(N_PHI) {
            frames.push(chunk.iter().map(|v| v * gain).collect::<Vec<f64>>());
        }
    }
    let ctx = Context {
        tech,
        design,
        phi,
        frames,
    };
    println!(
        "ablations over {} EEG frames (M={M}, N_Φ={N_PHI})\n",
        ctx.frames.len()
    );
    let mut csv = String::from("ablation,variant,snr_db_or_uw\n");

    // 1 + 2: encoding/decoding model fidelity.
    println!("=== encoder/decoder model ablation (reconstruction SNR, dB) ===");
    let ideal_eff = effective_matrix(&ctx.phi, C_S, C_H);
    let decay = {
        let tau = C_H * ctx.design.v_ref / ctx.tech.i_leak_a;
        (-(1.0 / ctx.design.f_sample_hz()) / tau).exp()
    };
    let leak_eff = effective_matrix_decayed(&ctx.phi, C_S, C_H, decay);
    let binary = ctx.phi.to_dense();
    let cases: Vec<(&str, Matrix, EncoderImperfections)> = vec![
        (
            "ideal-mvm encode, eq1 decode",
            ideal_eff.clone(),
            EncoderImperfections::ideal(),
        ),
        (
            "real encode, naive binary decode",
            binary,
            EncoderImperfections::realistic(),
        ),
        (
            "real encode, eq1 decode (no leak model)",
            ideal_eff.clone(),
            EncoderImperfections::realistic(),
        ),
        (
            "real encode, leak-aware decode",
            leak_eff.clone(),
            EncoderImperfections::realistic(),
        ),
    ];
    for (label, decode, imp) in cases {
        let mut enc = passive_encoder(&ctx, imp);
        let is_ideal = imp == EncoderImperfections::ideal();
        let mut encode = |frame: &[f64]| -> Vec<f64> {
            if is_ideal {
                ideal_eff.matvec(frame)
            } else {
                enc.encode_frame(frame)
            }
        };
        let snr = mean_snr(&ctx, &decode, Basis::Dct, &mut encode);
        println!("  {label:<42} {snr:>7.2} dB");
        csv.push_str(&format!("decode_model,{label},{snr:.3}\n"));
    }

    // 3: basis choice (leak-aware decode, realistic encoder).
    println!("\n=== sparsifying basis ablation ===");
    for basis in [Basis::Dct, Basis::Haar, Basis::Db4, Basis::Identity] {
        let mut enc = passive_encoder(&ctx, EncoderImperfections::realistic());
        let mut encode = |frame: &[f64]| enc.encode_frame(frame);
        let snr = mean_snr(&ctx, &leak_eff, basis, &mut encode);
        println!("  {basis:<10} {snr:>7.2} dB");
        csv.push_str(&format!("basis,{basis},{snr:.3}\n"));
    }

    // 4: OMP vs FISTA.
    println!("\n=== decoder algorithm ablation ===");
    {
        let dict = leak_eff.matmul(&Basis::Dct.matrix(N_PHI));
        let mut enc = passive_encoder(&ctx, EncoderImperfections::realistic());
        let mut snr_omp = 0.0;
        let mut snr_ista = 0.0;
        for frame in &ctx.frames {
            let y = enc.encode_frame(frame);
            let s1 = omp(
                &dict,
                &y,
                &OmpConfig {
                    sparsity: 2 * M / 5,
                    residual_tol: 1e-3,
                },
            );
            let x1 = Basis::Dct.synthesize(&s1);
            snr_omp += snr_fit_db(frame, &x1).min(60.0);
            let lambda = 1e-3 * efficsense_cs::linalg::norm2(&y);
            let s2 = ista(&dict, &y, lambda, 150);
            let x2 = Basis::Dct.synthesize(&s2);
            snr_ista += snr_fit_db(frame, &x2).min(60.0);
        }
        let n = ctx.frames.len() as f64;
        println!("  OMP (k={})   {:>7.2} dB", 2 * M / 5, snr_omp / n);
        println!("  FISTA (150it) {:>6.2} dB", snr_ista / n);
        csv.push_str(&format!("decoder,omp,{:.3}\n", snr_omp / n));
        csv.push_str(&format!("decoder,fista,{:.3}\n", snr_ista / n));
    }

    // 5: sensing matrix family (ideal MVM encode — isolates the matrix).
    println!("\n=== sensing matrix family ablation (ideal encode) ===");
    for (label, mat) in [
        ("srbm_s2", SensingMatrix::srbm(M, N_PHI, 2, 1).to_dense()),
        ("srbm_s4", SensingMatrix::srbm(M, N_PHI, 4, 1).to_dense()),
        (
            "bernoulli",
            SensingMatrix::bernoulli(M, N_PHI, 1).to_dense(),
        ),
        ("gaussian", SensingMatrix::gaussian(M, N_PHI, 1).to_dense()),
    ] {
        let mat_clone = mat.clone();
        let mut encode = move |frame: &[f64]| mat_clone.matvec(frame);
        let snr = mean_snr(&ctx, &mat, Basis::Dct, &mut encode);
        println!("  {label:<10} {snr:>7.2} dB");
        csv.push_str(&format!("matrix,{label},{snr:.3}\n"));
    }

    // 6: imperfection injection.
    println!("\n=== imperfection injection (realistic decode) ===");
    for (label, imp) in [
        ("none", EncoderImperfections::ideal()),
        (
            "mismatch",
            EncoderImperfections {
                mismatch: true,
                ktc_noise: false,
                leakage: false,
            },
        ),
        (
            "ktc",
            EncoderImperfections {
                mismatch: false,
                ktc_noise: true,
                leakage: false,
            },
        ),
        (
            "leakage",
            EncoderImperfections {
                mismatch: false,
                ktc_noise: false,
                leakage: true,
            },
        ),
        ("all", EncoderImperfections::realistic()),
    ] {
        let mut enc = passive_encoder(&ctx, imp);
        // Decode with the model matching the enabled leakage.
        let decode = if imp.leakage {
            leak_eff.clone()
        } else {
            ideal_eff.clone()
        };
        let mut encode = |frame: &[f64]| enc.encode_frame(frame);
        let snr = mean_snr(&ctx, &decode, Basis::Dct, &mut encode);
        println!("  {label:<10} {snr:>7.2} dB");
        csv.push_str(&format!("imperfection,{label},{snr:.3}\n"));
    }

    // 7: passive vs active encoder power.
    println!("\n=== passive vs active CS encoder power ===");
    let passive = passive_encoder(&ctx, EncoderImperfections::realistic());
    let p_passive = passive
        .power_breakdown(&ctx.tech, &ctx.design)
        .total()
        .value();
    let active = ActiveCsEncoder::new(ctx.phi.clone(), 1e-12, 1e4, true, 1);
    let p_active = active
        .power_breakdown(&ctx.tech, &ctx.design)
        .total()
        .value();
    let p_logic = CsEncoderLogicModel::new(N_PHI)
        .power(&ctx.tech, &ctx.design)
        .value();
    let p_ota = OtaIntegratorModel::for_encoder(M, 8)
        .power(&ctx.tech, &ctx.design)
        .value();
    println!("  passive (switches + logic): {}", uw(p_passive));
    println!("  active (OTA bank + logic):  {}", uw(p_active));
    println!("  — of which OTA integrators: {}", uw(p_ota));
    println!("  — shared matrix logic:      {}", uw(p_logic));
    println!(
        "  passivity saves {:.1}x encoder power (the paper's Section III claim)",
        p_active / p_passive
    );
    csv.push_str(&format!("encoder_power,passive,{:.6}\n", p_passive * 1e6));
    csv.push_str(&format!("encoder_power,active,{:.6}\n", p_active * 1e6));

    save_figure("ablations.csv", &csv);
}
