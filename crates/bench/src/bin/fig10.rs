//! Regenerates **Fig. 10**: area-constrained accuracy-vs-power Pareto
//! fronts. Tight capacitor-area caps exclude the CS designs and clip the
//! achievable accuracy, reproducing the paper's constrained-search message.
//!
//! Run: `cargo run --release -p efficsense-bench --bin fig10`

use efficsense_bench::{save_figure, sweep_cached, uw};
use efficsense_core::pareto::{pareto_front, within_area, Objective};
use efficsense_core::sweep::Metric;

fn main() {
    println!("=== Fig. 10: area-constrained Pareto fronts ===");
    let results = sweep_cached(Metric::DetectionAccuracy);
    // Constraints in C_u,min multiples, from "digital-only budget" to
    // unconstrained (the paper sweeps a comparable ladder).
    let caps: [(f64, &str); 4] = [
        (1.0e3, "1k"),
        (1.0e5, "100k"),
        (1.0e6, "1M"),
        (f64::INFINITY, "unconstrained"),
    ];
    let mut csv = String::from("area_cap_units,power_uw,accuracy,architecture,label\n");
    let mut last_best = -1.0f64;
    for (cap, cap_label) in caps {
        let feasible = within_area(&results, cap);
        println!(
            "--- area cap {cap_label} C_u: {} feasible designs ---",
            feasible.len()
        );
        if feasible.is_empty() {
            continue;
        }
        let front = pareto_front(&feasible, Objective::MaximizeMetric);
        let mut best = -1.0f64;
        for r in &front {
            println!(
                "  {:>10}  accuracy {:.4}  area {:>9.0}  [{}]",
                uw(r.power_w),
                r.metric,
                r.area_units,
                r.point.label()
            );
            best = best.max(r.metric);
            csv.push_str(&format!(
                "{},{:.6},{:.6},{},{}\n",
                cap_label,
                r.power_w * 1e6,
                r.metric,
                r.point.architecture,
                r.point.label()
            ));
        }
        println!("  max accuracy under this cap: {:.2} %", best * 100.0);
        assert!(
            best >= last_best - 1e-9,
            "relaxing the area cap must not reduce achievable accuracy"
        );
        last_best = best;
    }
    save_figure("fig10_area_constrained_fronts.csv", &csv);
    println!();
    println!("Paper's expected shape: small area caps exclude the capacitor-hungry CS");
    println!("designs, limiting the accuracy/power trade-off to the baseline front;");
    println!("with relaxed caps the CS front takes over at low power.");
}
