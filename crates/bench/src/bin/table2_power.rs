//! Regenerates **Table II / Table III**: evaluates every analytical power
//! model of the block library over the paper's parameter ranges and prints
//! the technology/design constants used.
//!
//! Run: `cargo run --release -p efficsense-bench --bin table2_power`

use efficsense_bench::{save_figure, uw};
use efficsense_power::models::{
    ComparatorModel, CsEncoderLogicModel, DacModel, LeakageModel, LnaModel, PowerModel,
    SampleHoldModel, SarLogicModel, TransmitterModel,
};
use efficsense_power::{DesignParams, TechnologyParams};

fn main() {
    let tech = TechnologyParams::gpdk045();
    println!("=== Table III: technology parameters (gpdk045 extraction) ===");
    println!("  C_logic        = {} fF", tech.c_logic_f * 1e15);
    println!("  gm/Id          = {} /V", tech.gm_over_id);
    println!(
        "  cap density    = {} fF/µm²",
        tech.cap_density_f_per_um2 * 1e15
    );
    println!("  C_u,min        = {} fF", tech.c_u_min_f * 1e15);
    println!(
        "  C_pk           = {} (σ² fraction · µm²)",
        tech.c_pk_frac_um2
    );
    println!("  I_leak         = {} pA", tech.i_leak_a * 1e12);
    println!("  E_bit          = {} nJ", tech.e_bit_j * 1e9);
    println!("  V_T            = {} mV", tech.v_t * 1e3);
    println!(
        "  NEF            = {} (assumed; absent from the table)",
        tech.nef
    );
    println!(
        "  V_eff          = {} mV (assumed; absent from the table)",
        tech.v_eff * 1e3
    );
    println!();
    println!("=== Table III: design parameters ===");
    let d8 = DesignParams::paper_defaults(8);
    println!("  BW_in          = {} Hz", d8.bw_in_hz);
    println!("  f_sample       = {} Hz (2.1 · BW_in)", d8.f_sample_hz());
    println!("  f_clk (N=8)    = {} Hz ((N+1) · f_sample)", d8.f_clk_hz());
    println!("  BW_LNA         = {} Hz (3 · BW_in)", d8.bw_lna_hz());
    println!("  V_dd = V_FS = V_ref = {} V", d8.v_dd);
    println!();
    println!("=== Table II: power model evaluation ===");
    let mut csv = String::from(
        "n_bits,lna_noise_uvrms,lna_uw,sh_uw,comparator_uw,sar_logic_uw,dac_uw,tx_uw,cs_logic_uw,leakage_uw\n",
    );
    for n_bits in 6..=8u32 {
        let design = DesignParams::paper_defaults(n_bits);
        println!("--- N = {n_bits} bits ---");
        for noise_uv in [1.0, 2.0, 5.0, 10.0, 20.0] {
            let lna = LnaModel {
                noise_floor_vrms: noise_uv * 1e-6,
                c_load_f: 1e-12,
                gain: 2000.0,
            };
            let p_lna = lna.power(&tech, &design).value();
            let p_sh = SampleHoldModel.power(&tech, &design).value();
            let p_cmp = ComparatorModel.power(&tech, &design).value();
            let p_sar = SarLogicModel::default().power(&tech, &design).value();
            let p_dac = DacModel {
                c_u_f: tech.c_u_min_f,
                v_in_rms: 1.0,
            }
            .power(&tech, &design)
            .value();
            let p_tx = TransmitterModel::default().power(&tech, &design).value();
            let p_cs = CsEncoderLogicModel::new(384).power(&tech, &design).value();
            let p_leak = LeakageModel { n_switches: 300 }
                .power(&tech, &design)
                .value();
            println!(
                "  vn={noise_uv:>4.1}µV  LNA {:>12}  S&H {:>12}  CMP {:>12}  SAR {:>12}  DAC {:>12}  TX {:>12}  CSlogic {:>12}",
                uw(p_lna), uw(p_sh), uw(p_cmp), uw(p_sar), uw(p_dac), uw(p_tx), uw(p_cs)
            );
            csv.push_str(&format!(
                "{n_bits},{noise_uv},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                p_lna * 1e6,
                p_sh * 1e6,
                p_cmp * 1e6,
                p_sar * 1e6,
                p_dac * 1e6,
                p_tx * 1e6,
                p_cs * 1e6,
                p_leak * 1e6
            ));
        }
    }
    save_figure("table2_power_models.csv", &csv);
    println!();
    println!(
        "Headline sanity: TX at N=8 is {} (paper's dominant baseline block)",
        {
            let d = DesignParams::paper_defaults(8);
            uw(TransmitterModel::default().power(&tech, &d).value())
        }
    );
}
