//! Regenerates **Fig. 8**: per-block power breakdown at the baseline and CS
//! optimal design points of Fig. 7b.
//!
//! Run fig7 first (this reuses its cached sweep), or this binary will run
//! the sweep itself.
//!
//! Run: `cargo run --release -p efficsense-bench --bin fig8`

use efficsense_bench::{save_figure, sweep_cached, uw};
use efficsense_core::pareto::optimal_under_constraint;
use efficsense_core::prelude::*;
use efficsense_core::sweep::{split_by_architecture, Metric};
use efficsense_power::BlockKind;

fn pick<'a>(results: &'a [SweepResult], arch_results: Vec<&'a SweepResult>) -> &'a SweepResult {
    let owned: Vec<SweepResult> = arch_results.into_iter().cloned().collect();
    // Each architecture's knee: the cheapest design within 1 % of its own
    // peak accuracy. This matches the paper's "optimal design solution"
    // semantics while staying meaningful on any corpus (a hard 98 % line can
    // be infeasible-or-trivial depending on the detection margin).
    let peak = owned
        .iter()
        .map(|r| r.metric)
        .fold(f64::NEG_INFINITY, f64::max);
    let chosen = optimal_under_constraint(&owned, peak - 0.01)
        .cloned()
        .expect("peak constraint is feasible by construction");
    results
        .iter()
        .find(|x| x.point == chosen.point)
        .expect("point comes from results")
}

fn main() {
    println!("=== Fig. 8: power distribution at the optimal design points ===");
    let results = sweep_cached(Metric::DetectionAccuracy);
    let (base, cs) = split_by_architecture(&results);
    assert!(
        !base.is_empty() && !cs.is_empty(),
        "sweep must cover both architectures"
    );
    let opt_base = pick(&results, base);
    let opt_cs = pick(&results, cs);

    println!(
        "baseline optimum: {} @ accuracy {:.3} [{}]",
        uw(opt_base.power_w),
        opt_base.metric,
        opt_base.point.label()
    );
    println!("{}", opt_base.breakdown);
    println!();
    println!(
        "CS optimum: {} @ accuracy {:.3} [{}]",
        uw(opt_cs.power_w),
        opt_cs.metric,
        opt_cs.point.label()
    );
    println!("{}", opt_cs.breakdown);

    let mut csv = String::from("block,baseline_uw,cs_uw\n");
    for k in BlockKind::ALL {
        csv.push_str(&format!(
            "{},{:.6},{:.6}\n",
            k,
            opt_base.breakdown.get(k).value() * 1e6,
            opt_cs.breakdown.get(k).value() * 1e6
        ));
    }
    csv.push_str(&format!(
        "TOTAL,{:.6},{:.6}\n",
        opt_base.power_w * 1e6,
        opt_cs.power_w * 1e6
    ));
    save_figure("fig8_power_distribution.csv", &csv);

    println!();
    println!("Paper's expected shape: the CS optimum saves most of its power in the");
    println!("transmitter (fewer samples) and the LNA (higher tolerated noise floor),");
    println!("at the cost of a marginal CS-encoder-logic increase.");
    let tx_saving = opt_base.breakdown.get(BlockKind::Transmitter).value()
        - opt_cs.breakdown.get(BlockKind::Transmitter).value();
    let lna_saving = opt_base.breakdown.get(BlockKind::Lna).value()
        - opt_cs.breakdown.get(BlockKind::Lna).value();
    let cs_cost = opt_cs.breakdown.get(BlockKind::CsEncoderLogic).value()
        - opt_base.breakdown.get(BlockKind::CsEncoderLogic).value();
    println!(
        "measured: TX saving {}, LNA saving {}, CS logic cost {}",
        uw(tx_saving),
        uw(lna_saving),
        uw(cs_cost)
    );

    // Beyond the paper: detection quality detail at the two optima
    // (sensitivity/specificity, standard for seizure detection).
    println!();
    println!("=== detection quality at the optima (beyond the paper) ===");
    let dataset = EegDataset::generate(&efficsense_bench::dataset_config());
    let space = efficsense_bench::design_space();
    let fs = space.template.design.f_sample_hz();
    let detector = SeizureDetector::train_epoched(
        &dataset,
        fs,
        SweepConfig::default().epoch_s,
        SweepConfig::default().detector_seed,
    );
    for (name, opt) in [("baseline", opt_base), ("cs", opt_cs)] {
        let cfg = opt.point.to_config(&space.template);
        let sim = Simulator::new(cfg).expect("optimum validates");
        let outputs: Vec<(Vec<f64>, usize)> = dataset
            .records
            .iter()
            .map(|r| {
                (
                    sim.run(&r.samples, r.fs, r.id as u64 + 1).input_referred,
                    r.label(),
                )
            })
            .collect();
        let conf = detector.confusion(&outputs, fs);
        println!(
            "{name:<9} accuracy {:.3}  sensitivity {:.3}  specificity {:.3}  (tp {} tn {} fp {} fn {})",
            conf.accuracy(),
            conf.sensitivity(),
            conf.specificity(),
            conf.tp,
            conf.tn,
            conf.fp,
            conf.fn_
        );
    }
}
