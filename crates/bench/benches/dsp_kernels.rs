//! Benchmark: DSP kernels (FFT, Welch PSD, filtering, SNDR) that every
//! behavioural simulation leans on.

use efficsense_bench::harness::{black_box, Harness};
use efficsense_dsp::fft::Fft;
use efficsense_dsp::filter::{FirFilter, IirFilter, OnePole};
use efficsense_dsp::metrics::sndr_db;
use efficsense_dsp::spectrum::{sine, welch};
use efficsense_dsp::window::Window;
use efficsense_dsp::Complex;

fn main() {
    let mut h = Harness::from_args();
    let x = sine(8192, 8192.0, 441.0, 1.0, 0.0);
    h.bench_function("dsp/fft_8192", |b| {
        let fft = Fft::new(8192);
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
        b.iter(|| {
            let mut work = buf.clone();
            fft.forward(&mut work);
            black_box(work)
        })
    });
    h.bench_function("dsp/welch_8192_seg1024", |b| {
        b.iter(|| black_box(welch(&x, 8192.0, 1024, Window::Hann)))
    });
    h.bench_function("dsp/sndr_8192", |b| {
        b.iter(|| black_box(sndr_db(&x, 8192.0, 441.0)))
    });
    h.bench_function("dsp/butterworth4_8192", |b| {
        b.iter(|| {
            let mut f = IirFilter::butterworth_lowpass(4, 768.0, 8192.0);
            black_box(f.filter(&x))
        })
    });
    h.bench_function("dsp/one_pole_8192", |b| {
        b.iter(|| {
            let mut f = OnePole::lowpass(768.0, 8192.0);
            black_box(x.iter().map(|&v| f.process(v)).collect::<Vec<_>>())
        })
    });
    h.bench_function("dsp/fir63_8192", |b| {
        b.iter(|| {
            let mut f = FirFilter::lowpass(63, 768.0, 8192.0);
            black_box(f.filter(&x))
        })
    });
}
