//! Benchmark: sparse reconstruction (OMP vs ISTA) at the paper's frame
//! dimensions — the dominant compute cost of a CS design-point evaluation.

use efficsense_bench::harness::{black_box, Harness};
use efficsense_cs::basis::Basis;
use efficsense_cs::charge_sharing::effective_matrix;
use efficsense_cs::matrix::SensingMatrix;
use efficsense_cs::recon::{ista, omp, OmpConfig};

fn main() {
    let mut h = Harness::from_args();
    h.sample_size(10);
    let n = 384;
    for &m in &[75usize, 150] {
        let phi = SensingMatrix::srbm(m, n, 2, 3);
        let eff = effective_matrix(&phi, 0.1e-12, 0.5e-12);
        let dict = eff.matmul(&Basis::Dct.matrix(n));
        // A compressible frame: low-frequency content.
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (std::f64::consts::TAU * 3.0 * t).sin() * 0.1
                    + (std::f64::consts::TAU * 8.0 * t).cos() * 0.05
            })
            .collect();
        let y = eff.matvec(&x);
        h.bench_function(&format!("reconstruction/omp_k30/{m}"), |b| {
            b.iter(|| {
                black_box(omp(
                    &dict,
                    &y,
                    &OmpConfig {
                        sparsity: 30,
                        residual_tol: 1e-4,
                    },
                ))
            })
        });
        h.bench_function(&format!("reconstruction/ista_100it/{m}"), |b| {
            b.iter(|| black_box(ista(&dict, &y, 1e-4, 100)))
        });
    }
    h.bench_function("reconstruction/dictionary_build_m150", |b| {
        let phi = SensingMatrix::srbm(150, n, 2, 3);
        let eff = effective_matrix(&phi, 0.1e-12, 0.5e-12);
        b.iter(|| black_box(eff.matmul(&Basis::Dct.matrix(n))))
    });
}
