//! Criterion benchmark: the detection goal function — feature extraction,
//! detector training, and per-record inference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efficsense_core::detector::SeizureDetector;
use efficsense_ml::features::FeatureExtractor;
use efficsense_ml::mlp::MlpClassifier;
use efficsense_ml::{Classifier, TrainConfig};
use efficsense_signals::{DatasetConfig, EegDataset};

fn bench_classifier(c: &mut Criterion) {
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 3,
        duration_s: 4.0,
        ..Default::default()
    });
    let record = ds.records[0].resampled(537.6);
    let ex = FeatureExtractor::default();

    c.bench_function("ml/feature_extraction_4s", |b| {
        b.iter(|| black_box(ex.extract(black_box(&record.samples), 537.6)))
    });

    let mut group = c.benchmark_group("ml_training");
    group.sample_size(10);
    group.bench_function("mlp_fit_100x13", |b| {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| (0..13).map(|j| ((i * 13 + j) as f64 * 0.37).sin()).collect())
            .collect();
        let y: Vec<usize> = (0..100).map(|i| i % 2).collect();
        b.iter(|| {
            let mut mlp = MlpClassifier::new(13, &[16], 2, 7);
            mlp.fit(&x, &y, &TrainConfig { epochs: 20, ..Default::default() });
            black_box(mlp)
        })
    });
    group.bench_function("detector_train_small", |b| {
        b.iter(|| black_box(SeizureDetector::train(&ds, 537.6, 1)))
    });
    group.finish();

    let det = SeizureDetector::train(&ds, 537.6, 1);
    c.bench_function("ml/detector_predict_4s", |b| {
        b.iter(|| black_box(det.predict(black_box(&record.samples), 537.6)))
    });
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
