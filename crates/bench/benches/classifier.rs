//! Benchmark: the detection goal function — feature extraction, detector
//! training, and per-record inference.

use efficsense_bench::harness::{black_box, Harness};
use efficsense_core::detector::SeizureDetector;
use efficsense_ml::features::FeatureExtractor;
use efficsense_ml::mlp::MlpClassifier;
use efficsense_ml::{Classifier, TrainConfig};
use efficsense_signals::{DatasetConfig, EegDataset};

fn main() {
    let mut h = Harness::from_args();
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 3,
        duration_s: 4.0,
        ..Default::default()
    });
    let record = ds.records[0].resampled(537.6);
    let ex = FeatureExtractor::default();

    h.bench_function("ml/feature_extraction_4s", |b| {
        b.iter(|| black_box(ex.extract(black_box(&record.samples), 537.6)))
    });

    h.sample_size(10);
    h.bench_function("ml_training/mlp_fit_100x13", |b| {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                (0..13)
                    .map(|j| ((i * 13 + j) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        let y: Vec<usize> = (0..100).map(|i| i % 2).collect();
        b.iter(|| {
            let mut mlp = MlpClassifier::new(13, &[16], 2, 7);
            mlp.fit(
                &x,
                &y,
                &TrainConfig {
                    epochs: 20,
                    ..Default::default()
                },
            );
            black_box(mlp)
        })
    });
    h.bench_function("ml_training/detector_train_small", |b| {
        b.iter(|| black_box(SeizureDetector::train(&ds, 537.6, 1)))
    });
    h.default_sample_size();

    let det = SeizureDetector::train(&ds, 537.6, 1);
    h.bench_function("ml/detector_predict_4s", |b| {
        b.iter(|| black_box(det.predict(black_box(&record.samples), 537.6)))
    });
}
