//! Criterion benchmark: evaluation throughput of the Table II power models
//! (these are evaluated once per design point in a sweep — they must be
//! essentially free).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efficsense_power::models::{
    ComparatorModel, CsEncoderLogicModel, DacModel, LnaModel, PowerModel, SampleHoldModel,
    SarLogicModel, TransmitterModel,
};
use efficsense_power::{DesignParams, TechnologyParams};

fn bench_power_models(c: &mut Criterion) {
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let lna = LnaModel { noise_floor_vrms: 2e-6, c_load_f: 1e-12, gain: 4000.0 };
    c.bench_function("power/lna_model", |b| {
        b.iter(|| black_box(&lna).power_w(black_box(&tech), black_box(&design)))
    });
    c.bench_function("power/full_table_ii", |b| {
        b.iter(|| {
            let mut total = 0.0;
            total += lna.power_w(&tech, &design);
            total += SampleHoldModel.power_w(&tech, &design);
            total += ComparatorModel.power_w(&tech, &design);
            total += SarLogicModel::default().power_w(&tech, &design);
            total += DacModel { c_u_f: 1e-15, v_in_rms: 1.0 }.power_w(&tech, &design);
            total += TransmitterModel::default().power_w(&tech, &design);
            total += CsEncoderLogicModel::new(384).power_w(&tech, &design);
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_power_models);
criterion_main!(benches);
