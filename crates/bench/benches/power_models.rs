//! Benchmark: evaluation throughput of the Table II power models (these are
//! evaluated once per design point in a sweep — they must be essentially
//! free).

use efficsense_bench::harness::{black_box, Harness};
use efficsense_power::models::{
    ComparatorModel, CsEncoderLogicModel, DacModel, LnaModel, PowerModel, SampleHoldModel,
    SarLogicModel, TransmitterModel,
};
use efficsense_power::{DesignParams, TechnologyParams};

fn main() {
    let mut h = Harness::from_args();
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let lna = LnaModel {
        noise_floor_vrms: 2e-6,
        c_load_f: 1e-12,
        gain: 4000.0,
    };
    h.bench_function("power/lna_model", |b| {
        b.iter(|| black_box(&lna).power(black_box(&tech), black_box(&design)))
    });
    h.bench_function("power/full_table_ii", |b| {
        b.iter(|| {
            let mut total = 0.0;
            total += lna.power(&tech, &design).value();
            total += SampleHoldModel.power(&tech, &design).value();
            total += ComparatorModel.power(&tech, &design).value();
            total += SarLogicModel::default().power(&tech, &design).value();
            total += DacModel {
                c_u_f: 1e-15,
                v_in_rms: 1.0,
            }
            .power(&tech, &design)
            .value();
            total += TransmitterModel::default().power(&tech, &design).value();
            total += CsEncoderLogicModel::new(384).power(&tech, &design).value();
            black_box(total)
        })
    });
}
