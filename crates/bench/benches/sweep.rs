//! Benchmark: end-to-end design-point evaluation — one baseline and one CS
//! point over a single record, the unit of work the pathfinding sweep
//! repeats thousands of times.

use efficsense_bench::harness::{black_box, Harness};
use efficsense_core::config::{CsConfig, SystemConfig};
use efficsense_core::simulate::Simulator;
use efficsense_signals::{DatasetConfig, EegDataset};

fn main() {
    let mut h = Harness::from_args();
    h.sample_size(10);
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 1,
        duration_s: 4.0,
        ..Default::default()
    });
    let record = &ds.records[0];

    let baseline = Simulator::new(SystemConfig::baseline(8)).expect("valid");
    h.bench_function("simulate/baseline_record_4s", |b| {
        b.iter(|| black_box(baseline.run(black_box(&record.samples), record.fs, 1)))
    });
    let cs75 = Simulator::new(SystemConfig::compressive(
        8,
        CsConfig {
            m: 75,
            omp_sparsity: 30,
            ..Default::default()
        },
    ))
    .expect("valid");
    h.bench_function("simulate/cs_m75_record_4s", |b| {
        b.iter(|| black_box(cs75.run(black_box(&record.samples), record.fs, 1)))
    });
    let cs150 = Simulator::new(SystemConfig::compressive(
        8,
        CsConfig {
            m: 150,
            omp_sparsity: 50,
            ..Default::default()
        },
    ))
    .expect("valid");
    h.bench_function("simulate/cs_m150_record_4s", |b| {
        b.iter(|| black_box(cs150.run(black_box(&record.samples), record.fs, 1)))
    });
    h.bench_function("simulate/simulator_build_cs_m150", |b| {
        b.iter(|| {
            black_box(
                Simulator::new(SystemConfig::compressive(8, CsConfig::default())).expect("valid"),
            )
        })
    });
}
