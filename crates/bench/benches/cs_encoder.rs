//! Benchmark: the passive charge-sharing encoder (frame encode) and
//! effective-matrix construction — the per-frame analog front-end cost of
//! every CS design point.

use efficsense_bench::harness::{black_box, Harness};
use efficsense_blocks::cs_frontend::{ChargeSharingEncoder, EncoderImperfections};
use efficsense_cs::charge_sharing::effective_matrix;
use efficsense_cs::matrix::SensingMatrix;
use efficsense_power::{DesignParams, TechnologyParams};

fn main() {
    let mut h = Harness::from_args();
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let frame: Vec<f64> = (0..384).map(|i| (i as f64 * 0.05).sin() * 0.1).collect();
    for &m in &[75usize, 150, 192] {
        let phi = SensingMatrix::srbm(m, 384, 2, 7);
        let mut enc = ChargeSharingEncoder::new(
            phi.clone(),
            0.1e-12,
            0.5e-12,
            1.0 / design.f_sample_hz(),
            EncoderImperfections::realistic(),
            &tech,
            &design,
            1,
        );
        h.bench_function(&format!("cs_encoder/encode_frame_m{m}"), |b| {
            b.iter(|| black_box(enc.encode_frame(black_box(&frame))))
        });
        h.bench_function(&format!("cs_encoder/effective_matrix_m{m}"), |b| {
            b.iter(|| black_box(effective_matrix(&phi, 0.1e-12, 0.5e-12)))
        });
    }
    let phi = SensingMatrix::srbm(150, 384, 2, 7);
    h.bench_function("cs_encoder/srbm_apply_m150", |b| {
        b.iter(|| black_box(phi.apply(black_box(&frame))))
    });
    h.bench_function("cs_encoder/srbm_generate_m150", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(SensingMatrix::srbm(150, 384, 2, seed))
        })
    });
}
