//! Property-style tests for the power/area model library, run as seeded
//! Monte-Carlo loops.

use efficsense_power::area::AreaModel;
use efficsense_power::models::{
    ComparatorModel, CsEncoderLogicModel, DacModel, LnaModel, PowerModel, SampleHoldModel,
    SarLogicModel, TransmitterModel,
};
use efficsense_power::{DesignParams, TechnologyParams};
use efficsense_rng::Rng64;

const CASES: u64 = 96;

fn tech() -> TechnologyParams {
    TechnologyParams::gpdk045()
}

#[test]
fn all_models_nonnegative_finite() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xA110 + case);
        let bits = g.range(4, 12) as u32;
        let noise = g.uniform(1e-7, 1e-4);
        let c_load = g.uniform(1e-15, 1e-11);
        let v_in = g.uniform(0.0, 2.0);
        let ratio_denominator = g.uniform(1.0, 10.0);
        let t = tech();
        let d = DesignParams::paper_defaults(bits);
        let powers = [
            LnaModel {
                noise_floor_vrms: noise,
                c_load_f: c_load,
                gain: 1000.0,
            }
            .power(&t, &d),
            SampleHoldModel.power(&t, &d),
            ComparatorModel.power(&t, &d),
            SarLogicModel::default().power(&t, &d),
            DacModel {
                c_u_f: 1e-15,
                v_in_rms: v_in,
            }
            .power(&t, &d),
            TransmitterModel {
                compression_ratio: 1.0 / ratio_denominator,
            }
            .power(&t, &d),
            CsEncoderLogicModel::new(384).power(&t, &d),
        ];
        for p in powers {
            assert!(
                p.value().is_finite() && p.value() >= 0.0,
                "case {case}: power {p}"
            );
        }
    }
}

#[test]
fn lna_power_monotone_nonincreasing_in_noise() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x10A0 + case);
        let c_load = g.uniform(1e-15, 1e-11);
        let n1 = g.uniform(1e-7, 1e-4);
        let n2 = g.uniform(1e-7, 1e-4);
        let t = tech();
        let d = DesignParams::paper_defaults(8);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let p_lo = LnaModel {
            noise_floor_vrms: lo,
            c_load_f: c_load,
            gain: 1000.0,
        }
        .power(&t, &d);
        let p_hi = LnaModel {
            noise_floor_vrms: hi,
            c_load_f: c_load,
            gain: 1000.0,
        }
        .power(&t, &d);
        assert!(
            p_lo.value() >= p_hi.value(),
            "case {case}: tighter noise must not be cheaper"
        );
    }
}

#[test]
fn transmitter_power_linear_in_compression() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x7210 + case);
        let r1 = g.uniform(0.01, 1.0);
        let r2 = g.uniform(0.01, 1.0);
        let t = tech();
        let d = DesignParams::paper_defaults(8);
        let p1 = TransmitterModel {
            compression_ratio: r1,
        }
        .power(&t, &d)
        .value();
        let p2 = TransmitterModel {
            compression_ratio: r2,
        }
        .power(&t, &d)
        .value();
        assert!((p1 / p2 - r1 / r2).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn digital_powers_monotone_in_bits() {
    for case in 0..CASES {
        let b = Rng64::new(0xD161 + case).range(4, 11) as u32;
        let t = tech();
        let d1 = DesignParams::paper_defaults(b);
        let d2 = DesignParams::paper_defaults(b + 1);
        let sar = SarLogicModel::default();
        assert!(
            sar.power(&t, &d2).value() > sar.power(&t, &d1).value(),
            "case {case}"
        );
        assert!(
            ComparatorModel.power(&t, &d2).value() > ComparatorModel.power(&t, &d1).value(),
            "case {case}"
        );
        let tx = TransmitterModel::default();
        assert!(
            tx.power(&t, &d2).value() > tx.power(&t, &d1).value(),
            "case {case}"
        );
    }
}

#[test]
fn area_model_additive() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xA2EA + case);
        let c1 = g.uniform(1e-15, 1e-11);
        let n1 = g.range(1, 500);
        let c2 = g.uniform(1e-15, 1e-11);
        let n2 = g.range(1, 500);
        let t = tech();
        let mut a = AreaModel::new();
        a.add("x", c1, n1);
        let first = a.total_units(&t);
        a.add("y", c2, n2);
        let both = a.total_units(&t);
        let expect = first + c2 * n2 as f64 / t.c_u_min_f;
        assert!(
            (both - expect).abs() < 1e-6 * expect.max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn cs_area_exceeds_baseline_for_any_config() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xC5A2 + case);
        let bits = g.range(6, 9) as u32;
        let m = g.range(32, 256);
        let c_hold = g.uniform(1e-13, 1e-11);
        let t = tech();
        let d = DesignParams::paper_defaults(bits);
        let base = AreaModel::baseline(&t, &d, 1e-15).total_units(&t);
        let cs = AreaModel::compressive(&t, &d, 1e-15, m, 2, c_hold, c_hold / 5.0).total_units(&t);
        assert!(cs > base, "case {case}");
    }
}

#[test]
fn mismatch_sigma_decreasing_in_cap() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x3156 + case);
        let c1 = g.uniform(1e-15, 1e-11);
        let c2 = g.uniform(1e-15, 1e-11);
        let t = tech();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        assert!(
            t.cap_mismatch_sigma(lo) >= t.cap_mismatch_sigma(hi),
            "case {case}"
        );
    }
}
