//! Property-based tests for the power/area model library.

use efficsense_power::area::AreaModel;
use efficsense_power::models::{
    ComparatorModel, CsEncoderLogicModel, DacModel, LnaModel, PowerModel, SampleHoldModel,
    SarLogicModel, TransmitterModel,
};
use efficsense_power::{DesignParams, TechnologyParams};
use proptest::prelude::*;

fn tech() -> TechnologyParams {
    TechnologyParams::gpdk045()
}

proptest! {
    #[test]
    fn all_models_nonnegative_finite(
        bits in 4u32..12,
        noise in 1e-7f64..1e-4,
        c_load in 1e-15f64..1e-11,
        v_in in 0.0f64..2.0,
        ratio_denominator in 1.0f64..10.0,
    ) {
        let t = tech();
        let d = DesignParams::paper_defaults(bits);
        let powers = [
            LnaModel { noise_floor_vrms: noise, c_load_f: c_load, gain: 1000.0 }.power_w(&t, &d),
            SampleHoldModel.power_w(&t, &d),
            ComparatorModel.power_w(&t, &d),
            SarLogicModel::default().power_w(&t, &d),
            DacModel { c_u_f: 1e-15, v_in_rms: v_in }.power_w(&t, &d),
            TransmitterModel { compression_ratio: 1.0 / ratio_denominator }.power_w(&t, &d),
            CsEncoderLogicModel::new(384).power_w(&t, &d),
        ];
        for p in powers {
            prop_assert!(p.is_finite() && p >= 0.0, "power {p}");
        }
    }

    #[test]
    fn lna_power_monotone_nonincreasing_in_noise(
        c_load in 1e-15f64..1e-11,
        n1 in 1e-7f64..1e-4,
        n2 in 1e-7f64..1e-4,
    ) {
        let t = tech();
        let d = DesignParams::paper_defaults(8);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let p_lo = LnaModel { noise_floor_vrms: lo, c_load_f: c_load, gain: 1000.0 }.power_w(&t, &d);
        let p_hi = LnaModel { noise_floor_vrms: hi, c_load_f: c_load, gain: 1000.0 }.power_w(&t, &d);
        prop_assert!(p_lo >= p_hi, "tighter noise must not be cheaper");
    }

    #[test]
    fn transmitter_power_linear_in_compression(
        r1 in 0.01f64..1.0,
        r2 in 0.01f64..1.0,
    ) {
        let t = tech();
        let d = DesignParams::paper_defaults(8);
        let p1 = TransmitterModel { compression_ratio: r1 }.power_w(&t, &d);
        let p2 = TransmitterModel { compression_ratio: r2 }.power_w(&t, &d);
        prop_assert!((p1 / p2 - r1 / r2).abs() < 1e-9);
    }

    #[test]
    fn digital_powers_monotone_in_bits(b in 4u32..11) {
        let t = tech();
        let d1 = DesignParams::paper_defaults(b);
        let d2 = DesignParams::paper_defaults(b + 1);
        prop_assert!(SarLogicModel::default().power_w(&t, &d2) > SarLogicModel::default().power_w(&t, &d1));
        prop_assert!(ComparatorModel.power_w(&t, &d2) > ComparatorModel.power_w(&t, &d1));
        prop_assert!(TransmitterModel::default().power_w(&t, &d2) > TransmitterModel::default().power_w(&t, &d1));
    }

    #[test]
    fn area_model_additive(
        c1 in 1e-15f64..1e-11,
        n1 in 1usize..500,
        c2 in 1e-15f64..1e-11,
        n2 in 1usize..500,
    ) {
        let t = tech();
        let mut a = AreaModel::new();
        a.add("x", c1, n1);
        let first = a.total_units(&t);
        a.add("y", c2, n2);
        let both = a.total_units(&t);
        let expect = first + c2 * n2 as f64 / t.c_u_min_f;
        prop_assert!((both - expect).abs() < 1e-6 * expect.max(1.0));
    }

    #[test]
    fn cs_area_exceeds_baseline_for_any_config(
        bits in 6u32..9,
        m in 32usize..256,
        c_hold in 1e-13f64..1e-11,
    ) {
        let t = tech();
        let d = DesignParams::paper_defaults(bits);
        let base = AreaModel::baseline(&t, &d, 1e-15).total_units(&t);
        let cs = AreaModel::compressive(&t, &d, 1e-15, m, 2, c_hold, c_hold / 5.0)
            .total_units(&t);
        prop_assert!(cs > base);
    }

    #[test]
    fn mismatch_sigma_decreasing_in_cap(c1 in 1e-15f64..1e-11, c2 in 1e-15f64..1e-11) {
        let t = tech();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(t.cap_mismatch_sigma(lo) >= t.cap_mismatch_sigma(hi));
    }
}
