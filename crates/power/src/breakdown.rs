//! Per-block power accounting (the stacked bars of Fig. 4 and Fig. 8).

use crate::units::Watts;
use std::fmt;

/// Identifies a circuit block in a power breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockKind {
    /// Low-noise amplifier.
    Lna,
    /// Sample-and-hold.
    SampleHold,
    /// SAR comparator.
    Comparator,
    /// SAR successive-approximation logic.
    SarLogic,
    /// Capacitive DAC.
    Dac,
    /// Radio/storage transmitter.
    Transmitter,
    /// Compressive-sensing encoder logic (shift register + switches).
    CsEncoderLogic,
    /// Static leakage of the switch network.
    Leakage,
}

impl BlockKind {
    /// All kinds in display order.
    pub const ALL: [BlockKind; 8] = [
        BlockKind::Lna,
        BlockKind::SampleHold,
        BlockKind::Comparator,
        BlockKind::SarLogic,
        BlockKind::Dac,
        BlockKind::Transmitter,
        BlockKind::CsEncoderLogic,
        BlockKind::Leakage,
    ];
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockKind::Lna => "LNA",
            BlockKind::SampleHold => "S&H",
            BlockKind::Comparator => "Comparator",
            BlockKind::SarLogic => "SAR logic",
            BlockKind::Dac => "DAC",
            BlockKind::Transmitter => "Transmitter",
            BlockKind::CsEncoderLogic => "CS encoder logic",
            BlockKind::Leakage => "Leakage",
        };
        f.write_str(s)
    }
}

/// A per-block power breakdown.
///
/// ```
/// use efficsense_power::{BlockKind, PowerBreakdown, Watts};
/// let mut b = PowerBreakdown::new();
/// b.add(BlockKind::Lna, Watts::micro(1.0));
/// b.add(BlockKind::Transmitter, Watts::micro(4.3));
/// assert!((b.total().value() - 5.3e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerBreakdown {
    entries: Vec<(BlockKind, Watts)>,
}

impl PowerBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `power` to the entry for `kind` (accumulating duplicates).
    pub fn add(&mut self, kind: BlockKind, power: Watts) {
        let w = power.value();
        assert!(
            w.is_finite() && w >= 0.0,
            "power must be finite and non-negative, got {w}"
        );
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == kind) {
            e.1 += power;
        } else {
            self.entries.push((kind, power));
        }
    }

    /// Power of one block, or 0 W if absent.
    pub fn get(&self, kind: BlockKind) -> Watts {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(Watts(0.0), |(_, w)| *w)
    }

    /// Total power.
    pub fn total(&self) -> Watts {
        self.entries.iter().map(|(_, w)| *w).sum()
    }

    /// Iterator over `(block, power)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockKind, Watts)> + '_ {
        self.entries.iter().copied()
    }

    /// Fraction of total power consumed by `kind` (0 when total is 0).
    #[must_use]
    pub fn fraction(&self, kind: BlockKind) -> f64 {
        let t = self.total().value();
        if efficsense_dsp::approx::is_zero(t) {
            0.0
        } else {
            self.get(kind).value() / t
        }
    }

    /// Element-wise sum with another breakdown.
    pub fn merged(&self, other: &PowerBreakdown) -> PowerBreakdown {
        let mut out = self.clone();
        for (k, w) in other.iter() {
            out.add(k, w);
        }
        out
    }

    /// The dominant block, or `None` when empty.
    #[must_use]
    pub fn dominant(&self) -> Option<BlockKind> {
        self.entries
            .iter()
            .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
            .map(|(k, _)| *k)
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<18} {:>12}   {:>6}", "block", "power", "share")?;
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| b.1.value().total_cmp(&a.1.value()));
        for (k, w) in &sorted {
            writeln!(
                f,
                "{:<18} {:>12}   {:>5.1}%",
                k.to_string(),
                w.to_string(),
                100.0 * self.fraction(*k)
            )?;
        }
        write!(f, "{:<18} {:>12}", "TOTAL", self.total().to_string())
    }
}

impl FromIterator<(BlockKind, Watts)> for PowerBreakdown {
    fn from_iter<I: IntoIterator<Item = (BlockKind, Watts)>>(iter: I) -> Self {
        let mut b = PowerBreakdown::new();
        for (k, w) in iter {
            b.add(k, w);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut b = PowerBreakdown::new();
        b.add(BlockKind::Lna, Watts(1.0e-6));
        b.add(BlockKind::Dac, Watts(2.0e-6));
        b.add(BlockKind::Lna, Watts(0.5e-6)); // accumulates
        assert!((b.get(BlockKind::Lna).value() - 1.5e-6).abs() < 1e-18);
        assert!((b.total().value() - 3.5e-6).abs() < 1e-18);
    }

    #[test]
    fn missing_block_is_zero() {
        let b = PowerBreakdown::new();
        assert_eq!(b.get(BlockKind::Transmitter), Watts(0.0));
        assert_eq!(b.fraction(BlockKind::Transmitter), 0.0);
        assert_eq!(b.dominant(), None);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b: PowerBreakdown = [
            (BlockKind::Lna, Watts(3.0e-6)),
            (BlockKind::Transmitter, Watts(4.0e-6)),
            (BlockKind::Dac, Watts(1.0e-6)),
        ]
        .into_iter()
        .collect();
        let s: f64 = BlockKind::ALL.iter().map(|&k| b.fraction(k)).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(b.dominant(), Some(BlockKind::Transmitter));
    }

    #[test]
    fn merged_adds_elementwise() {
        let a: PowerBreakdown = [(BlockKind::Lna, Watts(1.0))].into_iter().collect();
        let b: PowerBreakdown = [(BlockKind::Lna, Watts(2.0)), (BlockKind::Dac, Watts(3.0))]
            .into_iter()
            .collect();
        let m = a.merged(&b);
        assert_eq!(m.get(BlockKind::Lna), Watts(3.0));
        assert_eq!(m.get(BlockKind::Dac), Watts(3.0));
    }

    #[test]
    fn display_contains_blocks_and_total() {
        let b: PowerBreakdown = [(BlockKind::Lna, Watts(2.44e-6))].into_iter().collect();
        let s = b.to_string();
        assert!(s.contains("LNA"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("µW"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_power() {
        let mut b = PowerBreakdown::new();
        b.add(BlockKind::Lna, Watts(-1.0));
    }
}
