//! OTA power model for *active* CS integrator front-ends.
//!
//! The paper's passive charge-sharing encoder is motivated as replacing
//! "active integrators and their power-hungry OTAs" (Section III, citing
//! Chen et al.). To let the framework actually quantify that claim, this
//! model estimates the power of an OTA-based switched-capacitor integrator
//! bank: the classic two-bound OTA estimate (slewing + GBW settling) plus a
//! noise bound, mirroring the LNA model's structure.

use crate::breakdown::BlockKind;
use crate::design::DesignParams;
use crate::kt;
use crate::models::PowerModel;
use crate::tech::TechnologyParams;
use crate::units::Watts;

/// Power model of one switched-capacitor integrator OTA.
///
/// For an `M`-measurement active CS encoder, `count` integrators run in
/// parallel (or one is time-multiplexed at `count`× the clock; the bound is
/// the same to first order).
#[derive(Debug, Clone, PartialEq)]
pub struct OtaIntegratorModel {
    /// Number of integrator channels (one per measurement row).
    pub count: usize,
    /// Integration (sampling) capacitor per channel (F).
    pub c_int_f: f64,
    /// Settling accuracy in bits (drives the GBW requirement).
    pub settle_bits: u32,
    /// Output swing used for the slew bound (V).
    pub v_swing: f64,
}

impl OtaIntegratorModel {
    /// A typical active CS encoder: `m` channels with 1 pF integration caps
    /// settling to the ADC resolution.
    pub fn for_encoder(m: usize, n_bits: u32) -> Self {
        Self {
            count: m,
            c_int_f: 1e-12,
            settle_bits: n_bits,
            v_swing: 1.0,
        }
    }
}

impl PowerModel for OtaIntegratorModel {
    fn kind(&self) -> BlockKind {
        BlockKind::CsEncoderLogic
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        assert!(self.count > 0, "need at least one integrator");
        assert!(self.c_int_f > 0.0, "integration cap must be positive");
        let f_clk = design.f_sample_hz(); // one charge transfer per input sample
                                          // Settling: exponential settling to 2^-(settle_bits+1) within half a
                                          // clock period needs GBW ≈ (settle_bits+1)·ln2·f_clk/π.
        let gbw = (self.settle_bits as f64 + 1.0) * std::f64::consts::LN_2 * f_clk
            / std::f64::consts::PI
            * 2.0;
        let i_gbw = 2.0 * std::f64::consts::PI * gbw * self.c_int_f / tech.gm_over_id;
        // Slewing: I = C·dV/dt over a quarter period.
        let i_slew = 4.0 * self.c_int_f * self.v_swing * f_clk;
        // Noise: integrated kT/C of the switched cap referred to the OTA
        // input; keep it below a quarter LSB.
        let lsb = design.v_fs / (1u64 << design.n_bits) as f64;
        let vn = (lsb / 4.0).max((kt() / self.c_int_f).sqrt());
        let i_noise = (tech.nef / vn).powi(2)
            * 2.0
            * std::f64::consts::PI
            * 4.0
            * kt()
            * design.bw_lna_hz()
            * tech.v_t;
        let per_channel = design.v_dd * i_gbw.max(i_slew).max(i_noise);
        Watts(per_channel * self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::CsEncoderLogicModel;

    fn setup() -> (TechnologyParams, DesignParams) {
        (TechnologyParams::gpdk045(), DesignParams::paper_defaults(8))
    }

    #[test]
    fn active_encoder_adds_substantial_power_over_passive() {
        // The paper's Section III claim: replacing OTA integrators with
        // passive charge sharing saves encoder power. Both designs share the
        // matrix logic; the OTA bank is pure overhead of the active one.
        let (t, d) = setup();
        let ota = OtaIntegratorModel::for_encoder(150, 8)
            .power(&t, &d)
            .value();
        let logic = CsEncoderLogicModel::new(384).power(&t, &d).value();
        let active_total = ota + logic;
        assert!(
            ota > 0.3e-6,
            "OTA bank power {ota} should be a visible budget item"
        );
        assert!(
            active_total > 1.5 * logic,
            "active encoder ({active_total}) should cost well over the passive logic ({logic})"
        );
    }

    #[test]
    fn scales_linearly_with_channel_count() {
        let (t, d) = setup();
        let p75 = OtaIntegratorModel::for_encoder(75, 8).power(&t, &d).value();
        let p150 = OtaIntegratorModel::for_encoder(150, 8)
            .power(&t, &d)
            .value();
        assert!((p150 / p75 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_settling_bits_cost_power_until_slew_limited() {
        let (t, d) = setup();
        let p6 = OtaIntegratorModel {
            settle_bits: 6,
            ..OtaIntegratorModel::for_encoder(1, 6)
        }
        .power(&t, &d)
        .value();
        let p12 = OtaIntegratorModel {
            settle_bits: 12,
            ..OtaIntegratorModel::for_encoder(1, 12)
        }
        .power(&t, &d)
        .value();
        assert!(p12 >= p6);
    }

    #[test]
    fn power_is_positive_and_finite() {
        let (t, d) = setup();
        let p = OtaIntegratorModel::for_encoder(192, 8)
            .power(&t, &d)
            .value();
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_channels() {
        let (t, d) = setup();
        let _ = OtaIntegratorModel {
            count: 0,
            ..OtaIntegratorModel::for_encoder(1, 8)
        }
        .power(&t, &d)
        .value();
    }
}
