//! Technology parameters (Table III, top half).
//!
//! The paper extracted these from the gpdk045 predictive technology with
//! Cadence Virtuoso; here they are constants with the same values. A few
//! rows of the published table are garbled or missing; the documented
//! interpretations below are also recorded in DESIGN.md.

/// Process/technology constants used by the Table II power models.
///
/// All values in SI units.
///
/// ```
/// use efficsense_power::TechnologyParams;
/// let tech = TechnologyParams::gpdk045();
/// assert_eq!(tech.e_bit_j, 1e-9); // 1 nJ per transmitted bit (Table III)
/// // Bigger capacitors match better (σ ∝ 1/√area):
/// assert!(tech.cap_mismatch_sigma(1e-12) < tech.cap_mismatch_sigma(1e-15));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyParams {
    /// Minimal logic-gate capacitance `C_logic` (F). Table III: 1 fF.
    pub c_logic_f: f64,
    /// Transconductance efficiency `gm/Id` (1/V). Table III: 20 /V.
    pub gm_over_id: f64,
    /// MIM/MOM capacitor density (F/µm²). Table III prints ".001025 F/µm²",
    /// which is dimensionally impossible; interpreted as 1.025 fF/µm².
    pub cap_density_f_per_um2: f64,
    /// Minimum realisable unit capacitor `C_u,min` (F). Table III: 1 fF.
    pub c_u_min_f: f64,
    /// Capacitor matching coefficient `C_pk` (fractional σ²·µm²):
    /// σ(ΔC/C) = sqrt(C_pk / area_µm²). Table III prints "3.48e-9 %/µm²",
    /// which evaluates to matching five orders of magnitude better than any
    /// published MIM/MOM process; we use the standard 1 %·µm matching rule
    /// (σ = 1 % at 1 µm²), i.e. `C_pk = 1e-4`, and record the substitution
    /// in DESIGN.md.
    pub c_pk_frac_um2: f64,
    /// Switch leakage current `I_leak` (A). Table III: 1 pA.
    pub i_leak_a: f64,
    /// Transmitter energy per bit `E_bit` (J). Table III: 1 nJ.
    pub e_bit_j: f64,
    /// Thermal voltage `V_T` (V). Table III: 25.27 mV.
    pub v_t: f64,
    /// LNA noise-efficiency factor. Not listed in Table III (needed by the
    /// Table II LNA noise bound); classic bipolar limit is 1, good CMOS
    /// instrumentation amplifiers reach 2–4. Default 2.
    pub nef: f64,
    /// Comparator effective overdrive `V_eff` (V). Needed by the Table II
    /// comparator model but absent from Table III; default 100 mV.
    pub v_eff: f64,
    /// Comparator load capacitance (F). Default 5 fF (a few gate loads).
    pub c_comp_f: f64,
}

impl TechnologyParams {
    /// The gpdk045-extracted values of Table III.
    pub fn gpdk045() -> Self {
        Self {
            c_logic_f: 1e-15,
            gm_over_id: 20.0,
            cap_density_f_per_um2: 1.025e-15,
            c_u_min_f: 1e-15,
            c_pk_frac_um2: 1e-4,
            i_leak_a: 1e-12,
            e_bit_j: 1e-9,
            v_t: 25.27e-3,
            nef: 2.0,
            v_eff: 0.1,
            c_comp_f: 5e-15,
        }
    }

    /// Area in µm² of a capacitor of `c` farads in this technology.
    pub fn cap_area_um2(&self, c: f64) -> f64 {
        c / self.cap_density_f_per_um2
    }

    /// 1σ relative mismatch of a capacitor of `c` farads,
    /// `σ(ΔC/C) = sqrt(C_pk / area)`.
    ///
    /// Larger capacitors match better — this couples the noise/matching
    /// specification to area and hence to Fig. 9/10.
    pub fn cap_mismatch_sigma(&self, c: f64) -> f64 {
        let area = self.cap_area_um2(c).max(1e-12);
        (self.c_pk_frac_um2 / area).sqrt()
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::gpdk045()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let t = TechnologyParams::gpdk045();
        assert_eq!(t.c_logic_f, 1e-15);
        assert_eq!(t.gm_over_id, 20.0);
        assert_eq!(t.i_leak_a, 1e-12);
        assert_eq!(t.e_bit_j, 1e-9);
        assert!((t.v_t - 0.02527).abs() < 1e-12);
    }

    #[test]
    fn cap_area_scales_linearly() {
        let t = TechnologyParams::gpdk045();
        let a1 = t.cap_area_um2(1e-12);
        let a2 = t.cap_area_um2(2e-12);
        assert!((a2 / a1 - 2.0).abs() < 1e-12);
        // 1 pF at ~1 fF/µm² is ~1000 µm².
        assert!((900.0..1100.0).contains(&a1), "area {a1}");
    }

    #[test]
    fn bigger_caps_match_better() {
        let t = TechnologyParams::gpdk045();
        let s_small = t.cap_mismatch_sigma(1e-15);
        let s_big = t.cap_mismatch_sigma(1e-12);
        assert!(s_small > s_big);
        // sqrt scaling: 1000x cap -> sqrt(1000)x better matching.
        assert!((s_small / s_big - 1000f64.sqrt()).abs() < 1.0);
    }

    #[test]
    fn mismatch_magnitude_sane() {
        let t = TechnologyParams::gpdk045();
        // A 1 fF min-cap (≈1 µm²) mismatches at about 1 %.
        let s = t.cap_mismatch_sigma(t.c_u_min_f);
        assert!((0.005..0.02).contains(&s), "σ {s}");
    }

    #[test]
    fn default_is_gpdk045() {
        assert_eq!(TechnologyParams::default(), TechnologyParams::gpdk045());
    }
}
