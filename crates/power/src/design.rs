//! Design parameters (Table III, bottom half).

/// System-level design parameters shared by the behavioural and power models.
///
/// The derived quantities (`f_sample`, `f_clk`, `bw_lna`) follow the fixed
/// relations the paper states in Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignParams {
    /// Input signal bandwidth `BW_in` (Hz). Table III: 256 Hz.
    pub bw_in_hz: f64,
    /// ADC resolution `N` in bits. Table III sweeps 6–8.
    pub n_bits: u32,
    /// Supply voltage `V_dd` (V). Table III: 2 V.
    pub v_dd: f64,
    /// ADC full scale `V_FS` (V). Table III: 2 V.
    pub v_fs: f64,
    /// Reference voltage `V_ref` (V). Table III: 2 V.
    pub v_ref: f64,
    /// Oversampling margin: `f_sample = osr · BW_in`. Table III: 2.1.
    pub sample_rate_factor: f64,
    /// LNA bandwidth margin: `BW_LNA = k · BW_in`. Table III: 3.
    pub lna_bw_factor: f64,
}

impl DesignParams {
    /// Table III defaults with the given ADC resolution.
    pub fn paper_defaults(n_bits: u32) -> Self {
        Self {
            bw_in_hz: 256.0,
            n_bits,
            v_dd: 2.0,
            v_fs: 2.0,
            v_ref: 2.0,
            sample_rate_factor: 2.1,
            lna_bw_factor: 3.0,
        }
    }

    /// Sample rate `f_sample = 2.1 · BW_in` (Hz).
    pub fn f_sample_hz(&self) -> f64 {
        self.sample_rate_factor * self.bw_in_hz
    }

    /// SAR conversion clock `f_clk = (N + 1) · f_sample` (Hz).
    pub fn f_clk_hz(&self) -> f64 {
        (self.n_bits as f64 + 1.0) * self.f_sample_hz()
    }

    /// LNA bandwidth `BW_LNA = 3 · BW_in` (Hz).
    pub fn bw_lna_hz(&self) -> f64 {
        self.lna_bw_factor * self.bw_in_hz
    }

    /// Quantisation step `V_FS / 2^N` (V).
    pub fn lsb(&self) -> f64 {
        self.v_fs / (1u64 << self.n_bits) as f64
    }

    /// kT/C-limited sample capacitor: `12·kT·2^(2N) / V_FS²`, the
    /// Sundström bound keeping sampled noise below LSB²/12.
    pub fn c_sample_bound(&self) -> crate::units::Farads {
        crate::units::Farads(
            12.0 * crate::kt() * 4f64.powi(self.n_bits as i32) / (self.v_fs * self.v_fs),
        )
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bw_in_hz <= 0.0 {
            return Err(format!(
                "input bandwidth must be positive, got {}",
                self.bw_in_hz
            ));
        }
        if !(1..=16).contains(&self.n_bits) {
            return Err(format!(
                "ADC resolution {} out of supported range 1..=16",
                self.n_bits
            ));
        }
        if !(self.v_dd > 0.0 && self.v_fs > 0.0 && self.v_ref > 0.0) {
            return Err("supply, full-scale and reference voltages must be positive".into());
        }
        if self.sample_rate_factor < 2.0 {
            return Err(format!(
                "sample rate factor {} violates Nyquist (must be >= 2)",
                self.sample_rate_factor
            ));
        }
        if self.lna_bw_factor < 1.0 {
            return Err(format!(
                "LNA bandwidth factor {} would band-limit the signal",
                self.lna_bw_factor
            ));
        }
        Ok(())
    }
}

impl Default for DesignParams {
    fn default() -> Self {
        Self::paper_defaults(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_match_table_iii() {
        let d = DesignParams::paper_defaults(8);
        assert!((d.f_sample_hz() - 537.6).abs() < 1e-9);
        assert!((d.f_clk_hz() - 9.0 * 537.6).abs() < 1e-9);
        assert!((d.bw_lna_hz() - 768.0).abs() < 1e-9);
    }

    #[test]
    fn lsb_scales_with_bits() {
        let d6 = DesignParams::paper_defaults(6);
        let d8 = DesignParams::paper_defaults(8);
        assert!((d6.lsb() - 2.0 / 64.0).abs() < 1e-12);
        assert!((d6.lsb() / d8.lsb() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sample_cap_bound_grows_4x_per_bit() {
        let d6 = DesignParams::paper_defaults(6);
        let d7 = DesignParams::paper_defaults(7);
        assert!((d7.c_sample_bound() / d6.c_sample_bound() - 4.0).abs() < 1e-9);
        // For 8 bits at 2 V FS this is sub-fF: noise is not the sizing
        // constraint at biomedical resolutions — matching is.
        assert!(DesignParams::paper_defaults(8).c_sample_bound() < crate::units::Farads(1e-14));
    }

    #[test]
    fn validate_accepts_paper_values() {
        for n in 6..=8 {
            DesignParams::paper_defaults(n)
                .validate()
                .expect("paper values are valid");
        }
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut d = DesignParams::paper_defaults(8);
        d.n_bits = 0;
        assert!(d.validate().is_err());
        let mut d = DesignParams::paper_defaults(8);
        d.sample_rate_factor = 1.5;
        assert!(d.validate().unwrap_err().contains("Nyquist"));
        let mut d = DesignParams::paper_defaults(8);
        d.bw_in_hz = -1.0;
        assert!(d.validate().is_err());
    }
}
