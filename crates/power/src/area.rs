//! Capacitor-count area model (Fig. 9 / Fig. 10).
//!
//! The paper estimates mixed-signal chip area from the total capacitance,
//! expressed in multiples of the minimum technology capacitor `C_u,min`.

use crate::design::DesignParams;
use crate::tech::TechnologyParams;

/// Accumulates the capacitors of a design and reports totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AreaModel {
    entries: Vec<(String, f64, usize)>, // (label, unit value F, count)
}

impl AreaModel {
    /// An empty area budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `count` capacitors of `c_f` farads each under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `c_f` is not positive and finite.
    pub fn add(&mut self, label: &str, c_f: f64, count: usize) {
        assert!(
            c_f > 0.0 && c_f.is_finite(),
            "capacitance must be positive, got {c_f}"
        );
        self.entries.push((label.to_string(), c_f, count));
    }

    /// Total capacitance.
    pub fn total_capacitance(&self) -> crate::units::Farads {
        crate::units::Farads(self.entries.iter().map(|(_, c, n)| c * *n as f64).sum())
    }

    /// Total capacitance in multiples of `C_u,min` — the x-axis of Fig. 9.
    pub fn total_units(&self, tech: &TechnologyParams) -> f64 {
        self.total_capacitance().value() / tech.c_u_min_f
    }

    /// Total capacitor area in µm².
    pub fn total_area_um2(&self, tech: &TechnologyParams) -> f64 {
        tech.cap_area_um2(self.total_capacitance().value())
    }

    /// Iterator over `(label, unit_capacitance_f, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64, usize)> + '_ {
        self.entries.iter().map(|(l, c, n)| (l.as_str(), *c, *n))
    }

    /// Area budget of the baseline (no-CS) chain: the binary-weighted DAC
    /// array (`2^N` units of `c_u`) plus one kT/C-bound sample capacitor
    /// (at least `C_u,min`).
    pub fn baseline(tech: &TechnologyParams, design: &DesignParams, c_u_f: f64) -> Self {
        let mut a = Self::new();
        a.add("SAR DAC array", c_u_f, 1 << design.n_bits);
        a.add(
            "S&H capacitor",
            design.c_sample_bound().value().max(tech.c_u_min_f),
            1,
        );
        a
    }

    /// Area budget of the CS chain: the baseline converter array plus the
    /// charge-sharing bank (`m` hold capacitors and `s` sample capacitors).
    #[allow(clippy::too_many_arguments)]
    pub fn compressive(
        tech: &TechnologyParams,
        design: &DesignParams,
        c_u_f: f64,
        m: usize,
        s: usize,
        c_hold_f: f64,
        c_sample_f: f64,
    ) -> Self {
        let mut a = Self::baseline(tech, design, c_u_f);
        a.add("CS hold bank", c_hold_f, m);
        a.add("CS sample caps", c_sample_f, s);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechnologyParams, DesignParams) {
        (TechnologyParams::gpdk045(), DesignParams::paper_defaults(8))
    }

    #[test]
    fn totals_accumulate() {
        let (tech, _) = setup();
        let mut a = AreaModel::new();
        a.add("x", 1e-15, 10);
        a.add("y", 2e-15, 5);
        assert!((a.total_capacitance().value() - 20e-15).abs() < 1e-27);
        assert!((a.total_units(&tech) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_dominated_by_dac_array() {
        let (tech, design) = setup();
        let a = AreaModel::baseline(&tech, &design, 1e-15);
        // 256 unit caps + 1 sample cap.
        assert!((a.total_units(&tech) - 257.0).abs() < 1.0);
    }

    #[test]
    fn cs_adds_substantial_area() {
        let (tech, design) = setup();
        let base = AreaModel::baseline(&tech, &design, 1e-15);
        let cs = AreaModel::compressive(&tech, &design, 1e-15, 150, 2, 1e-12, 0.2e-12);
        // 150 × 1 pF of hold caps dwarfs the 256 fF DAC — the Fig. 9 message.
        assert!(cs.total_units(&tech) > 100.0 * base.total_units(&tech));
    }

    #[test]
    fn area_um2_consistent_with_density() {
        let (tech, _) = setup();
        let mut a = AreaModel::new();
        a.add("c", 1.025e-15, 1);
        assert!((a.total_area_um2(&tech) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iter_exposes_entries() {
        let mut a = AreaModel::new();
        a.add("dac", 1e-15, 4);
        let items: Vec<_> = a.iter().collect();
        assert_eq!(items, vec![("dac", 1e-15, 4)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_cap() {
        AreaModel::new().add("bad", 0.0, 1);
    }
}
