//! # efficsense-power
//!
//! Analytical power and area models for mixed-signal sensor front-ends —
//! the EffiCSense model library of Table II, parameterised by the extracted
//! technology and design parameters of Table III (Van Assche et al.,
//! DATE 2022).
//!
//! Each circuit block gets a closed-form *power-bound* model: a first-order
//! estimate of its consumption as a function of the same design variables
//! that drive its behavioural model, so a parameter sweep evaluates signal
//! quality and power simultaneously.
//!
//! ```
//! use efficsense_power::{DesignParams, TechnologyParams, Watts, models::{LnaModel, PowerModel}};
//! let tech = TechnologyParams::gpdk045();
//! let design = DesignParams::paper_defaults(8);
//! let lna = LnaModel { noise_floor_vrms: 2e-6, c_load_f: 1e-12, gain: 1000.0 };
//! let p = lna.power(&tech, &design);
//! assert!(p > Watts(0.0) && p < Watts::milli(1.0), "LNA power {p} is in the µW regime");
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod area;
pub mod breakdown;
pub mod design;
pub mod fom;
pub mod models;
pub mod ota;
pub mod tech;
pub mod units;

pub use area::AreaModel;
pub use breakdown::{BlockKind, PowerBreakdown};
pub use design::DesignParams;
pub use models::PowerModel;
pub use tech::TechnologyParams;
pub use units::{Amperes, Farads, Hertz, Joules, Volts, Watts};

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;
/// Nominal absolute temperature (K) for all kT terms — 300 K as in the
/// power-bound literature the paper cites.
pub const TEMPERATURE_K: f64 = 300.0;

/// `kT` at the nominal temperature, in joules.
pub const fn kt() -> f64 {
    BOLTZMANN * TEMPERATURE_K
}
