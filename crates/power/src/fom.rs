//! Figures of merit.
//!
//! The paper's Section II positions EffiCSense against FOM-based power
//! estimation ([2], [12]): FOMs compress a converter or amplifier into one
//! scalar, which is exactly why they cannot drive mixed-signal co-design —
//! but they remain the standard way to sanity-check a design point against
//! survey data. This module computes the classic FOMs from the framework's
//! own quantities so sweeps can report them alongside the analytical models.

use crate::units::{Joules, Watts};

/// Walden ADC figure of merit: `P / (2^ENOB · f_s)` in joules per
/// conversion-step. Lower is better; state-of-the-art SAR ADCs reach a few
/// fJ/step.
///
/// # Panics
///
/// Panics unless power and sample rate are positive.
pub fn walden_fom(power: Watts, enob_bits: f64, f_sample_hz: f64) -> Joules {
    assert!(power.value() > 0.0, "power must be positive");
    assert!(f_sample_hz > 0.0, "sample rate must be positive");
    Joules(power.value() / (2f64.powf(enob_bits) * f_sample_hz))
}

/// Schreier ADC figure of merit: `SNDR_dB + 10·log10(BW / P)` in dB.
/// Higher is better; thermal-noise-limited designs reach ~180 dB.
///
/// # Panics
///
/// Panics unless power and bandwidth are positive.
#[must_use]
pub fn schreier_fom_db(sndr_db: f64, bandwidth_hz: f64, power: Watts) -> f64 {
    assert!(power.value() > 0.0, "power must be positive");
    assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
    sndr_db + 10.0 * (bandwidth_hz / power.value()).log10()
}

/// Noise efficiency factor of an amplifier: the ratio of its input noise to
/// that of a single ideal bipolar transistor at the same current,
/// `NEF = v_n,rms · sqrt(2·I_tot / (π·V_T·4kT·BW))`.
///
/// # Panics
///
/// Panics unless all arguments are positive.
#[must_use]
pub fn nef(input_noise_vrms: f64, total_current_a: f64, bandwidth_hz: f64, v_t: f64) -> f64 {
    assert!(input_noise_vrms > 0.0, "noise must be positive");
    assert!(total_current_a > 0.0, "current must be positive");
    assert!(
        bandwidth_hz > 0.0 && v_t > 0.0,
        "bandwidth and V_T must be positive"
    );
    let kt4 = 4.0 * crate::kt();
    input_noise_vrms
        * (2.0 * total_current_a / (std::f64::consts::PI * v_t * kt4 * bandwidth_hz)).sqrt()
}

/// Power efficiency factor of a full sensing system (energy per effective
/// conversion, including the transmitter): `P_total / (f_s · 2^ENOB)` —
/// the Walden form applied at system level, as surveys of biomedical
/// front-ends do.
pub fn system_fom(total_power: Watts, enob_bits: f64, f_sample_hz: f64) -> Joules {
    walden_fom(total_power, enob_bits, f_sample_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{LnaModel, PowerModel};
    use crate::{DesignParams, TechnologyParams};

    #[test]
    fn walden_known_value() {
        // 1 µW, 8 effective bits, 1 MS/s → ~3.9 fJ/step.
        let f = walden_fom(Watts::micro(1.0), 8.0, 1e6);
        assert!((f.value() - 3.90625e-15).abs() < 1e-20);
    }

    #[test]
    fn walden_improves_with_enob_at_fixed_power() {
        let a = walden_fom(Watts::micro(1.0), 6.0, 537.6);
        let b = walden_fom(Watts::micro(1.0), 8.0, 537.6);
        assert!(b < a);
    }

    #[test]
    fn schreier_known_value() {
        // 70 dB SNDR, 256 Hz BW, 1 µW → 70 + 10·log10(2.56e8) ≈ 154.1 dB.
        let f = schreier_fom_db(70.0, 256.0, Watts::micro(1.0));
        assert!((f - 154.08).abs() < 0.05, "got {f}");
    }

    #[test]
    fn nef_of_ideal_bipolar_is_one() {
        // By definition: a device whose noise equals sqrt(π·V_T·4kT·BW/(2·I)).
        let v_t = 25.27e-3;
        let bw = 768.0;
        let i = 1e-6;
        let vn = (std::f64::consts::PI * v_t * 4.0 * crate::kt() * bw / (2.0 * i)).sqrt();
        let n = nef(vn, i, bw, v_t);
        assert!((n - 1.0).abs() < 1e-9, "NEF {n}");
    }

    #[test]
    fn lna_model_is_consistent_with_its_nef() {
        // The Table II noise bound should give back approximately the
        // technology NEF when inverted through the NEF formula.
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let vn = 2e-6;
        let p = LnaModel {
            noise_floor_vrms: vn,
            c_load_f: 1e-15,
            gain: 4000.0,
        }
        .power(&tech, &design);
        let i = p.value() / design.v_dd;
        let measured_nef = nef(vn, i, design.bw_lna_hz(), tech.v_t);
        // The Table II bound uses 2π rather than π/2 inside the square —
        // a factor-2 convention difference; accept the band around NEF=2.
        assert!(
            (1.0..8.0).contains(&measured_nef),
            "NEF {measured_nef} inconsistent with the model"
        );
    }

    #[test]
    fn system_fom_matches_walden_form() {
        assert_eq!(
            system_fom(Watts(8.8e-6), 7.5, 537.6),
            walden_fom(Watts(8.8e-6), 7.5, 537.6)
        );
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn rejects_zero_power() {
        let _ = walden_fom(Watts(0.0), 8.0, 100.0);
    }
}
