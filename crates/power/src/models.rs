//! The Table II analytical power models.
//!
//! Each model is a small struct holding the block's free design variables;
//! [`PowerModel::power`] evaluates the closed-form bound against the shared
//! [`TechnologyParams`] and [`DesignParams`].
//!
//! ## Unit conventions
//!
//! Table II mixes power- and current-valued expressions. Rows that evaluate
//! to a current (LNA bound currents, the S&H charging term) are multiplied by
//! `V_dd` here so that every model returns watts; each model's docs state
//! exactly what is computed.

use crate::breakdown::BlockKind;
use crate::design::DesignParams;
use crate::kt;
use crate::tech::TechnologyParams;
use crate::units::Watts;

/// A closed-form block power estimate.
pub trait PowerModel {
    /// Which block this model describes.
    fn kind(&self) -> BlockKind;

    /// Power under the given technology and design parameters.
    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts;
}

/// LNA power: `V_dd · max(I_GBW, I_charge, I_noise)` (Table II row 1,
/// Steyaert-style bounds).
///
/// * `I_GBW   = 2π · GBW · C_load / (gm/Id)` — speed requirement,
/// * `I_charge = V_ref · f_clk · C_load` — switched-cap load charging,
/// * `I_noise = (NEF / v_n)² · 2π · 4kT · BW_LNA · V_T` — thermal noise floor.
///
/// The binding constraint for µV-noise biomedical LNAs is almost always the
/// noise term.
#[derive(Debug, Clone, PartialEq)]
pub struct LnaModel {
    /// Target input-referred noise floor (V rms, integrated over `BW_LNA`).
    pub noise_floor_vrms: f64,
    /// Load capacitance seen by the LNA output (F). The baseline chain loads
    /// the LNA with the S&H capacitor; the CS chain with `C_hold`.
    pub c_load_f: f64,
    /// Closed-loop voltage gain (sets the gain-bandwidth requirement).
    pub gain: f64,
}

impl PowerModel for LnaModel {
    fn kind(&self) -> BlockKind {
        BlockKind::Lna
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        assert!(self.noise_floor_vrms > 0.0, "noise floor must be positive");
        let gbw = self.gain * design.bw_lna_hz();
        let i_gbw = 2.0 * std::f64::consts::PI * gbw * self.c_load_f / tech.gm_over_id;
        let i_charge = design.v_ref * design.f_clk_hz() * self.c_load_f;
        let nef_term = tech.nef / self.noise_floor_vrms;
        let i_noise = nef_term
            * nef_term
            * 2.0
            * std::f64::consts::PI
            * 4.0
            * kt()
            * design.bw_lna_hz()
            * tech.v_t;
        Watts(design.v_dd * i_gbw.max(i_charge).max(i_noise))
    }
}

/// Sample-and-hold power (Table II row 2, Sundström bound).
///
/// The printed expression `V_ref · f_clk · 12kT·2^(2N)/V_FS²` is a current
/// (charging the kT/C-limited sample capacitor every clock); it is multiplied
/// by `V_dd` to yield power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleHoldModel;

impl PowerModel for SampleHoldModel {
    fn kind(&self) -> BlockKind {
        BlockKind::SampleHold
    }

    fn power(&self, _tech: &TechnologyParams, design: &DesignParams) -> Watts {
        let c_s = design.c_sample_bound();
        let i = design.v_ref * design.f_clk_hz() * c_s.value();
        Watts(design.v_dd * i)
    }
}

/// SAR comparator power (Table II row 3, Sundström bound):
/// `2N·ln2 · (f_clk − f_sample) · C_load · V_FS · V_eff`.
///
/// `(f_clk − f_sample) = N·f_sample` is the comparison rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComparatorModel;

impl PowerModel for ComparatorModel {
    fn kind(&self) -> BlockKind {
        BlockKind::Comparator
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        let n = design.n_bits as f64;
        Watts(
            2.0 * n
                * std::f64::consts::LN_2
                * (design.f_clk_hz() - design.f_sample_hz())
                * tech.c_comp_f
                * design.v_fs
                * tech.v_eff,
        )
    }
}

/// SAR control logic power (Table II row 4, Bos et al.):
/// `α · (2N+1) · C_logic · V_dd² · (f_clk − f_sample)`, α = 0.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SarLogicModel {
    /// Switching activity factor α. Paper value 0.4.
    pub alpha: f64,
}

impl Default for SarLogicModel {
    fn default() -> Self {
        Self { alpha: 0.4 }
    }
}

impl PowerModel for SarLogicModel {
    fn kind(&self) -> BlockKind {
        BlockKind::SarLogic
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        let n = design.n_bits as f64;
        Watts(
            self.alpha
                * (2.0 * n + 1.0)
                * tech.c_logic_f
                * design.v_dd
                * design.v_dd
                * (design.f_clk_hz() - design.f_sample_hz()),
        )
    }
}

/// Capacitive-DAC switching power (Table II row 5, Saberi et al.):
///
/// `P = 2^N·f_clk·C_u/(N+1) · { (5/6 − (½)^N − ⅓(½)^{2N})·V_ref² − ½·V_in² − (½)^N·V_in·V_ref }`
///
/// `V_in` is the (signal-dependent) converter input; the average switching
/// energy depends on it, so callers pass the RMS input level of the scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DacModel {
    /// Unit capacitor `C_u` (F); must be at least the technology minimum.
    pub c_u_f: f64,
    /// RMS input voltage at the DAC (V).
    pub v_in_rms: f64,
}

impl PowerModel for DacModel {
    fn kind(&self) -> BlockKind {
        BlockKind::Dac
    }

    fn power(&self, _tech: &TechnologyParams, design: &DesignParams) -> Watts {
        let n = design.n_bits as f64;
        let half_n = 0.5f64.powi(design.n_bits as i32);
        let half_2n = half_n * half_n;
        let bracket = (5.0 / 6.0 - half_n - half_2n / 3.0) * design.v_ref * design.v_ref
            - 0.5 * self.v_in_rms * self.v_in_rms
            - half_n * self.v_in_rms * design.v_ref;
        let rate = 2f64.powi(design.n_bits as i32) * design.f_clk_hz() * self.c_u_f / (n + 1.0);
        Watts((rate * bracket).max(0.0))
    }
}

/// Transmitter power (Table II row 6): `f_clk/(N+1) · N · E_bit`, i.e.
/// `f_sample · N · E_bit`, scaled by the achieved `compression_ratio`
/// (1 for the baseline, `M/N_Φ` for compressive sensing).
#[derive(Debug, Clone, PartialEq)]
pub struct TransmitterModel {
    /// Output data rate relative to the Nyquist-rate baseline (0, 1].
    pub compression_ratio: f64,
}

impl Default for TransmitterModel {
    fn default() -> Self {
        Self {
            compression_ratio: 1.0,
        }
    }
}

impl PowerModel for TransmitterModel {
    fn kind(&self) -> BlockKind {
        BlockKind::Transmitter
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        assert!(
            self.compression_ratio > 0.0 && self.compression_ratio <= 1.0,
            "compression ratio must be in (0, 1], got {}",
            self.compression_ratio
        );
        let n = design.n_bits as f64;
        Watts(design.f_clk_hz() / (n + 1.0) * n * tech.e_bit_j * self.compression_ratio)
    }
}

/// CS encoder logic power (Table II row 7):
/// `α · (⌈log₂ N_Φ⌉ + 1) · N_Φ · 8·C_logic · V_dd² · f_clk`, α = 1.
///
/// Models the sensing-matrix shift register (one 8-gate cell per matrix
/// column stage) plus switch drivers.
#[derive(Debug, Clone, PartialEq)]
pub struct CsEncoderLogicModel {
    /// Sensing matrix frame length `N_Φ` (columns).
    pub n_phi: usize,
    /// Switching activity factor α. Paper value 1.
    pub alpha: f64,
}

impl CsEncoderLogicModel {
    /// Paper-default activity (α = 1) for a frame of `n_phi` samples.
    pub fn new(n_phi: usize) -> Self {
        Self { n_phi, alpha: 1.0 }
    }
}

impl PowerModel for CsEncoderLogicModel {
    fn kind(&self) -> BlockKind {
        BlockKind::CsEncoderLogic
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        assert!(self.n_phi > 0, "frame length must be positive");
        let log_term = (self.n_phi as f64).log2().ceil() + 1.0;
        Watts(
            self.alpha
                * log_term
                * self.n_phi as f64
                * 8.0
                * tech.c_logic_f
                * design.v_dd
                * design.v_dd
                * design.f_clk_hz(),
        )
    }
}

/// Static leakage of a switch network: `V_dd · I_leak · n_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakageModel {
    /// Number of leaking switches.
    pub n_switches: usize,
}

impl PowerModel for LeakageModel {
    fn kind(&self) -> BlockKind {
        BlockKind::Leakage
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        Watts(design.v_dd * tech.i_leak_a * self.n_switches as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechnologyParams, DesignParams) {
        (TechnologyParams::gpdk045(), DesignParams::paper_defaults(8))
    }

    #[test]
    fn lna_noise_limited_regime() {
        let (t, d) = setup();
        let lna = LnaModel {
            noise_floor_vrms: 1e-6,
            c_load_f: 1e-12,
            gain: 1000.0,
        };
        let p = lna.power(&t, &d).value();
        // At 1 µV the noise bound dominates; expect tens of µW.
        assert!((1e-6..1e-4).contains(&p), "LNA power {p}");
    }

    #[test]
    fn lna_power_falls_with_noise_squared() {
        let (t, d) = setup();
        let p1 = LnaModel {
            noise_floor_vrms: 2e-6,
            c_load_f: 1e-12,
            gain: 1000.0,
        }
        .power(&t, &d)
        .value();
        let p2 = LnaModel {
            noise_floor_vrms: 4e-6,
            c_load_f: 1e-12,
            gain: 1000.0,
        }
        .power(&t, &d)
        .value();
        assert!(
            (p1 / p2 - 4.0).abs() < 0.01,
            "noise-limited power scales 1/vn²"
        );
    }

    #[test]
    fn lna_floor_set_by_load_at_high_noise() {
        let (t, d) = setup();
        // At a huge tolerated noise floor the charging/GBW terms take over.
        let p_hi = LnaModel {
            noise_floor_vrms: 1e-3,
            c_load_f: 10e-12,
            gain: 1000.0,
        }
        .power(&t, &d)
        .value();
        let p_hi2 = LnaModel {
            noise_floor_vrms: 10e-3,
            c_load_f: 10e-12,
            gain: 1000.0,
        }
        .power(&t, &d)
        .value();
        assert_eq!(
            p_hi, p_hi2,
            "once load-limited, noise floor no longer matters"
        );
        assert!(p_hi > 0.0);
    }

    #[test]
    fn lna_headline_regime_matches_paper_scale() {
        // The paper's baseline optimum spends ~4 µW in the LNA around a
        // couple of µV noise floor — check the model's order of magnitude.
        let (t, d) = setup();
        let p = LnaModel {
            noise_floor_vrms: 2e-6,
            c_load_f: 1e-12,
            gain: 1000.0,
        }
        .power(&t, &d)
        .value();
        assert!((1e-6..2e-5).contains(&p), "got {p} W");
    }

    #[test]
    fn sample_hold_scales_16x_per_two_bits() {
        let t = TechnologyParams::gpdk045();
        let p6 = SampleHoldModel
            .power(&t, &DesignParams::paper_defaults(6))
            .value();
        let p8 = SampleHoldModel
            .power(&t, &DesignParams::paper_defaults(8))
            .value();
        // C ∝ 2^2N (16x per 2 bits) but f_clk also grows (9/7 ratio).
        let expect = 16.0 * 9.0 / 7.0;
        assert!((p8 / p6 - expect).abs() < 0.01, "ratio {}", p8 / p6);
    }

    #[test]
    fn comparator_matches_hand_computation() {
        let (t, d) = setup();
        let p = ComparatorModel.power(&t, &d).value();
        let expect = 16.0 * std::f64::consts::LN_2 * (8.0 * 537.6) * 5e-15 * 2.0 * 0.1;
        assert!((p - expect).abs() < 1e-18, "{p} vs {expect}");
    }

    #[test]
    fn sar_logic_matches_hand_computation() {
        let (t, d) = setup();
        let p = SarLogicModel::default().power(&t, &d).value();
        let expect = 0.4 * 17.0 * 1e-15 * 4.0 * (8.0 * 537.6);
        assert!((p - expect).abs() < 1e-18);
    }

    #[test]
    fn dac_bracket_positive_within_fullscale() {
        let (t, d) = setup();
        for v_in in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let p = DacModel {
                c_u_f: 1e-15,
                v_in_rms: v_in,
            }
            .power(&t, &d)
            .value();
            assert!(p >= 0.0, "v_in={v_in}: negative power {p}");
        }
    }

    #[test]
    fn dac_power_decreases_with_input_level() {
        // The Saberi average switching energy falls as the input RMS rises.
        let (t, d) = setup();
        let p0 = DacModel {
            c_u_f: 1e-15,
            v_in_rms: 0.0,
        }
        .power(&t, &d)
        .value();
        let p1 = DacModel {
            c_u_f: 1e-15,
            v_in_rms: 1.0,
        }
        .power(&t, &d)
        .value();
        assert!(p0 > p1);
    }

    #[test]
    fn transmitter_is_4_3_uw_at_8_bits() {
        // f_sample·N·E_bit = 537.6 · 8 · 1 nJ ≈ 4.3 µW — the paper's dominant
        // baseline contributor.
        let (t, d) = setup();
        let p = TransmitterModel::default().power(&t, &d).value();
        assert!((p - 537.6 * 8.0 * 1e-9).abs() < 1e-12);
    }

    #[test]
    fn transmitter_compression_scales_linearly() {
        let (t, d) = setup();
        let full = TransmitterModel::default().power(&t, &d).value();
        let cs = TransmitterModel {
            compression_ratio: 75.0 / 384.0,
        }
        .power(&t, &d)
        .value();
        assert!((cs / full - 75.0 / 384.0).abs() < 1e-12);
    }

    #[test]
    fn cs_encoder_logic_order_of_magnitude() {
        // ~0.6 µW at N_Φ=384, N=8 — the "marginal increase" the paper cites.
        let (t, d) = setup();
        let p = CsEncoderLogicModel::new(384).power(&t, &d).value();
        assert!((1e-7..2e-6).contains(&p), "CS logic power {p}");
        let expect = 10.0 * 384.0 * 8.0 * 1e-15 * 4.0 * d.f_clk_hz();
        assert!((p - expect).abs() < 1e-15);
    }

    #[test]
    fn leakage_linear_in_switches() {
        let (t, d) = setup();
        let p1 = LeakageModel { n_switches: 100 }.power(&t, &d).value();
        let p2 = LeakageModel { n_switches: 200 }.power(&t, &d).value();
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
        assert!((p1 - 2.0 * 1e-12 * 100.0).abs() < 1e-20);
    }

    #[test]
    fn all_models_report_their_kind() {
        let (t, d) = setup();
        let models: Vec<(Box<dyn PowerModel>, BlockKind)> = vec![
            (
                Box::new(LnaModel {
                    noise_floor_vrms: 1e-6,
                    c_load_f: 1e-12,
                    gain: 100.0,
                }),
                BlockKind::Lna,
            ),
            (Box::new(SampleHoldModel), BlockKind::SampleHold),
            (Box::new(ComparatorModel), BlockKind::Comparator),
            (Box::new(SarLogicModel::default()), BlockKind::SarLogic),
            (
                Box::new(DacModel {
                    c_u_f: 1e-15,
                    v_in_rms: 0.5,
                }),
                BlockKind::Dac,
            ),
            (
                Box::new(TransmitterModel::default()),
                BlockKind::Transmitter,
            ),
            (
                Box::new(CsEncoderLogicModel::new(384)),
                BlockKind::CsEncoderLogic,
            ),
            (
                Box::new(LeakageModel { n_switches: 10 }),
                BlockKind::Leakage,
            ),
        ];
        for (m, k) in models {
            assert_eq!(m.kind(), k);
            assert!(m.power(&t, &d).value().is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn transmitter_rejects_zero_ratio() {
        let (t, d) = setup();
        let _ = TransmitterModel {
            compression_ratio: 0.0,
        }
        .power(&t, &d)
        .value();
    }
}
