//! Lightweight SI unit helpers.
//!
//! Internally every model computes in plain `f64` SI units (volts, farads,
//! hertz, watts). These newtypes exist at API boundaries where confusing a
//! capacitance for a voltage would be an easy, catastrophic mistake, and for
//! readable engineering-notation display in reports.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $symbol:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[must_use]
        pub struct $name(pub f64);

        impl $name {
            /// The underlying SI value.
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }
            /// Constructs from a value scaled by 1e-15.
            pub fn femto(v: f64) -> Self {
                Self(v * 1e-15)
            }
            /// Constructs from a value scaled by 1e-12.
            pub fn pico(v: f64) -> Self {
                Self(v * 1e-12)
            }
            /// Constructs from a value scaled by 1e-9.
            pub fn nano(v: f64) -> Self {
                Self(v * 1e-9)
            }
            /// Constructs from a value scaled by 1e-6.
            pub fn micro(v: f64) -> Self {
                Self(v * 1e-6)
            }
            /// Constructs from a value scaled by 1e-3.
            pub fn milli(v: f64) -> Self {
                Self(v * 1e-3)
            }
            /// The larger of two quantities (by SI value).
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }
            /// The smaller of two quantities (by SI value).
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let (scaled, prefix) = engineering(self.0);
                write!(f, "{scaled:.4} {prefix}{}", $symbol)
            }
        }
    };
}

unit!(
    /// An electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// A capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// A power in watts.
    Watts,
    "W"
);
unit!(
    /// A current in amperes.
    Amperes,
    "A"
);
unit!(
    /// An energy in joules.
    Joules,
    "J"
);

/// Splits a value into (mantissa, SI prefix) for engineering display.
#[must_use]
pub fn engineering(v: f64) -> (f64, &'static str) {
    if efficsense_dsp::approx::is_zero(v) || !v.is_finite() {
        return (v, "");
    }
    let prefixes: [(f64, &str); 9] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = v.abs();
    for (scale, p) in prefixes {
        if mag >= scale {
            return (v / scale, p);
        }
    }
    (v / 1e-15, "f")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(Farads::femto(1.0).value(), 1e-15);
        assert_eq!(Farads::pico(2.0).value(), 2e-12);
        assert_eq!(Volts::milli(25.27).value(), 0.02527);
        assert_eq!(Watts::micro(2.44).value(), 2.44e-6);
        assert_eq!(Hertz::nano(1.0).value(), 1e-9);
    }

    #[test]
    fn display_uses_si_prefix() {
        assert_eq!(Watts::micro(2.44).to_string(), "2.4400 µW");
        assert_eq!(Volts(2.0).to_string(), "2.0000 V");
        assert_eq!(Farads::femto(1.0).to_string(), "1.0000 fF");
        assert_eq!(Hertz(537.6).to_string(), "537.6000 Hz");
    }

    #[test]
    fn engineering_edge_cases() {
        assert_eq!(engineering(0.0), (0.0, ""));
        let (m, p) = engineering(1.5e9);
        assert_eq!((m, p), (1.5, "G"));
        let (m, p) = engineering(-3e-6);
        assert!((m + 3.0).abs() < 1e-12);
        assert_eq!(p, "µ");
    }

    #[test]
    fn from_f64() {
        let w: Watts = 1e-6.into();
        assert_eq!(w.value(), 1e-6);
    }

    #[test]
    fn ordering_works() {
        assert!(Watts(1.0) > Watts(0.5));
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!((Watts(1.0) + Watts(0.5)).value(), 1.5);
        assert_eq!((Watts(1.0) - Watts(0.25)).value(), 0.75);
        assert_eq!((Watts(2.0) * 3.0).value(), 6.0);
        assert_eq!((3.0 * Watts(2.0)).value(), 6.0);
        assert_eq!((Watts(6.0) / 3.0).value(), 2.0);
        assert_eq!(Watts(6.0) / Watts(3.0), 2.0);
        let mut w = Watts(1.0);
        w += Watts(1.0);
        assert_eq!(w.value(), 2.0);
        let total: Watts = [Watts(1.0), Watts(2.0)].into_iter().sum();
        assert_eq!(total.value(), 3.0);
        assert_eq!(Farads(1e-12).max(Farads(2e-12)).value(), 2e-12);
        assert_eq!(Farads(1e-12).min(Farads(2e-12)).value(), 1e-12);
    }
}
