//! `cargo xtask` — workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo xtask lint [--root <dir>]
//! ```
//!
//! Runs the domain-aware lint pass over every `.rs` file in the workspace
//! and exits non-zero when violations are found. Diagnostics are printed as
//! `file:line: rule-id: message`, one per line, sorted by path.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n\nusage: cargo xtask lint [--root <dir>]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [--root <dir>]");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match xtask::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("xtask lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: I/O error under {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

/// The workspace root is two levels up from this crate's manifest
/// (`crates/xtask` → workspace), falling back to the current directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}
