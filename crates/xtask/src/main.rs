//! `cargo xtask` — workspace automation. Three subcommands:
//!
//! ```text
//! cargo xtask lint [--root <dir>] [--format text|json|sarif]
//! cargo xtask bench-diff [--baseline <path>] [--current <path>] [--tolerance <frac>] [--min <rate>]
//! cargo xtask trace report --input <trace.jsonl> [--profile-out <path>] [--folded-out <path>]
//! cargo xtask trace diff <old.prof> <new.prof> [--tolerance <frac>]
//! ```
//!
//! `lint` runs the domain-aware lint pass over every `.rs` file in the
//! workspace and exits non-zero when violations are found (including
//! suppression-budget overruns against `lint-budget.toml` when present at
//! the root). In `text` mode diagnostics print as `file:line: rule-id:
//! message`, one per line, sorted by path; `json` and `sarif` write a
//! machine-readable document to stdout and the human summary to stderr.
//!
//! `bench-diff` compares two `BENCH_sweep.json` summaries (both default to
//! the workspace copy, so at least one path is normally given) and exits
//! non-zero when uncached sweep throughput regressed by more than the
//! tolerance (default 0.3, i.e. 30%). `--min` additionally pins an absolute
//! throughput floor on the current summary, so a refreshed baseline cannot
//! erode back below a hard-won speedup one within-tolerance dip at a time.
//!
//! `trace report` reconstructs the causal span forest from a JSONL trace
//! and prints per-stage wall/self-time (exact p50/p95/p99) plus the
//! cache-efficacy join, optionally persisting the deterministic profile
//! JSON and a folded-stack flamegraph. `trace diff` compares two
//! persisted profiles, attributes the per-point cost change to stages,
//! and exits non-zero on a regression beyond the tolerance.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{bench_diff, trace_cmd};

const USAGE: &str = "usage: cargo xtask lint [--root <dir>] [--format text|json|sarif]\n       cargo xtask bench-diff [--baseline <path>] [--current <path>] [--tolerance <frac>] [--min <rate>]\n       cargo xtask trace report --input <trace.jsonl> [--profile-out <path>] [--folded-out <path>]\n       cargo xtask trace diff <old.prof> <new.prof> [--tolerance <frac>]";

/// Output mode for `cargo xtask lint`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-diff") => bench_diff_cmd(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "--format must be text, json or sarif, got `{}`",
                        other.unwrap_or("<missing>")
                    );
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let mut report = match xtask::lint_workspace_report(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: I/O error under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    // Suppression budget: enforced whenever the committed budget file is
    // present at the lint root (it always is at the workspace root).
    let budget_path = root.join("lint-budget.toml");
    match std::fs::read_to_string(&budget_path) {
        Ok(text) => match xtask::budget::parse(&text) {
            Ok(budget) => report
                .diagnostics
                .extend(xtask::budget::check(&budget, &report.allow_counts)),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "xtask lint: note: no lint-budget.toml under {}; suppression budget not enforced",
                root.display()
            );
        }
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", budget_path.display());
            return ExitCode::FAILURE;
        }
    }

    match format {
        Format::Json => println!("{}", xtask::emit::render_json(&report)),
        Format::Sarif => println!("{}", xtask::emit::render_sarif(&report.diagnostics)),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
        }
    }
    // In machine-readable modes the human summary goes to stderr so the
    // stdout document stays parseable.
    let summary = if report.diagnostics.is_empty() {
        "xtask lint: clean".to_string()
    } else {
        format!("xtask lint: {} violation(s)", report.diagnostics.len())
    };
    if format == Format::Text {
        println!("{summary}");
    } else {
        eprintln!("{summary}");
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn bench_diff_cmd(args: &[String]) -> ExitCode {
    let default_summary = workspace_root().join("BENCH_sweep.json");
    let mut baseline = default_summary.clone();
    let mut current = default_summary;
    let mut tolerance = bench_diff::DEFAULT_TOLERANCE;
    let mut min: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match (a.as_str(), it.next()) {
            ("--baseline", Some(p)) => baseline = PathBuf::from(p),
            ("--current", Some(p)) => current = PathBuf::from(p),
            ("--tolerance", Some(t)) => match t.parse::<f64>() {
                Ok(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => {
                    eprintln!("--tolerance must be a fraction in [0, 1), got `{t}`");
                    return ExitCode::FAILURE;
                }
            },
            ("--min", Some(v)) => match v.parse::<f64>() {
                Ok(f) if f.is_finite() && f > 0.0 => min = Some(f),
                _ => {
                    eprintln!("--min must be a positive throughput in points/s, got `{v}`");
                    return ExitCode::FAILURE;
                }
            },
            (opt @ ("--baseline" | "--current" | "--tolerance" | "--min"), None) => {
                eprintln!("{opt} requires an argument");
                return ExitCode::FAILURE;
            }
            (other, _) => {
                eprintln!("unknown bench-diff option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let read = |label: &str, path: &PathBuf| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {label} summary {}: {e}", path.display()))
    };
    let diff = read("baseline", &baseline)
        .and_then(|b| Ok((b, read("current", &current)?)))
        .and_then(|(b, c)| bench_diff::compare(&b, &c));
    match diff {
        Ok(diff) => {
            let floor_note = min.map_or(String::new(), |f| format!(", floor {f} points/s"));
            println!(
                "bench-diff: {} vs {} (tolerance {:.0}%{floor_note})",
                baseline.display(),
                current.display(),
                tolerance * 100.0
            );
            println!("{}   [gated]", bench_diff::render_line(&diff.gated));
            for d in &diff.informational {
                println!("{}", bench_diff::render_line(d));
            }
            if diff.regressed(tolerance) {
                println!(
                    "bench-diff: FAIL — {} regressed beyond {:.0}% tolerance",
                    bench_diff::GATED_METRIC,
                    tolerance * 100.0
                );
                ExitCode::FAILURE
            } else if let Some(floor) = min.filter(|&f| diff.below_floor(f)) {
                println!(
                    "bench-diff: FAIL — {} = {:.4} is below the absolute floor {floor}",
                    bench_diff::GATED_METRIC,
                    diff.gated.current
                );
                ExitCode::FAILURE
            } else {
                println!("bench-diff: ok");
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("bench-diff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn trace(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("report") => {
            match trace_cmd::parse_report_args(&args[1..]).and_then(|a| trace_cmd::run_report(&a)) {
                Ok(rendered) => {
                    print!("{rendered}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("trace report: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("diff") => {
            match trace_cmd::parse_diff_args(&args[1..]).and_then(|a| trace_cmd::run_diff(&a)) {
                Ok((rendered, regressed)) => {
                    print!("{rendered}");
                    if regressed {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("trace diff: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("trace requires a `report` or `diff` subcommand\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root is two levels up from this crate's manifest
/// (`crates/xtask` → workspace), falling back to the current directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}
